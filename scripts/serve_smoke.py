"""CI smoke: pipe a Linear Road slice through ``repro serve`` and assert
the emitted derivations match a one-shot ``run()`` over the same stream.

Exercises the whole service path as a real operator would — a child
process, line-delimited JSON on stdin, emissions on stdout, graceful
drain on EOF — which no in-process test covers.
"""

import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
sys.path.insert(0, SRC)


def main() -> int:
    from repro.difftest.scenarios import get_scenario
    from repro.events.stream import EventStream
    from repro.runtime import CaesarEngine

    scenario = get_scenario("traffic")
    events = scenario.make_events(7, 0.5)

    engine = CaesarEngine(
        scenario.build_model(),
        partition_by=scenario.partition_by,
        retention=scenario.retention,
    )
    report = engine.run(EventStream(events))
    expected = [
        {"type": e.type_name, "time": e.timestamp, "payload": e.payload}
        for e in report.outputs
    ]

    lines = [
        json.dumps({
            "type": event.type_name,
            "time": event.timestamp,
            "payload": event.payload,
        })
        for event in events
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("CAESAR_BACKEND", None)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "serve", "--scenario", "traffic",
         "--summary"],
        input="\n".join(lines) + "\n",
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    if proc.returncode != 0:
        print(proc.stderr, file=sys.stderr)
        print(f"FAIL: serve exited {proc.returncode}")
        return 1
    emitted = [json.loads(line) for line in proc.stdout.splitlines() if line]
    if emitted != expected:
        print(
            f"FAIL: serve emitted {len(emitted)} events, "
            f"one-shot run produced {len(expected)}"
        )
        for i, (got, want) in enumerate(zip(emitted, expected)):
            if got != want:
                print(f"  first divergence at #{i}: {got} != {want}")
                break
        return 1
    print(
        f"serve round-trip OK: {len(emitted)} emitted events match the "
        f"one-shot run ({proc.stderr.strip().splitlines()[-1]})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
