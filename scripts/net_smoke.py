"""CI smoke: ingest Linear Road over the network from N concurrent TCP
clients and assert the emissions are byte-identical to a one-shot
``run()`` over the same stream.

The full production shape, end to end:

* ``repro serve --listen 127.0.0.1:0 --http 127.0.0.1:0`` as a child
  process (ephemeral ports discovered from its stderr announcements);
* the original stream is seq-tagged and sharded round-robin across
  N producer connections (:class:`repro.net.client.ServeClient`) —
  the server's resequencer reassembles the exact global order;
* one subscriber connection collects the emission lines;
* a few events ride in over ``POST /events`` first (HTTP path), and
  ``/healthz`` + ``/metrics`` are checked under load;
* SIGTERM triggers the graceful drain; the subscriber's stream must end
  with EOF, the collected lines must equal the one-shot run's emissions
  byte for byte, and ``--summary`` must print a full report line.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import urllib.request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
sys.path.insert(0, SRC)

NUM_PRODUCERS = 4


def main() -> int:
    from repro.difftest.scenarios import get_scenario
    from repro.events.stream import EventStream
    from repro.net.client import ServeClient
    from repro.net.protocol import encode_event
    from repro.runtime import CaesarEngine

    scenario = get_scenario("traffic")
    events = scenario.make_events(7, 0.5)

    engine = CaesarEngine(
        scenario.build_model(),
        partition_by=scenario.partition_by,
        retention=scenario.retention,
    )
    report = engine.run(EventStream(events))
    expected = [encode_event(e) for e in report.outputs]

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("CAESAR_BACKEND", None)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--scenario", "traffic",
         "--listen", "127.0.0.1:0", "--http", "127.0.0.1:0", "--summary"],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        addresses = {}
        for _ in range(2):
            line = proc.stderr.readline()
            match = re.match(r"(listening|http) on ([\d.]+):(\d+)", line)
            if not match:
                raise AssertionError(f"unexpected announcement: {line!r}")
            addresses[match.group(1)] = (
                match.group(2), int(match.group(3))
            )
        host, port = addresses["listening"]
        http_host, http_port = addresses["http"]
        http_base = f"http://{http_host}:{http_port}"

        # the subscriber must be in place before any event commits —
        # emissions are broadcast live, not replayed
        subscriber = ServeClient(host, port)
        subscriber.subscribe()
        emitted: list[str] = []
        collector = threading.Thread(
            target=lambda: emitted.extend(subscriber.emission_lines()),
            daemon=True,
        )
        collector.start()

        # a slice of the stream rides in over HTTP (seq-tagged like the
        # rest, so order survives the transport mix)
        http_count = min(50, len(events) // 10)
        body = "".join(
            json.dumps({
                "type": e.type_name,
                "time": e.timestamp,
                "payload": e.payload,
                "seq": i,
            }) + "\n"
            for i, e in enumerate(events[:http_count])
        ).encode("utf-8")
        request = urllib.request.Request(
            f"{http_base}/events", data=body, method="POST"
        )
        accepted = json.load(urllib.request.urlopen(request, timeout=60))
        assert accepted["accepted"] == http_count, accepted
        assert accepted["rejected"] == 0, accepted

        producers = [
            ServeClient(host, port) for _ in range(NUM_PRODUCERS)
        ]

        def produce(client: ServeClient, offset: int) -> None:
            for seq in range(http_count + offset, len(events), NUM_PRODUCERS):
                client.send_event_obj(events[seq], seq=seq)
            client.close_write()

        threads = [
            threading.Thread(target=produce, args=(client, i), daemon=True)
            for i, client in enumerate(producers)
        ]
        for thread in threads:
            thread.start()

        # health + metrics while the load is in flight
        health = json.load(
            urllib.request.urlopen(f"{http_base}/healthz", timeout=60)
        )
        assert health["status"] == "ok", health
        metrics = urllib.request.urlopen(
            f"{http_base}/metrics", timeout=60
        ).read().decode("utf-8")
        for needle in (
            "caesar_service_queue_depth",
            "caesar_net_connections_total",
            "caesar_net_events_total",
            "caesar_net_http_requests_total",
        ):
            assert needle in metrics, f"/metrics missing {needle}"

        for thread in threads:
            thread.join(timeout=600)
            assert not thread.is_alive(), "producer did not finish"
        for client in producers:
            client.close()

        proc.send_signal(signal.SIGTERM)
        collector.join(timeout=600)
        assert not collector.is_alive(), "subscriber saw no EOF on drain"
        subscriber.close()
        stdout, stderr = proc.communicate(timeout=600)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()

    if proc.returncode != 0:
        print(stderr, file=sys.stderr)
        print(f"FAIL: serve exited {proc.returncode}")
        return 1
    if emitted != expected:
        print(
            f"FAIL: {NUM_PRODUCERS} clients emitted {len(emitted)} lines, "
            f"one-shot run produced {len(expected)}"
        )
        for i, (got, want) in enumerate(zip(emitted, expected)):
            if got != want:
                print(f"  first divergence at #{i}:\n    {got}\n    {want}")
                break
        return 1
    summary = [l for l in stderr.splitlines() if "events=" in l]
    if not summary:
        print("FAIL: no report summary on stderr after SIGTERM drain")
        print(stderr, file=sys.stderr)
        return 1
    print(
        f"net round-trip OK: {len(emitted)} emissions from "
        f"{NUM_PRODUCERS} TCP clients + {http_count} HTTP events match "
        f"the one-shot run ({summary[-1].strip()})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
