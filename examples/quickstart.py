"""Quickstart: a minimal context-aware stream application.

A sensor emits readings; when a reading exceeds a threshold the system
enters the *alert* context and derives an ``Alarm`` for every reading until
the value drops back.  Outside the alert context the alarm query is fully
suspended — it does not even see the stream.

Run:  python examples/quickstart.py
"""

from repro import CaesarEngine, CaesarModel, parse_query
from repro.events import Event, EventStream, EventType

READING = EventType.define("Reading", value="int", sec="int")


def build_model() -> CaesarModel:
    model = CaesarModel(default_context="normal")
    model.add_context("alert")
    model.add_query(
        parse_query(
            "INITIATE CONTEXT alert PATTERN Reading r WHERE r.value > 100 "
            "CONTEXT normal",
            name="raise_alert",
        )
    )
    model.add_query(
        parse_query(
            "TERMINATE CONTEXT alert PATTERN Reading r WHERE r.value <= 100 "
            "CONTEXT alert",
            name="clear_alert",
        )
    )
    model.add_query(
        parse_query(
            "DERIVE Alarm(r.value, r.sec) PATTERN Reading r CONTEXT alert",
            name="alarm",
        )
    )
    return model


def build_stream() -> EventStream:
    # values ramp up past the threshold, hold, and fall back
    values = [40, 60, 90, 120, 150, 170, 130, 110, 90, 50, 30]
    return EventStream(
        Event(READING, t * 10, {"value": value, "sec": t * 10})
        for t, value in enumerate(values)
    )


def main() -> None:
    model = build_model()
    print(model.describe())
    print()

    engine = CaesarEngine(model)
    report = engine.run(build_stream())

    print(f"processed {report.events_processed} readings "
          f"in {report.batches} batches")
    print(f"derived {len(report.outputs)} alarms:")
    for alarm in report.outputs:
        print(f"  t={alarm.timestamp:>4}  value={alarm['value']}")
    print()
    print("context windows observed:")
    for window in report.windows_by_partition[None]:
        print(f"  {window}")
    print()
    print(f"batches suppressed while suspended: {report.suppressed_batches}")


if __name__ == "__main__":
    main()
