"""Context-aware fraud monitoring on a card-transaction stream.

Demonstrates the CAESAR pattern outside the paper's two domains: a payment
processor watches card transactions per account.  Most of the time an
account is in the *normal* context and only a cheap velocity check runs.
A burst of high amounts switches the account into the *suspicious* context,
which activates the expensive analytics — pairing transactions in distant
locations (SEQ with WHERE across events) and flagging any further big
spend — until activity calms down.

This is exactly the paper's economics: the expensive queries exist for
every account, but CAESAR only *pays* for them on the accounts whose
context warrants it.

Run:  python examples/fraud_detection.py
"""

import random

from repro import CaesarEngine, CaesarModel, ContextIndependentEngine, parse_query
from repro.core.viz import to_text
from repro.events import Event, EventStream, EventType

TRANSACTION = EventType.define(
    "Transaction",
    account="int",
    amount="int",
    location="int",
    sec="int",
)


def build_model() -> CaesarModel:
    model = CaesarModel(default_context="normal")
    model.add_context("suspicious")
    model.add_query(
        parse_query(
            "INITIATE CONTEXT suspicious PATTERN Transaction t "
            "WHERE t.amount > 900 CONTEXT normal",
            name="big_spend_raises_suspicion",
        )
    )
    model.add_query(
        parse_query(
            "TERMINATE CONTEXT suspicious PATTERN Transaction t "
            "WHERE t.amount < 100 CONTEXT suspicious",
            name="small_spend_calms_down",
        )
    )
    # cheap always-on velocity summary while the account looks normal
    model.add_query(
        parse_query(
            "DERIVE Velocity(t.account, t.amount, t.sec) "
            "PATTERN Transaction t WHERE t.amount > 500 CONTEXT normal",
            name="velocity_check",
        )
    )
    # expensive pairing: two transactions from far-apart locations within
    # the suspicious window
    model.add_query(
        parse_query(
            "DERIVE LocationJump(a.account, a.location, b.location, b.sec) "
            "PATTERN SEQ(Transaction a, Transaction b) "
            "WHERE a.account = b.account AND "
            "a.location + 100 < b.location CONTEXT suspicious",
            name="location_jump",
        )
    )
    model.add_query(
        parse_query(
            "DERIVE FraudAlert(t.account, t.amount, t.sec) "
            "PATTERN Transaction t WHERE t.amount > 700 CONTEXT suspicious",
            name="fraud_alert",
        )
    )
    return model


def build_stream(accounts: int = 4, minutes: int = 20) -> EventStream:
    rng = random.Random(17)
    events = []
    compromised = 2  # one account gets hit by a fraud burst mid-run
    for t in range(0, minutes * 60, 15):
        for account in range(1, accounts + 1):
            in_burst = account == compromised and 300 <= t < 600
            if in_burst:
                amount = rng.randint(800, 1500)
                location = rng.choice([10, 400, 900])
            else:
                amount = rng.randint(5, 300)
                location = 10 + account
            events.append(
                Event(
                    TRANSACTION,
                    t,
                    {
                        "account": account,
                        "amount": amount,
                        "location": location,
                        "sec": t,
                    },
                )
            )
    return EventStream(events)


def main() -> None:
    model = build_model()
    print(to_text(model))
    print()

    engine = CaesarEngine(
        model, partition_by=lambda e: e["account"], retention=600
    )
    report = engine.run(build_stream())
    print("outputs:", dict(sorted(report.outputs_by_type.items())))

    alerts = [e for e in report.outputs if e.type_name == "FraudAlert"]
    print(f"\n{len(alerts)} fraud alerts, all on the compromised account:",
          sorted({a['account'] for a in alerts}))
    jumps = [e for e in report.outputs if e.type_name == "LocationJump"]
    print(f"{len(jumps)} location jumps detected during suspicion windows")

    print("\ncontext timeline of the compromised account:")
    for window in report.windows_by_partition[2]:
        print(f"  {window}")

    baseline = ContextIndependentEngine(
        model, partition_by=lambda e: e["account"], retention=600
    )
    baseline_report = baseline.run(build_stream())
    print(
        f"\nCPU cost — context-aware: {report.cost_units:.0f} units, "
        f"baseline: {baseline_report.cost_units:.0f} units "
        f"({baseline_report.cost_units / report.cost_units:.1f}x saved "
        f"by suspending the expensive analytics on healthy accounts)"
    )


if __name__ == "__main__":
    main()
