"""Health monitoring on the synthetic PAM data set (Section 7.1).

Fourteen-ish subjects wear heart-rate and IMU sensors; CAESAR derives each
subject's activity-intensity context (rest / moderate / vigorous) from the
stream and runs only the analytics relevant to that context: high-heart-rate
alerts during vigorous exercise, intensity summaries while active, and fall
detection only while the subject is supposed to be at rest.

Run:  python examples/health_monitoring.py
"""

from repro import win_ratio
from repro.pam import (
    PamConfig,
    build_pam_model,
    generate_pam_stream,
    subject_partitioner,
)
from repro.runtime import CaesarEngine, ContextIndependentEngine

SECONDS_PER_COST_UNIT = 1e-4


def main() -> None:
    config = PamConfig(num_subjects=6, duration_minutes=20, seed=3)
    model = build_pam_model()

    print("=== CAESAR (context-aware) ===")
    caesar = CaesarEngine(
        model,
        partition_by=subject_partitioner,
        seconds_per_cost_unit=SECONDS_PER_COST_UNIT,
        retention=60,
    )
    ca_report = caesar.run(generate_pam_stream(config))
    print(ca_report.summary())
    print("outputs:", dict(sorted(ca_report.outputs_by_type.items())))

    subject = min(ca_report.windows_by_partition)
    print(f"\nactivity contexts of subject {subject}:")
    for window in ca_report.windows_by_partition[subject][:12]:
        print(f"  {window}")

    alerts = [
        e for e in ca_report.outputs if e.type_name == "HighHeartRateAlert"
    ]
    if alerts:
        print("\nfirst high-heart-rate alerts:")
        for alert in alerts[:5]:
            print(
                f"  subject {alert['subject']} at t={alert.timestamp}: "
                f"{alert['heart_rate']} bpm"
            )

    print("\n=== context-independent baseline ===")
    baseline = ContextIndependentEngine(
        model,
        partition_by=subject_partitioner,
        seconds_per_cost_unit=SECONDS_PER_COST_UNIT,
        retention=60,
    )
    ci_report = baseline.run(generate_pam_stream(config))
    print(ci_report.summary())

    print("\n=== comparison ===")
    print(f"CPU cost ratio (CI / CA): "
          f"{ci_report.cost_units / ca_report.cost_units:.2f}x")
    print(f"max-latency win ratio:    "
          f"{win_ratio(ci_report.max_latency, ca_report.max_latency):.2f}x")


if __name__ == "__main__":
    main()
