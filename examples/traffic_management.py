"""Traffic management on the Linear Road benchmark (the paper's Figure 1).

Simulates one expressway whose segments go through the paper's timeline —
clear, then an accident, then rush-hour congestion — and runs the CAESAR
traffic model against it: toll notifications for cars entering congested
segments (queries 1-2 of Figure 3), accident warnings for moving cars near
an accident, zero-toll notifications otherwise.

Then it runs the identical workload on the context-independent baseline and
reports the win ratio — the headline comparison of Section 7.

Run:  python examples/traffic_management.py
"""

from repro import win_ratio
from repro.linearroad import (
    LinearRoadConfig,
    build_traffic_model,
    generate_stream,
)
from repro.linearroad.analysis import events_per_minute
from repro.linearroad.generator import paper_timeline_schedules
from repro.linearroad.queries import segment_partitioner
from repro.runtime import CaesarEngine, ContextIndependentEngine

SECONDS_PER_COST_UNIT = 1e-4


def main() -> None:
    config = paper_timeline_schedules(
        LinearRoadConfig(
            num_roads=1, segments_per_road=4, duration_minutes=18, seed=7
        )
    )
    model = build_traffic_model()

    print("=== CAESAR (context-aware) ===")
    caesar = CaesarEngine(
        model,
        partition_by=segment_partitioner,
        seconds_per_cost_unit=SECONDS_PER_COST_UNIT,
        retention=120,
    )
    ca_report = caesar.run(generate_stream(config))
    print(ca_report.summary())
    print("outputs:", dict(sorted(ca_report.outputs_by_type.items())))

    print("\ncontext windows of segment (0, 0, 0):")
    for window in ca_report.windows_by_partition[(0, 0, 0)]:
        print(f"  {window}")

    print("\nderived events per minute (segment 0) — the Figure 10(b) shape:")
    per_minute = events_per_minute(ca_report.outputs, seg=0)
    for minute in sorted(per_minute):
        counts = ", ".join(
            f"{name}={count}" for name, count in sorted(per_minute[minute].items())
        )
        print(f"  minute {minute:>2}: {counts}")

    print("\n=== context-independent baseline ===")
    baseline = ContextIndependentEngine(
        model,
        partition_by=segment_partitioner,
        seconds_per_cost_unit=SECONDS_PER_COST_UNIT,
        retention=120,
    )
    ci_report = baseline.run(generate_stream(config))
    print(ci_report.summary())

    print("\n=== comparison ===")
    print(f"CPU cost ratio (CI / CA):   "
          f"{ci_report.cost_units / ca_report.cost_units:.2f}x")
    print(f"max-latency win ratio:      "
          f"{win_ratio(ci_report.max_latency, ca_report.max_latency):.2f}x")
    same = sorted(
        (e.type_name, e.timestamp) for e in ca_report.outputs
    ) == sorted((e.type_name, e.timestamp) for e in ci_report.outputs)
    print(f"identical derived events:   {same}")


if __name__ == "__main__":
    main()
