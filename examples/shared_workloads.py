"""Workload sharing across overlapping context windows (Section 5.3).

Builds overlapping context windows carrying partially identical query
workloads (the Figure 7 scenario), runs the context window grouping
algorithm (Listing 1), and compares shared versus non-shared execution of
the same stream — the Figure 14 experiments in miniature.

Run:  python examples/shared_workloads.py
"""

from repro import WindowSpec, group_context_windows
from repro.events import Event, EventStream, EventType
from repro.language import parse_query
from repro.optimizer.sharing import (
    build_nonshared_workload,
    build_shared_workload,
)
from repro.runtime import ScheduledWorkloadEngine

READING = EventType.define("Reading", value="int", sec="int")
SECONDS_PER_COST_UNIT = 1e-4


def make_query(name: str, threshold: int):
    return parse_query(
        f"DERIVE Spike(r.value, r.sec) PATTERN Reading r "
        f"WHERE r.value > {threshold}",
        name=name,
    )


def main() -> None:
    # Three overlapping windows; q_shared appears in all of them,
    # q_a / q_b / q_c are window-specific (Figure 7's structure).
    q_shared = make_query("q_shared", 50)
    specs = [
        WindowSpec("w1", start=0, end=300, queries=(q_shared, make_query("q_a", 10))),
        WindowSpec("w2", start=120, end=480, queries=(q_shared, make_query("q_b", 20))),
        WindowSpec("w3", start=360, end=600, queries=(q_shared, make_query("q_c", 30))),
    ]

    print("grouped context windows (Listing 1):")
    for window in group_context_windows(specs):
        names = ", ".join(q.name for q in window.queries)
        print(
            f"  [{window.start:>3}, {window.end:>3})  "
            f"sources={'/'.join(window.source_names):<8}  queries: {names}"
        )

    stream_events = [
        Event(READING, t, {"value": (t * 7) % 100, "sec": t})
        for t in range(0, 600, 5)
    ]

    shared = build_shared_workload(specs)
    nonshared = build_nonshared_workload(specs)
    print(f"\nplan instances — shared: {shared.plan_count}, "
          f"non-shared: {nonshared.plan_count}")

    shared_report = ScheduledWorkloadEngine(
        shared, seconds_per_cost_unit=SECONDS_PER_COST_UNIT
    ).run(EventStream(stream_events))
    nonshared_report = ScheduledWorkloadEngine(
        nonshared, seconds_per_cost_unit=SECONDS_PER_COST_UNIT
    ).run(EventStream(stream_events))

    print(f"\nshared:     {shared_report.summary()}")
    print(f"non-shared: {nonshared_report.summary()}")
    print(f"\nCPU cost saving from sharing: "
          f"{nonshared_report.cost_units / shared_report.cost_units:.2f}x")

    # The shared q_shared instance derived each spike once; the non-shared
    # execution derived it once per covering window.
    shared_spikes = shared_report.outputs_by_type.get("Spike", 0)
    nonshared_spikes = nonshared_report.outputs_by_type.get("Spike", 0)
    print(f"Spike derivations — shared: {shared_spikes}, "
          f"non-shared: {nonshared_spikes} "
          f"(duplicates from overlapping windows)")


if __name__ == "__main__":
    main()
