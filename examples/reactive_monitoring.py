"""Reactive data-center monitoring with the incremental extensions.

A long-running service feeding CAESAR as telemetry arrives — no complete
stream up front.  Demonstrates the extensions the reproduction adds on top
of the paper:

* :class:`~repro.runtime.reorder.ReorderBuffer` — the telemetry feed
  jitters; a bounded buffer restores timestamp order;
* :class:`~repro.runtime.session.EngineSession` — events are fed in small
  chunks, derivations come back immediately;
* ``on_context_transition`` — the service reacts (here: prints) the
  instant a rack enters or leaves the *overheating* context, without
  polling;
* :func:`~repro.runtime.reporting.render_timeline` — the run ends with an
  ASCII context timeline per rack.

Run:  python examples/reactive_monitoring.py
"""

import random

from repro import CaesarEngine, CaesarModel, parse_query
from repro.events import Event, EventType
from repro.runtime.reorder import ReorderBuffer
from repro.runtime.reporting import render_timeline
from repro.runtime.session import EngineSession

TEMPERATURE = EventType.define(
    "Temperature", rack="int", celsius="float", sec="int"
)


def build_model() -> CaesarModel:
    model = CaesarModel(default_context="nominal")
    model.add_context("overheating")
    model.add_query(
        parse_query(
            "INITIATE CONTEXT overheating PATTERN Temperature t "
            "WHERE t.celsius > 75 CONTEXT nominal",
            name="too_hot",
        )
    )
    model.add_query(
        parse_query(
            "TERMINATE CONTEXT overheating PATTERN Temperature t "
            "WHERE t.celsius < 65 CONTEXT overheating",
            name="cooled_down",
        )
    )
    # throttling decisions are only computed while a rack overheats
    model.add_query(
        parse_query(
            "DERIVE ThrottleCommand(t.rack, t.celsius, t.sec) "
            "PATTERN Temperature t WHERE t.celsius > 80 "
            "CONTEXT overheating",
            name="throttle",
        )
    )
    return model


def telemetry_feed(racks: int = 3, minutes: int = 10):
    """Jittered telemetry: rack 1 heats up mid-run; timestamps wobble."""
    rng = random.Random(23)
    events = []
    for t in range(0, minutes * 60, 10):
        for rack in range(1, racks + 1):
            hot = rack == 1 and 180 <= t < 420
            base = rng.uniform(78, 92) if hot else rng.uniform(40, 60)
            events.append(
                Event(
                    TEMPERATURE,
                    t,
                    {"rack": rack, "celsius": round(base, 1), "sec": t},
                )
            )
    # jitter the delivery order within a bounded window
    jittered = sorted(
        events, key=lambda e: e.timestamp + rng.uniform(-25, 25)
    )
    return jittered


def main() -> None:
    engine = CaesarEngine(
        build_model(),
        partition_by=lambda e: e["rack"],
        on_context_transition=lambda rack, kind, window: print(
            f"  [t={window.start if kind == 'initiated' else window.end}] "
            f"rack {rack}: {window.context_name} {kind}"
        )
        if window.context_name == "overheating"
        else None,
    )
    session = EngineSession(engine)
    buffer = ReorderBuffer(max_delay=60)

    print("streaming telemetry (reactive transitions print inline):")
    throttles = 0
    feed = telemetry_feed()
    for chunk_start in range(0, len(feed), 25):
        chunk = feed[chunk_start : chunk_start + 25]
        ordered = list(buffer.feed(chunk))
        if ordered:
            throttles += sum(
                1 for e in session.feed(ordered)
                if e.type_name == "ThrottleCommand"
            )
    remaining = buffer.flush()
    if remaining:
        throttles += sum(
            1 for e in session.feed(remaining)
            if e.type_name == "ThrottleCommand"
        )

    report = session.close()
    print(f"\n{throttles} throttle commands issued")
    print(f"late events dropped by the reorder buffer: {buffer.late_events}")
    print(f"engine summary: {report.summary()}")
    print("\ncontext timelines:")
    print(render_timeline(report, width=50))


if __name__ == "__main__":
    main()
