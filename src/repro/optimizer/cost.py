"""CPU cost model (Section 5.1).

The paper borrows pattern-construction cost estimation from ZStream [24] and
adds that the context-specific operators are constant-cost: initiation and
termination flip one bit, the context window reads one bit.  We model a plan
as a pipeline through which an input event *rate* flows; each operator
charges ``rate_in × unit_cost`` and attenuates the rate by its selectivity.

The context window's selectivity is the fraction of the stream covered by
its context windows (``activity``).  Because a pushed-down ``CW`` attenuates
the rate seen by *every* operator above it, the model makes Theorem 1
visible: the bottom placement minimizes total cost, with equality only when
the context is always active (``activity == 1``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.context_ops import (
    ContextInitiation,
    ContextTermination,
    ContextWindowOperator,
)
from repro.algebra.operators import Operator
from repro.algebra.pattern import PatternOperator
from repro.algebra.plan import QueryPlan
from repro.algebra.relational_ops import Filter, Projection
from repro.algebra.seq_aggregate import (
    MatchAggregateProjection,
    PatternAggregateOperator,
)


@dataclass
class CostModel:
    """Unit costs and default selectivities per operator kind.

    ``context_activity`` maps context names to the fraction of the stream
    during which that context holds (default 0.5 when unknown).
    """

    pattern_cost: float = 2.0
    filter_cost: float = 1.0
    projection_cost: float = 0.5
    context_op_cost: float = 0.1
    window_cost: float = 0.05
    #: the fused pattern+filter+aggregation operator does the pattern's
    #: per-event work plus a constant-size summary merge
    pattern_aggregate_cost: float = 2.2
    #: the oracle's post-hoc aggregation touches every materialized match
    match_aggregate_cost: float = 0.5
    pattern_selectivity: float = 0.8
    filter_selectivity: float = 0.5
    #: an aggregating operator emits at most one event per output per
    #: completion timestamp, regardless of how many matches it absorbs
    aggregate_selectivity: float = 0.1
    context_activity: dict[str, float] = field(default_factory=dict)
    default_activity: float = 0.5

    def unit_cost(self, operator: Operator) -> float:
        if isinstance(operator, PatternAggregateOperator):
            return self.pattern_aggregate_cost
        if isinstance(operator, MatchAggregateProjection):
            return self.match_aggregate_cost
        if isinstance(operator, PatternOperator):
            return self.pattern_cost
        if isinstance(operator, Filter):
            return self.filter_cost
        if isinstance(operator, Projection):
            return self.projection_cost
        if isinstance(operator, (ContextInitiation, ContextTermination)):
            return self.context_op_cost
        if isinstance(operator, ContextWindowOperator):
            return self.window_cost
        return 1.0

    def selectivity(self, operator: Operator) -> float:
        if isinstance(operator, PatternAggregateOperator):
            return self.aggregate_selectivity
        if isinstance(operator, MatchAggregateProjection):
            return self.aggregate_selectivity
        if isinstance(operator, PatternOperator):
            return self.pattern_selectivity
        if isinstance(operator, Filter):
            return self.filter_selectivity
        if isinstance(operator, ContextWindowOperator):
            return self.context_activity.get(
                operator.context_name, self.default_activity
            )
        return 1.0


def estimate_plan_cost(
    plan: QueryPlan,
    model: CostModel | None = None,
    *,
    input_rate: float = 1.0,
) -> float:
    """Estimated cost of processing one stream time unit through ``plan``.

    The context window operator itself is charged per *batch*, not per
    event (constant cost, Section 5.1); all other operators are charged per
    event at their incoming rate.
    """
    model = model or CostModel()
    rate = input_rate
    total = 0.0
    for operator in plan.operators:
        if isinstance(operator, ContextWindowOperator):
            total += model.unit_cost(operator)  # one bit lookup per batch
        else:
            total += rate * model.unit_cost(operator)
        rate *= model.selectivity(operator)
    return total


@dataclass
class SharingBenefit:
    """Estimated payoff of grouping a window workload (Section 5.3).

    Costs are cost-model units integrated over each plan's activation
    length: a shared plan is charged once for the union of its windows,
    the non-shared baseline once per (window, query) pair.  Aggregate
    fusion shows up as fewer shared plans — and therefore fewer summary
    propagation passes — for the same query set.
    """

    shared_cost: float
    nonshared_cost: float
    shared_plans: int
    nonshared_plans: int

    @property
    def benefit(self) -> float:
        """Estimated cost units saved by sharing (>= 0 when sharing wins)."""
        return self.nonshared_cost - self.shared_cost

    @property
    def ratio(self) -> float:
        """Non-shared cost over shared cost (1.0 = no benefit)."""
        if self.shared_cost <= 0:
            return float("inf") if self.nonshared_cost > 0 else 1.0
        return self.nonshared_cost / self.shared_cost


def estimate_sharing_benefit(
    specs,
    model: CostModel | None = None,
    *,
    retention: float = 300,
    aggregation: str = "online",
    input_rate: float = 1.0,
) -> SharingBenefit:
    """Compare the estimated cost of shared vs. non-shared execution.

    ``specs`` is a sequence of :class:`~repro.core.windows.WindowSpec`.
    The estimate drives grouping decisions: a workload whose ratio is
    near 1.0 gains nothing from sharing (disjoint windows, disjoint
    queries), while overlapping windows carrying fusible aggregate
    queries multiply the benefit — one propagation pass serves them all.
    """
    from repro.optimizer.sharing import (
        build_nonshared_workload,
        build_shared_workload,
    )

    model = model or CostModel()
    shared = build_shared_workload(
        specs, retention=retention, aggregation=aggregation
    )
    nonshared = build_nonshared_workload(
        specs, retention=retention, aggregation=aggregation
    )

    def workload_cost(workload) -> float:
        return sum(
            estimate_plan_cost(unit.plan, model, input_rate=input_rate)
            * float(unit.total_active_length())
            for unit in workload.units
        )

    return SharingBenefit(
        shared_cost=workload_cost(shared),
        nonshared_cost=workload_cost(nonshared),
        shared_plans=shared.plan_count,
        nonshared_plans=nonshared.plan_count,
    )
