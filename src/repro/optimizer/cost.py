"""CPU cost model (Section 5.1).

The paper borrows pattern-construction cost estimation from ZStream [24] and
adds that the context-specific operators are constant-cost: initiation and
termination flip one bit, the context window reads one bit.  We model a plan
as a pipeline through which an input event *rate* flows; each operator
charges ``rate_in × unit_cost`` and attenuates the rate by its selectivity.

The context window's selectivity is the fraction of the stream covered by
its context windows (``activity``).  Because a pushed-down ``CW`` attenuates
the rate seen by *every* operator above it, the model makes Theorem 1
visible: the bottom placement minimizes total cost, with equality only when
the context is always active (``activity == 1``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.context_ops import (
    ContextInitiation,
    ContextTermination,
    ContextWindowOperator,
)
from repro.algebra.operators import Operator
from repro.algebra.pattern import PatternOperator
from repro.algebra.plan import QueryPlan
from repro.algebra.relational_ops import Filter, Projection


@dataclass
class CostModel:
    """Unit costs and default selectivities per operator kind.

    ``context_activity`` maps context names to the fraction of the stream
    during which that context holds (default 0.5 when unknown).
    """

    pattern_cost: float = 2.0
    filter_cost: float = 1.0
    projection_cost: float = 0.5
    context_op_cost: float = 0.1
    window_cost: float = 0.05
    pattern_selectivity: float = 0.8
    filter_selectivity: float = 0.5
    context_activity: dict[str, float] = field(default_factory=dict)
    default_activity: float = 0.5

    def unit_cost(self, operator: Operator) -> float:
        if isinstance(operator, PatternOperator):
            return self.pattern_cost
        if isinstance(operator, Filter):
            return self.filter_cost
        if isinstance(operator, Projection):
            return self.projection_cost
        if isinstance(operator, (ContextInitiation, ContextTermination)):
            return self.context_op_cost
        if isinstance(operator, ContextWindowOperator):
            return self.window_cost
        return 1.0

    def selectivity(self, operator: Operator) -> float:
        if isinstance(operator, PatternOperator):
            return self.pattern_selectivity
        if isinstance(operator, Filter):
            return self.filter_selectivity
        if isinstance(operator, ContextWindowOperator):
            return self.context_activity.get(
                operator.context_name, self.default_activity
            )
        return 1.0


def estimate_plan_cost(
    plan: QueryPlan,
    model: CostModel | None = None,
    *,
    input_rate: float = 1.0,
) -> float:
    """Estimated cost of processing one stream time unit through ``plan``.

    The context window operator itself is charged per *batch*, not per
    event (constant cost, Section 5.1); all other operators are charged per
    event at their incoming rate.
    """
    model = model or CostModel()
    rate = input_rate
    total = 0.0
    for operator in plan.operators:
        if isinstance(operator, ContextWindowOperator):
            total += model.unit_cost(operator)  # one bit lookup per batch
        else:
            total += rate * model.unit_cost(operator)
        rate *= model.selectivity(operator)
    return total
