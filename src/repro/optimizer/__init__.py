"""CAESAR optimizer (Section 5).

* :mod:`repro.optimizer.planner` — Table 1 translation of event queries to
  individual plans and their composition into combined plans (Section 4.2).
* :mod:`repro.optimizer.pushdown` — the context window push-down strategy
  (Section 5.2, Theorem 1).
* :mod:`repro.optimizer.rules` — classic context-oblivious rewrites the
  CAESAR optimizer inherits (filter merging, filter/projection reordering).
* :mod:`repro.optimizer.cost` — the CPU cost model (Section 5.1).
* :mod:`repro.optimizer.search` — exhaustive (context-independent) versus
  greedy context-aware plan search (Section 5.3, Figure 11a).
* :mod:`repro.optimizer.sharing` — shared execution of grouped context
  windows' workloads (Section 5.3).
"""

from repro.optimizer.planner import build_combined_plans, build_query_plan
from repro.optimizer.pushdown import is_pushed_down, push_context_windows_down
from repro.optimizer.apply import (
    OptimizationRules,
    full_optimize,
    optimize_combined,
    reorder_filters,
)
from repro.optimizer.cost import CostModel, estimate_plan_cost
from repro.optimizer.search import (
    LogicalOperator,
    SearchResult,
    context_aware_search,
    exhaustive_search,
    greedy_search,
    make_search_space,
)
from repro.optimizer.sharing import SharedWorkload, build_shared_workload

__all__ = [
    "CostModel",
    "LogicalOperator",
    "OptimizationRules",
    "SearchResult",
    "SharedWorkload",
    "build_combined_plans",
    "build_query_plan",
    "build_shared_workload",
    "context_aware_search",
    "estimate_plan_cost",
    "exhaustive_search",
    "full_optimize",
    "greedy_search",
    "is_pushed_down",
    "make_search_space",
    "optimize_combined",
    "push_context_windows_down",
    "reorder_filters",
]
