"""Context window push-down (Section 5.2, Theorem 1).

Pushing the ``CW_c`` operator to the bottom of a plan suspends the *entire*
pipeline above it whenever context ``c`` is inactive — unlike a predicate or
traditional window, which filters events one by one while upstream operators
busy-wait.  Theorem 1: the pushed-down plan's cost is at most that of any
other placement (equal only if the context happens to be always active), and
the rewrite is semantics-preserving because a context window merely scopes
the query it belongs to.
"""

from __future__ import annotations

from repro.algebra.context_ops import ContextWindowOperator
from repro.algebra.plan import CombinedQueryPlan, QueryPlan


def push_context_windows_down(plan: QueryPlan) -> QueryPlan:
    """Return a plan with all ``CW`` operators moved to the bottom.

    Relative order among multiple context windows is preserved.  The input
    plan is not modified; operator instances are reused (the rewrite is a
    reordering, not a reconstruction), so apply it before execution starts.
    """
    windows = [
        op for op in plan.operators if isinstance(op, ContextWindowOperator)
    ]
    if not windows:
        return plan
    others = [
        op for op in plan.operators if not isinstance(op, ContextWindowOperator)
    ]
    return QueryPlan(
        windows + others, name=plan.name, context_name=plan.context_name
    )


def push_down_combined(combined: CombinedQueryPlan) -> CombinedQueryPlan:
    """Push context windows down in every plan of a combined plan."""
    return CombinedQueryPlan(
        [push_context_windows_down(plan) for plan in combined.plans],
        name=combined.name,
        context_name=combined.context_name,
    )


def is_pushed_down(plan: QueryPlan) -> bool:
    """True if every ``CW`` operator precedes every non-``CW`` operator."""
    seen_other = False
    for operator in plan.operators:
        if isinstance(operator, ContextWindowOperator):
            if seen_other:
                return False
        else:
            seen_other = True
    return True
