"""Applying the plan search to real operator pipelines.

:mod:`repro.optimizer.search` measures search strategies over an abstract
operator model (that is what Figure 11(a) compares); this module closes the
loop for real plans: it extracts each plan's *commutable segment* — the run
of filters above the pattern — scores the filters with the cost model, and
reorders them best-rank-first (most selective per unit of cost), composing
with the context window push-down and the classic rewrites into the full
optimization pipeline::

    plan = full_optimize(plan, cost_model)
"""

from __future__ import annotations

from repro.algebra.operators import Operator
from repro.algebra.plan import QueryPlan
from repro.algebra.relational_ops import Filter
from repro.optimizer.cost import CostModel
from repro.optimizer.pushdown import push_context_windows_down
from repro.optimizer.rules import (
    merge_adjacent_filters,
    swap_filter_below_projection,
)


def _filter_rank(filter_op: Filter, model: CostModel) -> float:
    """The classic pipelined-selection rank: ``(selectivity - 1) / cost``.

    More negative = filters more per unit of cost = run earlier.
    """
    selectivity = model.selectivity(filter_op)
    return (selectivity - 1.0) / model.unit_cost(filter_op)


def reorder_filters(
    plan: QueryPlan, model: CostModel | None = None
) -> QueryPlan:
    """Order each adjacent run of filters by rank (cheapest-selective first).

    Only *adjacent* filters commute unconditionally — a filter cannot move
    across a projection or pattern without the preservation analysis of
    :mod:`repro.optimizer.rules` — so runs are reordered in place.
    """
    model = model or CostModel()
    operators: list[Operator] = []
    run: list[Filter] = []

    def flush() -> None:
        if run:
            run.sort(key=lambda f: _filter_rank(f, model))
            operators.extend(run)
            run.clear()

    for operator in plan.operators:
        if isinstance(operator, Filter):
            run.append(operator)
        else:
            flush()
            operators.append(operator)
    flush()
    if operators == plan.operators:
        return plan
    return QueryPlan(operators, name=plan.name, context_name=plan.context_name)


def full_optimize(
    plan: QueryPlan, model: CostModel | None = None
) -> QueryPlan:
    """The complete single-plan optimization pipeline.

    1. context window push-down (Section 5.2, Theorem 1);
    2. classic rewrites — filter/projection swap, then filter runs
       reordered by rank (Section 5.2's "existing approaches");
    3. adjacent-filter merging happens *after* the reorder so the merged
       conjunct evaluates its cheapest-selective condition first
       (``And`` evaluation short-circuits left to right).
    """
    model = model or CostModel()
    plan = push_context_windows_down(plan)
    # swap filters below projections first so the reorderable run is maximal
    plan = swap_filter_below_projection(plan)
    plan = reorder_filters(plan, model)
    plan = merge_adjacent_filters(plan)
    return plan
