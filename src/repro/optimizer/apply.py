"""Applying the plan search to real operator pipelines.

:mod:`repro.optimizer.search` measures search strategies over an abstract
operator model (that is what Figure 11(a) compares); this module closes the
loop for real plans: it extracts each plan's *commutable segment* — the run
of filters above the pattern — scores the filters with the cost model, and
reorders them best-rank-first (most selective per unit of cost), composing
with the context window push-down and the classic rewrites into the full
optimization pipeline::

    plan = full_optimize(plan, cost_model)
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.algebra.operators import Operator
from repro.algebra.plan import CombinedQueryPlan, QueryPlan
from repro.algebra.relational_ops import Filter
from repro.optimizer.cost import CostModel
from repro.optimizer.pushdown import push_context_windows_down
from repro.optimizer.rules import (
    merge_adjacent_filters,
    swap_filter_below_projection,
)


@dataclass(frozen=True)
class OptimizationRules:
    """Per-rule enable/disable switches for the optimization pipeline.

    Every rewrite is individually toggleable so equivalence tooling (the
    ``repro.difftest`` harness, the optimizer property tests) can diff a
    plan with exactly one rule on against the same plan with it off — each
    rule must be result-preserving on its own, not only in composition.

    ``from_spec`` normalises the engine-facing spec:

    * ``True`` → :meth:`default` — the context window push-down only, the
      paper's Section 5.2 rewrite and the engines' historical behaviour;
    * ``False`` → :meth:`none` — the naive Table 1 plan, untouched;
    * an :class:`OptimizationRules` instance passes through unchanged.
    """

    pushdown: bool = True
    filter_swap: bool = False
    filter_reorder: bool = False
    filter_merge: bool = False

    @classmethod
    def default(cls) -> "OptimizationRules":
        """What ``optimize=True`` has always meant: push-down only."""
        return cls()

    @classmethod
    def none(cls) -> "OptimizationRules":
        return cls(False, False, False, False)

    @classmethod
    def all(cls) -> "OptimizationRules":
        """Every rewrite on — the :func:`full_optimize` pipeline."""
        return cls(True, True, True, True)

    @classmethod
    def from_spec(cls, spec: "bool | OptimizationRules") -> "OptimizationRules":
        if isinstance(spec, OptimizationRules):
            return spec
        if spec is True:
            return cls.default()
        if spec is False:
            return cls.none()
        raise TypeError(
            f"optimize must be a bool or OptimizationRules, got {spec!r}"
        )

    def __bool__(self) -> bool:
        return any(getattr(self, f.name) for f in fields(self))


def _filter_rank(filter_op: Filter, model: CostModel) -> float:
    """The classic pipelined-selection rank: ``(selectivity - 1) / cost``.

    More negative = filters more per unit of cost = run earlier.
    """
    selectivity = model.selectivity(filter_op)
    return (selectivity - 1.0) / model.unit_cost(filter_op)


def reorder_filters(
    plan: QueryPlan, model: CostModel | None = None
) -> QueryPlan:
    """Order each adjacent run of filters by rank (cheapest-selective first).

    Only *adjacent* filters commute unconditionally — a filter cannot move
    across a projection or pattern without the preservation analysis of
    :mod:`repro.optimizer.rules` — so runs are reordered in place.
    """
    model = model or CostModel()
    operators: list[Operator] = []
    run: list[Filter] = []

    def flush() -> None:
        if run:
            run.sort(key=lambda f: _filter_rank(f, model))
            operators.extend(run)
            run.clear()

    for operator in plan.operators:
        if isinstance(operator, Filter):
            run.append(operator)
        else:
            flush()
            operators.append(operator)
    flush()
    if operators == plan.operators:
        return plan
    return QueryPlan(operators, name=plan.name, context_name=plan.context_name)


def full_optimize(
    plan: QueryPlan,
    model: CostModel | None = None,
    *,
    rules: OptimizationRules | None = None,
) -> QueryPlan:
    """The complete single-plan optimization pipeline.

    1. context window push-down (Section 5.2, Theorem 1);
    2. classic rewrites — filter/projection swap, then filter runs
       reordered by rank (Section 5.2's "existing approaches");
    3. adjacent-filter merging happens *after* the reorder so the merged
       conjunct evaluates its cheapest-selective condition first
       (``And`` evaluation short-circuits left to right).

    ``rules`` disables individual rewrites (default: all on); every subset
    must be result-preserving, which the difftest property suite asserts.
    """
    model = model or CostModel()
    rules = OptimizationRules.all() if rules is None else rules
    if rules.pushdown:
        plan = push_context_windows_down(plan)
    # swap filters below projections first so the reorderable run is maximal
    if rules.filter_swap:
        plan = swap_filter_below_projection(plan)
    if rules.filter_reorder:
        plan = reorder_filters(plan, model)
    if rules.filter_merge:
        plan = merge_adjacent_filters(plan)
    return plan


def optimize_combined(
    combined: CombinedQueryPlan,
    rules: OptimizationRules,
    model: CostModel | None = None,
) -> CombinedQueryPlan:
    """Apply the rule-gated pipeline to every plan of a combined plan.

    This is the engines' optimization entry point: a
    :class:`~repro.runtime.engine.CaesarEngine` built with
    ``optimize=OptimizationRules(...)`` routes its plan templates through
    here, so each rewrite can be switched independently per engine.
    """
    if not rules:
        return combined
    model = model or CostModel()
    return CombinedQueryPlan(
        [full_optimize(plan, model, rules=rules) for plan in combined.plans],
        name=combined.name,
        context_name=combined.context_name,
    )
