"""Plan generation (Section 4.2): queries → individual and combined plans.

Phase 2 of the CAESAR model translation.  Each event query becomes a
bottom-up operator pipeline per Table 1:

====================  =========================
Event query clause    Operator(s)
====================  =========================
INITIATE CONTEXT c    ``CI_c``
SWITCH CONTEXT c      ``CI_c``, ``CT_curr``
TERMINATE CONTEXT c   ``CT_c``
DERIVE E(A)           ``PR_{A,E}``
PATTERN P             ``P``
WHERE θ               ``FL_θ``
CONTEXT c             ``CW_c``
====================  =========================

The *initial* (non-optimized) plan places the context window above the
filter, as in Figure 6(a); the optimizer's push-down moves it to the bottom
(Figure 6(b)).  A query belonging to several contexts yields one plan per
context (``curr`` for a SWITCH is the plan's context).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.algebra.context_ops import (
    ContextInitiation,
    ContextTermination,
    ContextWindowOperator,
)
from repro.algebra.operators import Operator
from repro.algebra.pattern import PatternOperator
from repro.algebra.plan import CombinedQueryPlan, QueryPlan
from repro.algebra.relational_ops import Filter, Projection
from repro.algebra.seq_aggregate import (
    AggregateOutput,
    MatchAggregateProjection,
    PatternAggregateOperator,
    online_aggregation_supported,
)
from repro.core.queries import EventQuery, QueryAction
from repro.errors import PlanError
from repro.events.timebase import TimePoint

#: How DERIVE aggregates are evaluated: ``"online"`` propagates summaries
#: during pattern evaluation (linear in events), ``"materialize"``
#: enumerates every match and aggregates afterwards (the oracle).
AGGREGATION_MODES = ("online", "materialize")


def build_query_plan(
    query: EventQuery,
    context: str,
    *,
    retention: TimePoint = 300,
    with_context_window: bool = True,
    aggregation: str = "online",
) -> QueryPlan:
    """Translate one query, scoped to ``context``, into an individual plan.

    ``with_context_window=False`` omits the ``CW`` operator — this is how the
    context-independent baseline builds its always-on plans.

    ``aggregation`` selects the evaluation strategy for aggregating DERIVE
    queries.  Online-ineligible queries (negation, cross-variable
    predicates) silently fall back to materialization, so both modes accept
    every query.
    """
    if aggregation not in AGGREGATION_MODES:
        raise PlanError(
            f"unknown aggregation mode {aggregation!r}; expected one of "
            f"{AGGREGATION_MODES}"
        )
    if query.derive_aggregates:
        return _build_aggregate_plan(
            query,
            context,
            retention=retention,
            with_context_window=with_context_window,
            online=(
                aggregation == "online"
                and online_aggregation_supported(query.pattern, query.where)
            ),
        )
    operators: list[Operator] = [PatternOperator(query.pattern, retention=retention)]
    if query.where is not None:
        operators.append(Filter(query.where))
    if with_context_window:
        operators.append(ContextWindowOperator(context))
    if query.action is QueryAction.DERIVE:
        if query.derive_type is None:
            raise PlanError(f"query {query.name!r}: DERIVE without output type")
        operators.append(Projection(query.derive_type, query.derive_items))
    elif query.action is QueryAction.INITIATE:
        assert query.target_context is not None
        operators.append(ContextInitiation(query.target_context))
    elif query.action is QueryAction.TERMINATE:
        assert query.target_context is not None
        operators.append(ContextTermination(query.target_context))
    elif query.action is QueryAction.SWITCH:
        assert query.target_context is not None
        operators.append(ContextInitiation(query.target_context))
        operators.append(ContextTermination(context))
    else:  # pragma: no cover - QueryAction is exhaustive
        raise PlanError(f"unsupported query action: {query.action}")
    return QueryPlan(
        operators, name=f"{query.name}@{context}", context_name=context
    )


def _build_aggregate_plan(
    query: EventQuery,
    context: str,
    *,
    retention: TimePoint,
    with_context_window: bool,
    online: bool,
) -> QueryPlan:
    """The plan of an aggregating DERIVE query.

    Online: one :class:`PatternAggregateOperator` absorbs pattern, filter
    and aggregation.  Materialize: the regular pattern/filter pipeline with
    a :class:`MatchAggregateProjection` on top — the oracle shape.
    """
    assert query.derive_type is not None
    output = AggregateOutput(query.derive_type, query.derive_aggregates)
    operators: list[Operator]
    if online:
        operators = [
            PatternAggregateOperator(
                query.pattern,
                (output,),
                where=query.where,
                retention=retention,
            )
        ]
        if with_context_window:
            operators.append(ContextWindowOperator(context))
    else:
        operators = [PatternOperator(query.pattern, retention=retention)]
        if query.where is not None:
            operators.append(Filter(query.where))
        if with_context_window:
            operators.append(ContextWindowOperator(context))
        operators.append(MatchAggregateProjection((output,)))
    return QueryPlan(
        operators, name=f"{query.name}@{context}", context_name=context
    )


def build_plans_for_queries(
    queries: Iterable[EventQuery],
    *,
    retention: TimePoint = 300,
    with_context_window: bool = True,
    aggregation: str = "online",
) -> list[QueryPlan]:
    """One plan per (query, context) pair, in stable order."""
    plans: list[QueryPlan] = []
    for query in queries:
        contexts = query.contexts or ("default",)
        for context in contexts:
            plans.append(
                build_query_plan(
                    query,
                    context,
                    retention=retention,
                    with_context_window=with_context_window,
                    aggregation=aggregation,
                )
            )
    return plans


def build_combined_plans(
    plans: Sequence[QueryPlan],
) -> list[CombinedQueryPlan]:
    """Compose individual plans into combined plans (Section 4.2, step 2).

    Plans are grouped by context (all queries in a combined plan belong to
    the same context, by the independence assumption of Section 3.3); within
    a context, producer plans feed consumer plans.
    """
    by_context: dict[str | None, list[QueryPlan]] = {}
    order: list[str | None] = []
    for plan in plans:
        if plan.context_name not in by_context:
            by_context[plan.context_name] = []
            order.append(plan.context_name)
        by_context[plan.context_name].append(plan)
    return [
        CombinedQueryPlan(
            by_context[context],
            name=f"combined@{context}",
            context_name=context,
        )
        for context in order
    ]
