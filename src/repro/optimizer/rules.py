"""Context-oblivious rewrite rules the CAESAR optimizer inherits (Section 5.2).

"Since some operators of the CAESAR algebra are similar to other stream
algebras, existing approaches, from operator reordering to operator merging,
can be exploited by the CAESAR optimizer as well."  We implement the two the
paper names:

* adjacent filters merge into a single filter with the conjoined predicate;
* a projection and a filter may swap if the projection discards no
  attribute the filter reads.
"""

from __future__ import annotations

from repro.algebra.expressions import And
from repro.algebra.operators import Operator
from repro.algebra.plan import QueryPlan
from repro.algebra.relational_ops import Filter, Projection


def merge_adjacent_filters(plan: QueryPlan) -> QueryPlan:
    """Combine runs of adjacent filters into one conjunctive filter."""
    operators: list[Operator] = []
    for operator in plan.operators:
        if (
            isinstance(operator, Filter)
            and operators
            and isinstance(operators[-1], Filter)
        ):
            previous = operators.pop()
            operators.append(
                Filter(And(previous.predicate, operator.predicate))
            )
        else:
            operators.append(operator)
    if len(operators) == len(plan.operators):
        return plan
    return QueryPlan(operators, name=plan.name, context_name=plan.context_name)


def projection_preserves(projection: Projection, filter_op: Filter) -> bool:
    """True if ``projection`` keeps every attribute ``filter_op`` reads.

    After a projection the events are re-typed, so the filter would read the
    *output* attribute names; the swap is safe only when each referenced
    attribute is produced by the projection under the same name.
    """
    produced = {name for name, _ in projection.items}
    needed = {attr for _, attr in filter_op.predicate.attributes()}
    return needed <= produced


def swap_filter_below_projection(plan: QueryPlan) -> QueryPlan:
    """Push filters below adjacent projections when semantics allow.

    A filter directly above a projection commutes with it if the projection
    passes through (by name) every attribute the filter reads — then the
    filter can run first on the cheaper, un-projected events.  The rewrite
    additionally requires the filter's references to resolve against the
    projection's *inputs*, which holds exactly when the projection items are
    identity attribute references.
    """
    operators = list(plan.operators)
    changed = True
    while changed:
        changed = False
        for index in range(len(operators) - 1):
            below, above = operators[index], operators[index + 1]
            if not (isinstance(below, Projection) and isinstance(above, Filter)):
                continue
            if not projection_preserves(below, above):
                continue
            identity = all(
                getattr(expr, "attr", None) == name for name, expr in below.items
            )
            if not identity:
                continue
            operators[index], operators[index + 1] = above, below
            changed = True
    if operators == plan.operators:
        return plan
    return QueryPlan(operators, name=plan.name, context_name=plan.context_name)


def apply_classic_rewrites(plan: QueryPlan) -> QueryPlan:
    """Apply all context-oblivious rewrites to a fixpoint."""
    rewritten = swap_filter_below_projection(merge_adjacent_filters(plan))
    if rewritten.operators == plan.operators:
        return plan
    return apply_classic_rewrites(rewritten)
