"""Plan search: exhaustive (context-independent) vs. greedy context-aware.

Section 5.3 analyses the multi-query optimization search space: the number
of ways to group ``n`` queries is the Bell number ``B_n`` and ordering the
operators of a plan is exponential in plan size; the state-of-the-art MQO
solutions therefore "tend to be expensive".  CAESAR instead (1) pushes
context windows down and (2) groups windows by context so each group's
search space is small — Figure 11(a) reports a 2^12-fold faster optimization
at plan size 24.

We reproduce both searchers over an abstract *logical operator* model so the
search cost is a pure function of plan size:

* :func:`exhaustive_search` — optimal operator ordering by dynamic
  programming over subsets, ``O(2^n · n)`` (the textbook exact algorithm;
  plain enumeration of all ``n!`` orders would be even worse).
* :func:`greedy_search` — rank-based greedy ordering, ``O(n²)``.
* :func:`context_aware_search` — CAESAR's strategy: partition operators by
  context group, push each group's context window down, and run the cheap
  search within each small group.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import OptimizerError

#: Logical operator kinds used by the search model.
KIND_PATTERN = "pattern"
KIND_FILTER = "filter"
KIND_PROJECTION = "projection"
KIND_WINDOW = "window"
KIND_SINK = "sink"


@dataclass(frozen=True)
class LogicalOperator:
    """An abstract operator: identity, kind, unit cost, selectivity.

    ``prerequisites`` are indexes of operators that must be placed earlier
    (e.g. a filter reading a pattern's output must follow the pattern).
    """

    index: int
    kind: str
    unit_cost: float
    selectivity: float
    prerequisites: frozenset[int] = frozenset()
    group: str = ""


@dataclass
class SearchResult:
    """Outcome of a plan search."""

    order: tuple[int, ...]
    cost: float
    nodes_explored: int
    elapsed_seconds: float
    strategy: str

    def __repr__(self) -> str:
        return (
            f"<SearchResult {self.strategy} cost={self.cost:.3f} "
            f"nodes={self.nodes_explored} elapsed={self.elapsed_seconds:.4f}s>"
        )


def make_search_space(
    num_operators: int,
    *,
    seed: int = 7,
    num_groups: int = 1,
    input_rate: float = 1.0,
) -> list[LogicalOperator]:
    """A synthetic plan of ``num_operators`` commutable operators.

    The first operator of each group is a pattern (a prerequisite of the
    rest of its group); the remainder are filters and projections with
    seeded random costs/selectivities.  ``num_groups`` splits the plan into
    context groups for :func:`context_aware_search`.
    """
    if num_operators < num_groups:
        raise OptimizerError(
            f"need at least one operator per group: "
            f"{num_operators} operators, {num_groups} groups"
        )
    rng = random.Random(seed)
    operators: list[LogicalOperator] = []
    for index in range(num_operators):
        group = f"g{index % num_groups}"
        anchor = index % num_groups  # the group's pattern operator index
        if index < num_groups:
            operators.append(
                LogicalOperator(
                    index=index,
                    kind=KIND_PATTERN,
                    unit_cost=2.0,
                    selectivity=round(rng.uniform(0.6, 0.95), 3),
                    group=group,
                )
            )
        else:
            kind = KIND_FILTER if rng.random() < 0.7 else KIND_PROJECTION
            selectivity = (
                round(rng.uniform(0.2, 0.9), 3) if kind == KIND_FILTER else 1.0
            )
            operators.append(
                LogicalOperator(
                    index=index,
                    kind=kind,
                    unit_cost=round(rng.uniform(0.3, 1.5), 3),
                    selectivity=selectivity,
                    prerequisites=frozenset({anchor}),
                    group=group,
                )
            )
    return operators


def _order_cost(
    operators: Sequence[LogicalOperator], order: Sequence[int], input_rate: float
) -> float:
    rate = input_rate
    total = 0.0
    by_index = {op.index: op for op in operators}
    for index in order:
        operator = by_index[index]
        total += rate * operator.unit_cost
        rate *= operator.selectivity
    return total


def exhaustive_search(
    operators: Sequence[LogicalOperator], *, input_rate: float = 1.0
) -> SearchResult:
    """Optimal ordering by dynamic programming over operator subsets.

    State: the set of already-placed operators (as a bitmask).  Because
    selectivities multiply, the downstream rate depends only on the set, so
    ``best[mask]`` is well-defined.  Complexity ``O(2^n · n)`` — this is the
    *cheapest* exact search, and it is still exponential, which is the
    paper's point.
    """
    started = time.perf_counter()
    n = len(operators)
    ops = list(operators)
    # Bit positions are *local* list positions; prerequisites outside the
    # given operator set (possible when searching within a context group)
    # are treated as already placed.
    position_of = {op.index: position for position, op in enumerate(ops)}
    prereq_masks = [
        sum(
            1 << position_of[p]
            for p in op.prerequisites
            if p in position_of
        )
        for op in ops
    ]
    selectivities = [op.selectivity for op in ops]
    unit_costs = [op.unit_cost for op in ops]

    # best_cost[mask] = min cost of placing exactly the operators in mask.
    best_cost: dict[int, float] = {0: 0.0}
    best_prev: dict[int, int] = {}
    rates: dict[int, float] = {0: input_rate}
    nodes = 0
    full = (1 << n) - 1
    # Iterate masks in increasing popcount order via plain range — a mask's
    # predecessors (mask without one bit) are always smaller integers.
    for mask in range(1, full + 1):
        best = None
        chosen = -1
        for bit_index in range(n):
            bit = 1 << bit_index
            if not mask & bit:
                continue
            previous = mask ^ bit
            if previous not in best_cost:
                continue
            if prereq_masks[bit_index] & ~previous:
                continue  # a prerequisite is not yet placed
            nodes += 1
            candidate = best_cost[previous] + rates[previous] * unit_costs[bit_index]
            if best is None or candidate < best:
                best = candidate
                chosen = bit_index
        if best is None:
            continue  # unreachable mask (prerequisite violation)
        best_cost[mask] = best
        best_prev[mask] = chosen
        rates[mask] = rates[mask ^ (1 << chosen)] * selectivities[chosen]

    if full not in best_cost:
        raise OptimizerError("no valid operator ordering exists")
    order: list[int] = []
    mask = full
    while mask:
        chosen = best_prev[mask]
        order.append(ops[chosen].index)
        mask ^= 1 << chosen
    order.reverse()
    return SearchResult(
        order=tuple(order),
        cost=best_cost[full],
        nodes_explored=nodes,
        elapsed_seconds=time.perf_counter() - started,
        strategy="exhaustive",
    )


def greedy_search(
    operators: Sequence[LogicalOperator], *, input_rate: float = 1.0
) -> SearchResult:
    """Greedy rank ordering: repeatedly place the eligible operator with the
    best rank ``(selectivity - 1) / unit_cost`` (most filtering per unit of
    cost first — the classic heuristic for pipelined selections)."""
    started = time.perf_counter()
    remaining = {op.index: op for op in operators}
    present = frozenset(remaining)
    placed: set[int] = set()
    order: list[int] = []
    nodes = 0
    while remaining:
        best_rank = None
        best_op = None
        for op in remaining.values():
            if not (op.prerequisites & present) <= placed:
                continue
            nodes += 1
            rank = (op.selectivity - 1.0) / op.unit_cost
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best_op = op
        if best_op is None:
            raise OptimizerError("cyclic prerequisites in search space")
        order.append(best_op.index)
        placed.add(best_op.index)
        del remaining[best_op.index]
    cost = _order_cost(operators, order, input_rate)
    return SearchResult(
        order=tuple(order),
        cost=cost,
        nodes_explored=nodes,
        elapsed_seconds=time.perf_counter() - started,
        strategy="greedy",
    )


def context_aware_search(
    operators: Sequence[LogicalOperator],
    *,
    input_rate: float = 1.0,
    within_group: str = "greedy",
) -> SearchResult:
    """CAESAR's search: partition by context group, optimize per group.

    Context window push-down and window grouping divide the workload into
    per-context groups (Section 5.3); the search space within each group is
    tiny, so even an exact search per group stays cheap.  The groups'
    orders are concatenated (each group's plan hangs below its own context
    window and executes independently).
    """
    started = time.perf_counter()
    groups: dict[str, list[LogicalOperator]] = {}
    for operator in operators:
        groups.setdefault(operator.group, []).append(operator)
    search = greedy_search if within_group == "greedy" else exhaustive_search
    order: list[int] = []
    cost = 0.0
    nodes = 0
    for group_ops in groups.values():
        result = search(group_ops, input_rate=input_rate)
        order.extend(result.order)
        cost += result.cost
        nodes += result.nodes_explored
    return SearchResult(
        order=tuple(order),
        cost=cost,
        nodes_explored=nodes,
        elapsed_seconds=time.perf_counter() - started,
        strategy=f"context-aware/{within_group}",
    )
