"""Context workload sharing (Section 5.3).

Given user-defined (possibly overlapping) context windows with their query
workloads, the sharing optimizer:

1. runs the context window grouping algorithm (Listing 1) to obtain
   non-overlapping grouped windows;
2. builds **one** plan instance per distinct query (by work signature) and
   activates it during the union of the grouped windows that carry the
   query — so overlapping windows execute each shared query once instead of
   once per window;
3. merges adjacent activation intervals, which is what keeps a query's
   partial matches alive across consecutive grouped windows split from the
   same user window (the *context history* requirement of Section 6.2);
4. **fuses aggregate state**: online-eligible aggregating DERIVE queries
   that share the same pattern and predicate — differing only in aggregate
   function or target attribute — collapse into one
   :class:`~repro.algebra.seq_aggregate.PatternAggregateOperator` carrying
   every fused query's output, so the summary propagation pass runs once
   for the whole group (Sharon-style shared aggregation).

The non-shared baseline (:func:`build_nonshared_workload`) instantiates one
plan per (window, query) pair — each window runs its own copy of every
query, which is what a context-unaware engine would do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.algebra.plan import QueryPlan
from repro.algebra.seq_aggregate import (
    AggregateOutput,
    PatternAggregateOperator,
    online_aggregation_supported,
)
from repro.core.grouping import GroupedWindow, group_context_windows
from repro.core.queries import EventQuery
from repro.core.windows import WindowSpec
from repro.events.timebase import TimePoint
from repro.optimizer.planner import build_query_plan


@dataclass
class ExecutionUnit:
    """A plan plus the time intervals during which it is active.

    Intervals are half-open ``[start, end)``, sorted and non-overlapping.
    Outside its intervals the unit is suspended: the scheduled engine feeds
    it nothing and its state is reset on deactivation boundaries where no
    adjacent interval continues it.
    """

    plan: QueryPlan
    intervals: tuple[tuple[TimePoint, TimePoint], ...]
    query_names: tuple[str, ...] = ()

    def active_at(self, t: TimePoint) -> bool:
        return any(start <= t < end for start, end in self.intervals)

    def interval_index_at(self, t: TimePoint) -> int | None:
        """Index of the activation interval covering ``t``, if any."""
        for index, (start, end) in enumerate(self.intervals):
            if start <= t < end:
                return index
        return None

    def total_active_length(self) -> TimePoint:
        return sum(end - start for start, end in self.intervals)

    def __repr__(self) -> str:
        spans = ", ".join(f"[{s}, {e})" for s, e in self.intervals)
        return f"<ExecutionUnit {self.plan.name!r} active {spans}>"


@dataclass
class SharedWorkload:
    """The output of the sharing optimizer: execution units + grouping."""

    units: list[ExecutionUnit]
    grouped: list[GroupedWindow]
    shared: bool

    @property
    def plan_count(self) -> int:
        return len(self.units)

    def active_units(self, t: TimePoint) -> list[ExecutionUnit]:
        return [unit for unit in self.units if unit.active_at(t)]

    def span(self) -> tuple[TimePoint, TimePoint] | None:
        """Earliest start and latest end over all units, if any."""
        starts = [s for unit in self.units for s, _ in unit.intervals]
        ends = [e for unit in self.units for _, e in unit.intervals]
        if not starts:
            return None
        return min(starts), max(ends)


def _merge_intervals(
    intervals: list[tuple[TimePoint, TimePoint]]
) -> tuple[tuple[TimePoint, TimePoint], ...]:
    """Sort and coalesce touching/overlapping half-open intervals."""
    if not intervals:
        return ()
    intervals = sorted(intervals)
    merged = [intervals[0]]
    for start, end in intervals[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end:
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return tuple(merged)


def _aggregate_fusion_key(query: EventQuery) -> tuple | None:
    """The fusion group of an aggregating query, or None if not fusible.

    Queries whose plans would run the *same* summary-propagation pass —
    same pattern, same predicate, online-eligible — share one fused
    operator even when their aggregate functions, target attributes or
    output types differ.

    The fused operator admits an event only if it carries every
    aggregation attribute of the *union* across fused outputs (the
    shared-admission rule, mirrored by the materialization oracle).  On
    schema-total streams — every typed event carrying its declared
    attributes — this coincides with per-query admission; an event
    missing an attribute is dropped for all fused outputs at once.
    """
    if not query.derive_aggregates:
        return None
    if not online_aggregation_supported(query.pattern, query.where):
        return None
    return ("aggregate", str(query.pattern), str(query.where))


def build_shared_workload(
    specs: Sequence[WindowSpec],
    *,
    retention: TimePoint = 300,
    aggregation: str = "online",
) -> SharedWorkload:
    """Shared execution of the windows' workloads via window grouping.

    One plan per distinct query signature; the plan's activation is the
    union of all grouped windows whose workload contains the query.
    With ``aggregation="online"``, fusible aggregating queries (same
    pattern and predicate) additionally collapse into one plan whose
    fused operator emits every member query's output from a single
    shared summary propagation (see :func:`_aggregate_fusion_key`).
    """
    grouped = group_context_windows(specs)
    plan_for: dict[tuple, QueryPlan] = {}
    intervals_for: dict[tuple, list[tuple[TimePoint, TimePoint]]] = {}
    names_for: dict[tuple, list[str]] = {}
    # fusion groups: key -> exemplar queries by signature, first-seen order
    fused_members: dict[tuple, dict[tuple, EventQuery]] = {}
    fused_context: dict[tuple, str] = {}
    for window in grouped:
        for query in window.queries:
            key: tuple = query.signature()
            fusion_key = (
                _aggregate_fusion_key(query)
                if aggregation == "online"
                else None
            )
            if fusion_key is not None:
                members = fused_members.setdefault(fusion_key, {})
                members.setdefault(query.signature(), query)
                fused_context.setdefault(
                    fusion_key, "+".join(window.source_names)
                )
                key = fusion_key
                # placeholder keeps first-seen unit order; filled below
                plan_for.setdefault(key, None)
            elif key not in plan_for:
                plan_for[key] = build_query_plan(
                    query,
                    context="+".join(window.source_names),
                    retention=retention,
                    with_context_window=False,
                    aggregation=aggregation,
                )
            if key not in intervals_for:
                intervals_for[key] = []
                names_for[key] = []
            intervals_for[key].append((window.start, window.end))
            if query.name not in names_for[key]:
                names_for[key].append(query.name)
    for fusion_key, members in fused_members.items():
        exemplars = list(members.values())
        first = exemplars[0]
        outputs = tuple(
            AggregateOutput(query.derive_type, query.derive_aggregates)
            for query in exemplars
        )
        operator = PatternAggregateOperator(
            first.pattern,
            outputs,
            where=first.where,
            retention=retention,
        )
        plan_for[fusion_key] = QueryPlan(
            [operator],
            name=f"{'+'.join(names_for[fusion_key])}@"
            f"{fused_context[fusion_key]}",
            context_name=fused_context[fusion_key],
        )
    units = [
        ExecutionUnit(
            plan=plan,
            intervals=_merge_intervals(intervals_for[key]),
            query_names=tuple(names_for[key]),
        )
        for key, plan in plan_for.items()
    ]
    return SharedWorkload(units=units, grouped=grouped, shared=True)


def build_nonshared_workload(
    specs: Sequence[WindowSpec],
    *,
    retention: TimePoint = 300,
    aggregation: str = "online",
) -> SharedWorkload:
    """The default non-shared execution: one plan per (window, query).

    Overlapping windows each run their own instance of every query they
    carry — the redundant work the sharing optimizer removes (Figure 14's
    baseline).  Aggregating queries keep one operator per query here;
    only the shared workload fuses their propagation passes.
    """
    units: list[ExecutionUnit] = []
    for spec in specs:
        for query in spec.queries:
            plan = build_query_plan(
                query,
                context=spec.name,
                retention=retention,
                with_context_window=False,
                aggregation=aggregation,
            )
            units.append(
                ExecutionUnit(
                    plan=plan,
                    intervals=((spec.start, spec.end),),
                    query_names=(query.name,),
                )
            )
    return SharedWorkload(
        units=units, grouped=group_context_windows(specs), shared=False
    )
