"""Context workload sharing (Section 5.3).

Given user-defined (possibly overlapping) context windows with their query
workloads, the sharing optimizer:

1. runs the context window grouping algorithm (Listing 1) to obtain
   non-overlapping grouped windows;
2. builds **one** plan instance per distinct query (by work signature) and
   activates it during the union of the grouped windows that carry the
   query — so overlapping windows execute each shared query once instead of
   once per window;
3. merges adjacent activation intervals, which is what keeps a query's
   partial matches alive across consecutive grouped windows split from the
   same user window (the *context history* requirement of Section 6.2).

The non-shared baseline (:func:`build_nonshared_workload`) instantiates one
plan per (window, query) pair — each window runs its own copy of every
query, which is what a context-unaware engine would do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.algebra.plan import QueryPlan
from repro.core.grouping import GroupedWindow, group_context_windows
from repro.core.queries import EventQuery
from repro.core.windows import WindowSpec
from repro.events.timebase import TimePoint
from repro.optimizer.planner import build_query_plan


@dataclass
class ExecutionUnit:
    """A plan plus the time intervals during which it is active.

    Intervals are half-open ``[start, end)``, sorted and non-overlapping.
    Outside its intervals the unit is suspended: the scheduled engine feeds
    it nothing and its state is reset on deactivation boundaries where no
    adjacent interval continues it.
    """

    plan: QueryPlan
    intervals: tuple[tuple[TimePoint, TimePoint], ...]
    query_names: tuple[str, ...] = ()

    def active_at(self, t: TimePoint) -> bool:
        return any(start <= t < end for start, end in self.intervals)

    def interval_index_at(self, t: TimePoint) -> int | None:
        """Index of the activation interval covering ``t``, if any."""
        for index, (start, end) in enumerate(self.intervals):
            if start <= t < end:
                return index
        return None

    def total_active_length(self) -> TimePoint:
        return sum(end - start for start, end in self.intervals)

    def __repr__(self) -> str:
        spans = ", ".join(f"[{s}, {e})" for s, e in self.intervals)
        return f"<ExecutionUnit {self.plan.name!r} active {spans}>"


@dataclass
class SharedWorkload:
    """The output of the sharing optimizer: execution units + grouping."""

    units: list[ExecutionUnit]
    grouped: list[GroupedWindow]
    shared: bool

    @property
    def plan_count(self) -> int:
        return len(self.units)

    def active_units(self, t: TimePoint) -> list[ExecutionUnit]:
        return [unit for unit in self.units if unit.active_at(t)]

    def span(self) -> tuple[TimePoint, TimePoint] | None:
        """Earliest start and latest end over all units, if any."""
        starts = [s for unit in self.units for s, _ in unit.intervals]
        ends = [e for unit in self.units for _, e in unit.intervals]
        if not starts:
            return None
        return min(starts), max(ends)


def _merge_intervals(
    intervals: list[tuple[TimePoint, TimePoint]]
) -> tuple[tuple[TimePoint, TimePoint], ...]:
    """Sort and coalesce touching/overlapping half-open intervals."""
    if not intervals:
        return ()
    intervals = sorted(intervals)
    merged = [intervals[0]]
    for start, end in intervals[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end:
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return tuple(merged)


def build_shared_workload(
    specs: Sequence[WindowSpec],
    *,
    retention: TimePoint = 300,
) -> SharedWorkload:
    """Shared execution of the windows' workloads via window grouping.

    One plan per distinct query signature; the plan's activation is the
    union of all grouped windows whose workload contains the query.
    """
    grouped = group_context_windows(specs)
    plan_for: dict[tuple, QueryPlan] = {}
    intervals_for: dict[tuple, list[tuple[TimePoint, TimePoint]]] = {}
    names_for: dict[tuple, list[str]] = {}
    for window in grouped:
        for query in window.queries:
            signature = query.signature()
            if signature not in plan_for:
                plan_for[signature] = build_query_plan(
                    query,
                    context="+".join(window.source_names),
                    retention=retention,
                    with_context_window=False,
                )
                intervals_for[signature] = []
                names_for[signature] = []
            intervals_for[signature].append((window.start, window.end))
            if query.name not in names_for[signature]:
                names_for[signature].append(query.name)
    units = [
        ExecutionUnit(
            plan=plan,
            intervals=_merge_intervals(intervals_for[signature]),
            query_names=tuple(names_for[signature]),
        )
        for signature, plan in plan_for.items()
    ]
    return SharedWorkload(units=units, grouped=grouped, shared=True)


def build_nonshared_workload(
    specs: Sequence[WindowSpec],
    *,
    retention: TimePoint = 300,
) -> SharedWorkload:
    """The default non-shared execution: one plan per (window, query).

    Overlapping windows each run their own instance of every query they
    carry — the redundant work the sharing optimizer removes (Figure 14's
    baseline).
    """
    units: list[ExecutionUnit] = []
    for spec in specs:
        for query in spec.queries:
            plan = build_query_plan(
                query,
                context=spec.name,
                retention=retention,
                with_context_window=False,
            )
            units.append(
                ExecutionUnit(
                    plan=plan,
                    intervals=((spec.start, spec.end),),
                    query_names=(query.name,),
                )
            )
    return SharedWorkload(
        units=units, grouped=group_context_windows(specs), shared=False
    )
