"""Checkpoint-based crash recovery (autosave, restore, suffix replay).

:mod:`repro.runtime.checkpoint` can capture and restore engine state but
nothing drives it; this module adds the driver.  A :class:`RecoveryManager`
attached to a :class:`~repro.runtime.supervisor.SupervisedEngine` autosaves
a checkpoint every ``interval`` stream-time units (at batch boundaries, so
a checkpoint always reflects a prefix of whole stream transactions) and
records the **watermark** alongside: the largest timestamp whose events are
fully reflected in the snapshot.

After a crash, recovery is restore + replay::

    manager = RecoveryManager(interval=50)
    engine = SupervisedEngine(model, recovery=manager)
    ... run until the process dies ...

    fresh = SupervisedEngine(model, recovery=manager)   # same configuration
    watermark = manager.recover(fresh)                  # latest valid checkpoint
    outputs = manager.replay(fresh, events)             # feeds t > watermark

The determinism contract (tested): outputs already emitted up to the
watermark, concatenated with the replayed outputs, are exactly the outputs
of the uninterrupted run.  Checkpoints are kept newest-first up to
``history``; if the newest fails to restore (corrupt, wrong shape), older
ones are tried in turn — "restore the latest *valid* checkpoint".
"""

from __future__ import annotations

from typing import Iterable, TYPE_CHECKING

from repro.errors import CaesarError
from repro.events.event import Event
from repro.events.timebase import TimePoint
from repro.runtime.checkpoint import capture_checkpoint, restore_checkpoint
from repro.runtime.session import EngineSession

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.engine import CaesarEngine


class RecoveryManager:
    """Autosaves checkpoints and replays the stream suffix after a crash.

    Parameters
    ----------
    interval:
        Stream-time units between autosaved checkpoints.
    history:
        How many recent checkpoints to keep for fallback restore.
    """

    def __init__(self, *, interval: TimePoint, history: int = 3):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if history < 1:
            raise ValueError(f"history must be >= 1, got {history}")
        self.interval = interval
        self.history = history
        #: ``(watermark, checkpoint)`` pairs, oldest first
        self._checkpoints: list[tuple[TimePoint, dict]] = []
        self._last_checkpoint_at: TimePoint | None = None
        self.checkpoints_taken = 0
        self.recovery_replays = 0
        #: checkpoints that failed to restore during :meth:`recover`
        self.invalid_checkpoints = 0
        self._last_restored: TimePoint | None = None

    # ------------------------------------------------------------------
    # autosave
    # ------------------------------------------------------------------

    def observe(self, engine: "CaesarEngine", t: TimePoint) -> bool:
        """Batch-boundary hook: checkpoint if ``interval`` has elapsed.

        Returns True if a checkpoint was taken at ``t``.
        """
        due = (
            self._last_checkpoint_at is None
            or t - self._last_checkpoint_at >= self.interval
        )
        if due:
            self.checkpoint(engine, t)
        return due

    def checkpoint(self, engine: "CaesarEngine", watermark: TimePoint) -> dict:
        """Snapshot the engine now; all events ``<= watermark`` are inside."""
        snapshot = capture_checkpoint(engine)
        self._checkpoints.append((watermark, snapshot))
        del self._checkpoints[: -self.history]
        self._last_checkpoint_at = watermark
        self.checkpoints_taken += 1
        return snapshot

    @property
    def watermark(self) -> TimePoint | None:
        """Watermark of the newest checkpoint, or None if none taken."""
        if not self._checkpoints:
            return None
        return self._checkpoints[-1][0]

    @property
    def stored_checkpoints(self) -> int:
        return len(self._checkpoints)

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def recover(self, engine: "CaesarEngine") -> TimePoint | None:
        """Restore the latest valid checkpoint into a fresh engine.

        Checkpoints are tried newest-first; ones that fail to restore are
        counted in :attr:`invalid_checkpoints` and skipped.  Returns the
        watermark of the restored checkpoint — replay events strictly
        after it — or ``None`` when no checkpoint could be restored (the
        engine is untouched: replay from the beginning).
        """
        for watermark, snapshot in reversed(self._checkpoints):
            try:
                restore_checkpoint(engine, snapshot)
            except CaesarError:
                self.invalid_checkpoints += 1
                continue
            self.recovery_replays += 1
            self._last_restored = watermark
            return watermark
        self._last_restored = None
        return None

    def replay(
        self, engine: "CaesarEngine", events: Iterable[Event]
    ) -> list[Event]:
        """Feed the suffix of ``events`` after the restored watermark.

        Call :meth:`recover` first; this filters ``events`` to timestamps
        strictly greater than the watermark of the checkpoint the last
        :meth:`recover` actually restored (all of them if nothing was
        restored) and feeds them through an incremental session, returning
        the derived outputs.
        """
        watermark = self._last_restored
        suffix = [
            e for e in events if watermark is None or e.timestamp > watermark
        ]
        session = EngineSession(engine)
        return session.feed(suffix)

    def recover_and_replay(
        self, engine: "CaesarEngine", events: Iterable[Event]
    ) -> tuple[TimePoint | None, list[Event]]:
        """Convenience: :meth:`recover` then :meth:`replay`.

        Returns ``(watermark, replayed_outputs)``.  Outputs emitted by the
        crashed run up to ``watermark`` plus ``replayed_outputs`` equal the
        uninterrupted run's outputs (the determinism-of-recovery contract).
        """
        watermark = self.recover(engine)
        return watermark, self.replay(engine, events)
