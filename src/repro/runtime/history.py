"""Context history (Section 6.2, "Context Processing").

When a user-defined context window ends, the event queries associated with
it are suspended and will not produce new matches until re-activated — so
their partial matches can be safely discarded.  But when a user window has
been *split* into grouped windows (Listing 1), partial matches must be kept
across the grouped windows originating from the same user window and only
expire when the last of them ends.

:class:`ContextHistory` implements both behaviours over the pattern
operators' snapshot/restore/reset hooks.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.algebra.plan import CombinedQueryPlan, QueryPlan
from repro.events.timebase import TimePoint


class ContextHistory:
    """Manages partial-match lifetimes across context window boundaries."""

    def __init__(self) -> None:
        #: snapshots saved for suspended-but-continuing workloads
        self._snapshots: dict[str, list[Mapping]] = {}
        self.discards = 0
        self.preservations = 0

    # ------------------------------------------------------------------
    # plain context windows: discard on termination
    # ------------------------------------------------------------------

    def on_context_terminated(self, plan: CombinedQueryPlan | QueryPlan) -> None:
        """The window ended for good: partial matches are safely discarded."""
        plan.reset_state()
        self.discards += 1

    # ------------------------------------------------------------------
    # grouped windows: preserve across adjacent splits
    # ------------------------------------------------------------------

    def preserve(self, key: str, plan: QueryPlan) -> None:
        """Save a plan's pattern state across a grouped-window boundary."""
        snapshots = [
            operator.snapshot_state() for operator in plan.pattern_operators
        ]
        self._snapshots[key] = snapshots
        self.preservations += 1

    def restore(self, key: str, plan: QueryPlan) -> bool:
        """Restore previously preserved state; True if something restored."""
        snapshots = self._snapshots.pop(key, None)
        if snapshots is None:
            return False
        for operator, snapshot in zip(plan.pattern_operators, snapshots):
            operator.restore_state(snapshot)
        return True

    def drop(self, key: str) -> None:
        """Expire preserved state (the originating user window ended)."""
        if self._snapshots.pop(key, None) is not None:
            self.discards += 1

    @property
    def held_keys(self) -> tuple[str, ...]:
        return tuple(self._snapshots)
