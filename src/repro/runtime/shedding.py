"""Context-aware load shedding and admission control.

Under overload a CAESAR engine has information no context-independent
system has: it knows which contexts are *active* on each partition, which
event types the deriving queries consume (the events that decide context
transitions), and which partial matches are *hot* — one event away from
completing, or mid-sequence awaiting a specific type.  This module turns
that knowledge into a graceful-degradation policy instead of letting the
pending queue grow without bound.

The :class:`LoadShedder` runs inside ``CaesarEngine._prepare_batch`` —
*before* events are distributed to partition queues — and classifies every
event of a batch down a decision ladder:

1. **deriving-interest** — the event's type feeds a context deriving
   query.  Always admitted: dropping it could flip a context transition
   and change which plans run for everyone else.
2. **hot** — the event's type is awaited by a live partial match of an
   active context's plan, or (with ``protect_key`` configured) its key
   value is bound inside one.  Always admitted: it may complete a match.
3. **active-interest** — the type is consumed by at least one active,
   non-suspended context's processing plan.  Admitted.
4. **suspended** — every interested active context is currently
   shed-suspended (pressure above ``suspend_pressure`` and context
   priority below ``suspend_below_priority``).  Shed.
5. **warm** — the type interests only *inactive* contexts.  Under the
   paper's suspension semantics their plans would receive nothing anyway,
   so these shed first as pressure climbs, weighted by the interested
   contexts' priorities.
6. **cold** — no plan is interested at all.  Sheds at twice the warm
   rate; pure queue ballast.

One guarantee keeps shed-on output-equivalent to shed-off on the
protected subset: for every ``(partition, timestamp)`` whose events would
*all* shed, the last event in batch order is retained as a **tick**.  The
partition's stream transaction then still forms, so ``advance_time`` fires
(trailing-negation deadlines), garbage collection runs, and window
bookkeeping advances exactly as in the unshedded run.

**Determinism contract.**  Shed decisions are a pure function of
``(seed, stream, model)``: sampling hashes ``(seed, timestamp, index in
batch)`` through splitmix64 — no wall clock, no ``random`` module, no
``event_id`` — and the controller's feedback signals are quantized (cost
to 1e-6, pressure to 1/4096) so the float-ulp divergence between backend
cost associations can never flip a knife-edge decision.  Identical seeds
therefore give byte-identical decision streams across the serial, thread
and process backends — asserted by the ``shed`` difftest axis via
:attr:`LoadShedder.decision_digest`.

For the process backend the parent (which admits) cannot read worker-side
partition state; workers piggyback a per-partition feedback triple
``(active contexts, hot awaited types, hot key values)`` on every exec
reply.  The parent's view is thus "state after all transactions < t" — the
same view a serial run reads live, so decisions agree.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import struct
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.events.event import Event
from repro.events.timebase import TimePoint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.engine import CaesarEngine, EngineReport

#: Environment variable consulted when an engine is built without an
#: explicit shedding spec.  ``off``/empty disables (the default), ``on``
#: enables with defaults, and a ``key=value,key=value`` string configures
#: individual fields (e.g. ``CAESAR_SHED=latency_target=2.0,cost_rate=40``).
SHED_ENV_VAR = "CAESAR_SHED"

_OFF_VALUES = frozenset({"", "0", "off", "false", "no", "none", "disabled"})
_ON_VALUES = frozenset({"1", "on", "true", "yes", "enabled", "default"})

#: Decision codes, one byte per event per batch, in batch order.  The
#: digest and the optional decision log are built from these.
DECISION_PROTECTED = 0  #: admitted by ladder rungs 1-3
DECISION_SAMPLED = 1  #: warm/cold candidate admitted by sampling
DECISION_SHED_COLD = 2
DECISION_SHED_WARM = 3
DECISION_SHED_SUSPENDED = 4
DECISION_TICK = 5  #: would shed, retained to keep its partition's clock

_DECISION_CLASS = {
    DECISION_SHED_COLD: "cold",
    DECISION_SHED_WARM: "warm",
    DECISION_SHED_SUSPENDED: "suspended",
}

#: Pressure is quantized to this grid before any decision uses it, so the
#: last-ulp cost differences between backends cannot flip a threshold.
_PRESSURE_GRID = 4096


def _quantize_pressure(value: float) -> float:
    value = min(1.0, max(0.0, value))
    return round(value * _PRESSURE_GRID) / _PRESSURE_GRID


_M64 = (1 << 64) - 1


def _mix64(x: int) -> int:
    """splitmix64 finalizer: a strong, cheap 64-bit mixer."""
    x = (x + 0x9E3779B97F4A7C15) & _M64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    return x ^ (x >> 31)


def _time_key(t: TimePoint) -> int:
    """A stable 64-bit image of a timestamp (int or float)."""
    return int.from_bytes(struct.pack(">d", float(t)), "big")


def _unit_hash(seed: int, t_key: int, index: int) -> float:
    """Deterministic u ∈ [0, 1) for event ``index`` of the batch at ``t``."""
    h = _mix64(_mix64(seed & _M64) ^ _mix64(t_key) ^ ((index + 1) & _M64))
    return h / float(1 << 64)


def event_value_key(event: Event) -> tuple:
    """The cross-run identity of an input event.

    ``event_id`` is process-unique and therefore useless for matching
    events across two runs of the same stream; type + timestamp + sorted
    payload reprs is exactly the identity the difftest canon uses for
    derived events.
    """
    return (
        event.type_name,
        event.timestamp,
        tuple(sorted((k, repr(v)) for k, v in event.payload.items())),
    )


# ---------------------------------------------------------------------------
# configuration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SheddingConfig:
    """Everything that shapes the admission controller, in one frozen value.

    Parameters
    ----------
    latency_target:
        Modeled-backlog target in seconds.  The backlog model mirrors the
        engine's deterministic latency queue: each batch adds
        ``cost_units × seconds_per_cost_unit`` of service and one stream
        time unit drains one second.  Requires the engine's
        ``seconds_per_cost_unit`` or :attr:`cost_rate` to translate cost
        into seconds; without either, the latency term is off.
    depth_target:
        Pending-queue depth target (``EventDistributor.total_pending()``
        at admission time), for incremental sessions where the queue can
        actually accumulate.
    cost_rate:
        Sustainable cost units per stream-time unit.  ``1 / cost_rate``
        seconds of modeled service per cost unit when the engine has no
        ``seconds_per_cost_unit`` of its own.
    kp / ki / kd:
        PID gains on the normalized overshoot
        ``max((latency - target) / target, (depth - target) / target)``.
        The integral term is clamped to ``[0, 1/ki]`` (anti-windup).
    max_shed_fraction:
        Ceiling on the per-class shed probability — even at full pressure
        a trickle of sheddable events is admitted.
    seed:
        Seed of the per-event sampling hash.  Same seed + same stream =
        byte-identical decisions, on every backend.
    fixed_pressure:
        Bypass the controller with a constant pressure (tests, and
        ``0.0`` for an observe-only shedder that admits everything while
        recording the backlog trajectory).
    context_priorities:
        ``{context: priority}`` with priority in ``[0, 1]`` (default 0.5).
        Higher-priority contexts keep their warm events longer; contexts
        below :attr:`suspend_below_priority` are suspended outright at
        :attr:`suspend_pressure`.
    suspend_pressure / suspend_below_priority:
        Whole-context suspension: at pressure ≥ ``suspend_pressure``
        every context with priority < ``suspend_below_priority`` is
        shed-suspended — all its events drop (ladder rung 4), the
        generalization of the paper's plan-suspension mechanism.  The
        default threshold of 0.0 never suspends anything.
    protect_key:
        Payload attribute whose values, when bound inside a live partial
        match of an active context, protect matching events (the
        pattern-aware "hot key" idea).
    dead_letter:
        Divert shed events into the engine's dead-letter queue (reason
        ``"shed"``) when the engine has one; counters are kept either way.
    record_decisions:
        Keep the full per-batch decision log, the shed-event identity set
        and the backlog trajectory on the shedder (difftest + bench).
    """

    enabled: bool = True
    latency_target: float | None = None
    depth_target: int | None = None
    cost_rate: float | None = None
    kp: float = 0.8
    ki: float = 0.2
    kd: float = 0.0
    max_shed_fraction: float = 0.95
    seed: int = 2016
    fixed_pressure: float | None = None
    context_priorities: tuple[tuple[str, float], ...] = ()
    suspend_pressure: float = 0.95
    suspend_below_priority: float = 0.0
    protect_key: str | None = None
    dead_letter: bool = True
    record_decisions: bool = False

    def __post_init__(self):
        if isinstance(self.context_priorities, Mapping):
            object.__setattr__(
                self,
                "context_priorities",
                tuple(sorted(self.context_priorities.items())),
            )
        if not 0.0 <= self.max_shed_fraction <= 1.0:
            raise ValueError(
                f"max_shed_fraction must be in [0, 1], "
                f"got {self.max_shed_fraction}"
            )
        for name, priority in self.context_priorities:
            if not 0.0 <= priority <= 1.0:
                raise ValueError(
                    f"priority of context {name!r} must be in [0, 1], "
                    f"got {priority}"
                )
        if self.fixed_pressure is not None and not (
            0.0 <= self.fixed_pressure <= 1.0
        ):
            raise ValueError(
                f"fixed_pressure must be in [0, 1], got {self.fixed_pressure}"
            )

    def priority(self, context_name: str) -> float:
        for name, priority in self.context_priorities:
            if name == context_name:
                return priority
        return 0.5


_BOOL_FIELDS = frozenset({"enabled", "dead_letter", "record_decisions"})
_INT_FIELDS = frozenset({"depth_target", "seed"})


def _parse_kv(spec: str) -> SheddingConfig:
    kwargs: dict = {}
    valid = {f.name for f in dataclasses.fields(SheddingConfig)}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(
                f"bad {SHED_ENV_VAR} entry {part!r}: expected key=value"
            )
        key, _, raw = part.partition("=")
        key = key.strip()
        raw = raw.strip()
        if key not in valid:
            raise ValueError(
                f"unknown {SHED_ENV_VAR} field {key!r} "
                f"(have: {sorted(valid)})"
            )
        if key == "protect_key":
            kwargs[key] = raw
        elif key in _BOOL_FIELDS:
            kwargs[key] = raw.lower() in _ON_VALUES
        elif key in _INT_FIELDS:
            kwargs[key] = int(raw)
        else:
            kwargs[key] = float(raw)
    return SheddingConfig(**kwargs)


def resolve_shedding(
    spec: "SheddingConfig | str | bool | None",
) -> SheddingConfig | None:
    """Turn a shedding spec into a config, or ``None`` for "off".

    ``None`` consults :data:`SHED_ENV_VAR`; unset/empty/``off`` means
    disabled (the default is a strict no-op), ``on`` enables defaults, and
    a ``key=value,...`` string configures fields individually.
    """
    if isinstance(spec, SheddingConfig):
        return spec if spec.enabled else None
    if spec is True:
        return SheddingConfig()
    if spec is False:
        return None
    if spec is None:
        spec = os.environ.get(SHED_ENV_VAR, "")
    text = str(spec).strip()
    if text.lower() in _OFF_VALUES:
        return None
    if text.lower() in _ON_VALUES:
        return SheddingConfig()
    config = _parse_kv(text)
    return config if config.enabled else None


# ---------------------------------------------------------------------------
# controller
# ---------------------------------------------------------------------------


class OverloadController:
    """PID on the normalized overshoot of the feedback signals.

    Stream-time-driven: ``dt`` is the stream-time delta between admitted
    batches, so two runs of the same stream integrate identically no
    matter how fast the wall clock moves.
    """

    def __init__(self, config: SheddingConfig):
        self.config = config
        self.integral = 0.0
        self.last_error = 0.0
        #: anti-windup clamp: the integral alone can demand at most full
        #: pressure
        self._integral_max = (1.0 / config.ki) if config.ki > 0 else 0.0

    def reset(self) -> None:
        self.integral = 0.0
        self.last_error = 0.0

    @staticmethod
    def _overshoot(value: float, target: float) -> float:
        if target <= 0:
            return 0.0
        return max(0.0, (value - target) / target)

    def update(
        self,
        *,
        dt: float,
        latency: float | None,
        depth: int | None,
    ) -> float:
        """New pressure in ``[0, 1]`` given the current feedback signals."""
        config = self.config
        error = 0.0
        if latency is not None and config.latency_target is not None:
            error = max(error, self._overshoot(latency, config.latency_target))
        if depth is not None and config.depth_target is not None:
            error = max(
                error, self._overshoot(float(depth), float(config.depth_target))
            )
        derivative = 0.0
        if dt > 0:
            self.integral = min(
                self._integral_max, max(0.0, self.integral + error * dt)
            )
            derivative = (error - self.last_error) / dt
        self.last_error = error
        raw = (
            config.kp * error
            + config.ki * self.integral
            + config.kd * derivative
        )
        return _quantize_pressure(raw)


# ---------------------------------------------------------------------------
# the shedder
# ---------------------------------------------------------------------------


@dataclass
class _ModelInfo:
    """Static interest-set structure, derived once from the engine's model."""

    deriving_interest: frozenset[str]
    context_interest: dict[str, frozenset[str]]
    contexts_by_type: dict[str, tuple[str, ...]]
    all_interest: frozenset[str]
    initially_active: frozenset[str]
    context_names: tuple[str, ...] = ()
    #: preprocessors consume types outside every plan interest set, so
    #: their inputs cannot be classified — protect everything
    protect_all: bool = False
    context_aware: bool = True


#: Per-partition live view: (active contexts, hot awaited types, hot key
#: values).  Stored internally as sets; shipped between processes as
#: sorted tuples.
_EMPTY_VIEW = (frozenset(), frozenset(), frozenset())


class LoadShedder:
    """Deterministic admission controller for one engine.

    One instance lives on the engine (parent process); forked shard
    workers only ever call :meth:`collect_view` on their copy.  All
    per-run state is reset by :meth:`begin_run`.
    """

    def __init__(self, config: SheddingConfig):
        self.config = config
        self._model: _ModelInfo | None = None
        self._engine: "CaesarEngine | None" = None
        self._dead_letters = None
        self._controller = OverloadController(config)
        self._metrics = None
        # -- per-run state ------------------------------------------------
        self._distributor = None
        self._remote = False
        self._service_per_cost: float | None = None
        self._last_t: TimePoint | None = None
        self._backlog = 0.0
        self._view: dict = {}
        self.pressure = 0.0
        self._digest = hashlib.blake2b(digest_size=16)
        self.protected_events = 0
        self.sampled_events = 0
        self.shed_events = 0
        self.shed_ticks = 0
        self.shed_by_class: dict[str, int] = {}
        self.shed_by_context: dict[str, int] = {}
        self.suspended_contexts: set[str] = set()
        self.pressure_peak = 0.0
        self.depth_peak = 0
        self.backlog_peak = 0.0
        self.decisions: list[tuple[TimePoint, bytes]] = []
        self.shed_event_keys: set[tuple] = set()
        self.backlog_trajectory: list[tuple[TimePoint, float]] = []

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def attach(self, engine: "CaesarEngine") -> None:
        """Derive the static interest-set structure from the engine."""
        self._engine = engine
        deriving = frozenset().union(
            *(
                plan.interest_set()
                for plan in engine._deriving_templates.values()
            ),
            frozenset(),
        )
        context_interest = {
            name: plan.interest_set()
            for name, plan in engine._processing_templates.items()
        }
        contexts_by_type: dict[str, list[str]] = {}
        for name in sorted(context_interest):
            for type_name in context_interest[name]:
                contexts_by_type.setdefault(type_name, []).append(name)
        all_interest = deriving.union(*context_interest.values(), frozenset())
        self._model = _ModelInfo(
            deriving_interest=deriving,
            context_interest=context_interest,
            contexts_by_type={
                t: tuple(names) for t, names in contexts_by_type.items()
            },
            all_interest=all_interest,
            initially_active=frozenset({engine.model.default_context}),
            context_names=tuple(engine.model.context_names),
            protect_all=bool(engine.preprocessor_templates),
            context_aware=engine.context_aware,
        )

    def bind_metrics(self, registry) -> None:
        if not registry.enabled:
            return
        shed = {
            cls: registry.counter(
                "caesar_shed_events_total",
                "Events dropped by the load shedder",
                labels={"class": cls},
            )
            for cls in ("cold", "warm", "suspended")
        }
        self._metrics = {
            "shed": shed,
            "protected": registry.counter(
                "caesar_protected_events_total",
                "Events the shedder classified as protected and admitted",
            ),
            "sampled": registry.counter(
                "caesar_sampled_events_total",
                "Sheddable events admitted by the sampling hash",
            ),
            "ticks": registry.counter(
                "caesar_shed_ticks_total",
                "Events retained to keep an otherwise-empty partition "
                "transaction alive",
            ),
            "pressure": registry.gauge(
                "caesar_shed_pressure",
                "Current shed pressure (controller output, 0..1)",
            ),
            "backlog": registry.gauge(
                "caesar_shed_backlog_seconds",
                "Modeled service backlog the controller steers against",
            ),
            "registry": registry,
            "context": {},
        }

    def _context_shed_counter(self, name: str):
        counters = self._metrics["context"]
        counter = counters.get(name)
        if counter is None:
            counter = self._metrics["registry"].counter(
                "caesar_context_shed_total",
                "Events shed per (highest-priority interested) context",
                labels={"context": name},
            )
            counters[name] = counter
        return counter

    def bind_dead_letters(self, dead_letters) -> None:
        self._dead_letters = dead_letters

    def begin_run(self, *, distributor=None, remote: bool = False) -> None:
        """Reset all per-run state; called by the engine at run start."""
        engine = self._engine
        self._distributor = distributor
        self._remote = remote
        spcu = engine.seconds_per_cost_unit if engine is not None else None
        if spcu is not None:
            self._service_per_cost = spcu
        elif self.config.cost_rate:
            self._service_per_cost = 1.0 / self.config.cost_rate
        else:
            self._service_per_cost = None
        self._controller.reset()
        self._last_t = None
        self._backlog = 0.0
        self._view = {}
        self.pressure = 0.0
        self._digest = hashlib.blake2b(digest_size=16)
        self.protected_events = 0
        self.sampled_events = 0
        self.shed_events = 0
        self.shed_ticks = 0
        self.shed_by_class = {}
        self.shed_by_context = {}
        self.suspended_contexts = set()
        self.pressure_peak = 0.0
        self.depth_peak = 0
        self.backlog_peak = 0.0
        self.decisions = []
        self.shed_event_keys = set()
        self.backlog_trajectory = []

    # ------------------------------------------------------------------
    # feedback
    # ------------------------------------------------------------------

    def note_batch_cost(self, cost: float) -> None:
        """Feed one batch's cost delta into the backlog model.

        Cost is quantized before use: parallel backends associate
        per-shard cost sums differently, so raw deltas can differ in the
        last float ulp across backends (see
        :class:`~repro.observability.EngineInstruments`).
        """
        if self._service_per_cost is None:
            return
        self._backlog += round(cost, 6) * self._service_per_cost
        if self._backlog > self.backlog_peak:
            self.backlog_peak = self._backlog
        if self.config.record_decisions and self._last_t is not None:
            self.backlog_trajectory.append((self._last_t, self._backlog))

    def absorb_remote_feedback(self, feedback) -> None:
        """Merge per-partition view triples piggybacked on an exec reply."""
        if not feedback:
            return
        for key, (active, hot_types, hot_keys) in feedback.items():
            self._view[key] = (
                frozenset(active),
                frozenset(hot_types),
                frozenset(hot_keys),
            )

    def collect_view(self, partitions: dict) -> dict:
        """The picklable per-partition feedback triple (worker + serial side).

        For every partition: its active contexts, the event types awaited
        by live partial matches of active contexts' processing plans, and
        (with ``protect_key``) the key values bound inside those partials.
        Sorted tuples so the wire form is canonical.
        """
        protect_key = self.config.protect_key
        view = {}
        for key, runtime in partitions.items():
            active = tuple(sorted(runtime.store.active_contexts()))
            hot_types: set[str] = set()
            hot_keys: set = set()
            for context_name in active:
                plan = runtime.processing_router.plan_for(context_name)
                if plan is None:
                    continue
                for query_plan in plan.plans:
                    for operator in query_plan.pattern_operators:
                        for type_name, bucket in (
                            operator._partials_by_next.items()
                        ):
                            if not bucket:
                                continue
                            hot_types.add(type_name)
                            if protect_key is None:
                                continue
                            for partial in bucket:
                                for bound in partial.binding.values():
                                    value = bound.get(protect_key)
                                    if value is not None:
                                        hot_keys.add(value)
            view[key] = (
                active,
                tuple(sorted(hot_types)),
                tuple(sorted(hot_keys, key=repr)),
            )
        return view

    def _refresh_local_view(self) -> None:
        engine = self._engine
        if engine is None:
            return
        self._view = {
            key: (frozenset(a), frozenset(ht), frozenset(hk))
            for key, (a, ht, hk) in self.collect_view(
                engine._partitions
            ).items()
        }

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------

    def admit(self, events: list[Event], t: TimePoint) -> list[Event]:
        """Classify a batch and return the admitted events (in order)."""
        model = self._model
        config = self.config
        # -- controller step (stream-time driven) -------------------------
        dt = 0.0
        if self._last_t is not None and t > self._last_t:
            dt = float(t) - float(self._last_t)
            if self._service_per_cost is not None:
                self._backlog = max(0.0, self._backlog - dt)
        self._last_t = t
        depth = (
            self._distributor.total_pending()
            if self._distributor is not None
            else 0
        )
        if depth > self.depth_peak:
            self.depth_peak = depth
        if config.fixed_pressure is not None:
            pressure = _quantize_pressure(config.fixed_pressure)
        else:
            latency = (
                self._backlog if self._service_per_cost is not None else None
            )
            pressure = self._controller.update(
                dt=dt, latency=latency, depth=depth
            )
        self.pressure = pressure
        if pressure > self.pressure_peak:
            self.pressure_peak = pressure
        if self._metrics is not None:
            self._metrics["pressure"].set(pressure)
            self._metrics["backlog"].set(self._backlog)
        if not events:
            return events
        if not self._remote:
            self._refresh_local_view()

        # -- per-batch derived quantities ---------------------------------
        engine = self._engine
        partition_by = engine.partition_by if engine is not None else None
        t_key = _time_key(t)
        seed = config.seed
        max_shed = config.max_shed_fraction
        cold_fraction = min(2.0 * pressure, max_shed)
        warm_band = min(1.0, max(0.0, 2.0 * pressure - 1.0))
        suspend_now = (
            pressure >= config.suspend_pressure
            and config.suspend_below_priority > 0.0
        )
        suspended: frozenset[str] = frozenset()
        if suspend_now:
            suspended = frozenset(
                name
                for name in model.context_names
                if config.priority(name) < config.suspend_below_priority
            )
            self.suspended_contexts.update(suspended)
        # Same-timestamp activation race: deriving events in this batch may
        # initiate/terminate contexts *at t*, before processing consumes the
        # batch.  When any deriving-interest type is present, treat every
        # context as active for classification — always safe (more events
        # protected), and identical on every backend.
        batch_types = {event.type_name for event in events}
        race_all_active = not batch_types.isdisjoint(model.deriving_interest)

        codes = bytearray(len(events))
        partition_keys: list = [None] * len(events)
        admitted_any: dict = {}
        view = self._view
        for index, event in enumerate(events):
            type_name = event.type_name
            pk = partition_by(event) if partition_by is not None else None
            partition_keys[index] = pk
            code = DECISION_PROTECTED
            if model.protect_all or type_name in model.deriving_interest:
                pass  # protected
            elif not model.context_aware:
                # context-independent mode: every plan sees every batch, so
                # the only safely sheddable events are the no-interest ones
                if type_name in model.all_interest:
                    pass
                else:
                    u = _unit_hash(seed, t_key, index)
                    code = (
                        DECISION_SHED_COLD
                        if u < cold_fraction
                        else DECISION_SAMPLED
                    )
            else:
                interested = model.contexts_by_type.get(type_name)
                if not interested:
                    u = _unit_hash(seed, t_key, index)
                    code = (
                        DECISION_SHED_COLD
                        if u < cold_fraction
                        else DECISION_SAMPLED
                    )
                else:
                    active, hot_types, hot_keys = view.get(pk, _EMPTY_VIEW)
                    if race_all_active:
                        active = None  # all contexts count as active
                    elif pk not in view:
                        active = model.initially_active
                    if type_name in hot_types or (
                        config.protect_key is not None
                        and event.get(config.protect_key) in hot_keys
                    ):
                        pass  # hot partial match — protected
                    else:
                        active_interested = (
                            list(interested)
                            if active is None
                            else [c for c in interested if c in active]
                        )
                        live = [
                            c
                            for c in active_interested
                            if c not in suspended
                        ]
                        if live:
                            pass  # an active, unsuspended context wants it
                        elif active_interested:
                            code = DECISION_SHED_SUSPENDED
                        else:
                            priority = max(
                                config.priority(c) for c in interested
                            )
                            warm_fraction = min(
                                max_shed,
                                max(0.0, warm_band * (1.5 - priority)),
                            )
                            u = _unit_hash(seed, t_key, index)
                            code = (
                                DECISION_SHED_WARM
                                if u < warm_fraction
                                else DECISION_SAMPLED
                            )
            codes[index] = code
            if code in (DECISION_PROTECTED, DECISION_SAMPLED):
                admitted_any[pk] = True
            elif pk not in admitted_any:
                admitted_any.setdefault(pk, False)

        # -- retained ticks: never let a partition's clock stall ----------
        # If every event of a (partition, t) would shed, the partition's
        # stream transaction would not form, advance_time would not fire
        # and trailing-negation/GC behaviour would diverge from the
        # unshedded run.  Retain the last such event per partition.
        need_tick = {
            pk for pk, admitted in admitted_any.items() if not admitted
        }
        if need_tick:
            for index in range(len(events) - 1, -1, -1):
                pk = partition_keys[index]
                if pk in need_tick:
                    codes[index] = DECISION_TICK
                    need_tick.discard(pk)
                    if not need_tick:
                        break

        # -- accounting + the admitted batch ------------------------------
        self._digest.update(struct.pack(">d", float(t)))
        self._digest.update(bytes(codes))
        if config.record_decisions:
            self.decisions.append((t, bytes(codes)))
        admitted: list[Event] = []
        metrics = self._metrics
        dead_letters = (
            self._dead_letters if config.dead_letter else None
        )
        for index, event in enumerate(events):
            code = codes[index]
            if code == DECISION_PROTECTED:
                self.protected_events += 1
                admitted.append(event)
            elif code == DECISION_SAMPLED:
                self.sampled_events += 1
                admitted.append(event)
            elif code == DECISION_TICK:
                self.shed_ticks += 1
                admitted.append(event)
            else:
                cls = _DECISION_CLASS[code]
                self.shed_events += 1
                self.shed_by_class[cls] = self.shed_by_class.get(cls, 0) + 1
                context = self._attribution(event.type_name)
                self.shed_by_context[context] = (
                    self.shed_by_context.get(context, 0) + 1
                )
                if config.record_decisions:
                    self.shed_event_keys.add(event_value_key(event))
                if metrics is not None:
                    metrics["shed"][cls].inc()
                    self._context_shed_counter(context).inc()
                if dead_letters is not None:
                    dead_letters.put(
                        event,
                        reason="shed",
                        error=f"shed ({cls}) at pressure {self.pressure:g}",
                        timestamp=t,
                    )
        if metrics is not None:
            protected = sum(1 for c in codes if c == DECISION_PROTECTED)
            sampled = sum(1 for c in codes if c == DECISION_SAMPLED)
            ticks = sum(1 for c in codes if c == DECISION_TICK)
            if protected:
                metrics["protected"].inc(protected)
            if sampled:
                metrics["sampled"].inc(sampled)
            if ticks:
                metrics["ticks"].inc(ticks)
        return admitted

    def _attribution(self, type_name: str) -> str:
        """The context a shed event is charged to (highest priority wins)."""
        interested = self._model.contexts_by_type.get(type_name)
        if not interested:
            return "(none)"
        return max(interested, key=lambda c: (self.config.priority(c), c))

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    @property
    def decision_digest(self) -> str:
        """Hex digest over every ``(t, decision bytes)`` admitted so far."""
        return self._digest.hexdigest()

    def populate_report(self, report: "EngineReport") -> None:
        report.shed_events = self.shed_events
        report.protected_events = self.protected_events
        report.sampled_events = self.sampled_events
        report.shed_ticks = self.shed_ticks
        report.shed_by_class = dict(sorted(self.shed_by_class.items()))
        report.shed_by_context = dict(sorted(self.shed_by_context.items()))
        report.shed_decision_digest = self.decision_digest
        report.shed_pressure_peak = self.pressure_peak
        report.shed_depth_peak = self.depth_peak
        report.shed_backlog_peak_seconds = round(self.backlog_peak, 6)
        report.suspended_contexts = tuple(sorted(self.suspended_contexts))
