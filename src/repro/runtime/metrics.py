"""Latency, throughput and win-ratio metrics (Section 7.1, "Metrics").

The paper's *maximal latency* is the longest interval from an event's
arrival to the derivation of the complex event based on it, measured on a
machine whose processing speed sets the scale.  We reproduce the metric with
a deterministic single-server queueing model: events arrive at their
application timestamps, each batch takes a *service time* (either measured
wall-clock time or cost units × a configurable seconds-per-cost-unit), and
latency is completion time minus arrival time.  When the engine cannot keep
up with the arrival rate the queue grows and the maximal latency climbs —
exactly the behaviour the Linear Road 5-second constraint probes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.events.timebase import TimePoint


class LatencyTracker:
    """Single-server FIFO queue latency model.

    ``record(arrival, service)`` returns the latency of the batch:
    the server starts the batch at ``max(arrival, previous finish)`` and
    finishes after ``service`` seconds.
    """

    def __init__(self) -> None:
        self._previous_finish = 0.0
        self.max_latency = 0.0
        self._sum = 0.0
        self._count = 0
        self.total_service = 0.0

    def record(self, arrival: float, service: float) -> float:
        if service < 0:
            raise ValueError(f"service time must be non-negative, got {service}")
        start = max(arrival, self._previous_finish)
        finish = start + service
        self._previous_finish = finish
        latency = finish - arrival
        self.max_latency = max(self.max_latency, latency)
        self._sum += latency
        self._count += 1
        self.total_service += service
        return latency

    @property
    def mean_latency(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def batches(self) -> int:
        return self._count

    def reset(self) -> None:
        self._previous_finish = 0.0
        self.max_latency = 0.0
        self._sum = 0.0
        self._count = 0
        self.total_service = 0.0


def win_ratio(baseline_latency: float, caesar_latency: float) -> float:
    """Win ratio of context-aware over context-independent analytics:
    baseline maximal latency divided by CAESAR maximal latency
    (Section 7.1).  Degenerate zero latencies yield a ratio of 1."""
    if caesar_latency <= 0:
        return 1.0 if baseline_latency <= 0 else float("inf")
    return baseline_latency / caesar_latency


@dataclass
class ThroughputSample:
    """Events processed and the wall/modelled seconds they took."""

    events: int
    seconds: float

    @property
    def events_per_second(self) -> float:
        return self.events / self.seconds if self.seconds > 0 else float("inf")


@dataclass
class SegmentStats:
    """Per-partition event accounting (used for Figure 10 style reports)."""

    key: object
    events_in: int = 0
    outputs_by_type: dict[str, int] = field(default_factory=dict)

    def record_output(self, type_name: str, count: int = 1) -> None:
        self.outputs_by_type[type_name] = (
            self.outputs_by_type.get(type_name, 0) + count
        )
