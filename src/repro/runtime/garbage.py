"""Garbage collector (Section 6.1, storage layer).

"The garbage collector ensures that only the values which are relevant to
the current contexts are kept."  Concretely it expires pattern partial
matches and negation histories older than the retention horizon, across all
plans, every ``interval`` time units.
"""

from __future__ import annotations

from typing import Iterable

from repro.algebra.plan import CombinedQueryPlan
from repro.events.timebase import TimePoint
from repro.observability.registry import NULL_INSTRUMENT


class GarbageCollector:
    """Periodic state expiry over a set of combined plans.

    The optional counter handles are incremented *live* at collection time
    — inside whichever worker owns the partition — and fan in through the
    metrics registry's worker delta, never through run totals, so the
    reclamation counters are counted exactly once per run.
    """

    def __init__(
        self,
        plans: Iterable[CombinedQueryPlan],
        *,
        retention: TimePoint = 300,
        interval: TimePoint = 60,
        reclaimed_counter=NULL_INSTRUMENT,
        runs_counter=NULL_INSTRUMENT,
    ):
        if interval <= 0:
            raise ValueError(f"gc interval must be positive, got {interval}")
        self._plans = list(plans)
        self.retention = retention
        self.interval = interval
        self._reclaimed_counter = reclaimed_counter
        self._runs_counter = runs_counter
        #: stream time of the last collection; ``None`` until the first
        #: :meth:`maybe_collect` observation arms the interval clock
        self._last_run: TimePoint | None = None
        self.collected = 0
        self.runs = 0

    def set_plans(self, plans: Iterable[CombinedQueryPlan]) -> None:
        """Swap the plan set being collected (online query deployment).

        The interval clock and counters carry over — only *what* is swept
        changes, not *when*.
        """
        self._plans = list(plans)

    def maybe_collect(self, now: TimePoint) -> int:
        """Run a collection if ``interval`` has elapsed; returns items freed.

        The first observation only *arms* the clock: a stream that starts at
        a large timestamp (e.g. a replayed suffix) must not trigger an
        immediate collection just because ``now`` is far from zero.
        """
        if self._last_run is None:
            self._last_run = now
            return 0
        if now - self._last_run < self.interval:
            return 0
        return self.collect(now)

    def collect(self, now: TimePoint) -> int:
        """Expire all state older than ``now - retention``."""
        horizon = now - self.retention
        freed = 0
        for combined in self._plans:
            for plan in combined.plans:
                for operator in plan.operators:
                    freed += operator.expire_state_before(horizon)
        self._last_run = now
        self.collected += freed
        self.runs += 1
        self._reclaimed_counter.inc(freed)
        self._runs_counter.inc()
        return freed
