"""Context-aware stream router (Section 6.2).

Based on the context window vector, the router knows which query workloads
are currently active and directs each stream batch only to the combined
plans of active contexts.  Plans of inactive contexts receive *no input* —
they are suspended rather than busy-waiting.  Routing is lightweight: one
bit-vector scan per batch, and it operates on batches (multiple events),
not single events.

On top of context suspension the router applies a second, orthogonal
suppression axis: **interest-set routing**.  Each combined plan exposes the
set of event types its leaf pattern operators can consume
(:meth:`~repro.algebra.plan.CombinedQueryPlan.interest_set`); the router
scans the batch's type set once and skips active plans whose interest set
does not intersect it.  Such a batch cannot change the plan's state or
output, so skipping preserves semantics while avoiding the per-plan
dispatch work.  The context-independent baseline (``context_aware=False``)
performs neither suppression: every plan receives every batch and is
charged for it, as a state-of-the-art context-independent engine would be.
"""

from __future__ import annotations

import time as _time
from typing import TYPE_CHECKING, Iterable

from repro.algebra.operators import ExecutionContext
from repro.algebra.plan import CombinedQueryPlan
from repro.core.windows import ContextWindowStore
from repro.events.event import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observability import Observability


class ContextAwareStreamRouter:
    """Routes stream batches to the plans of currently active contexts.

    With a *detailed* :class:`~repro.observability.Observability` facade the
    router also attributes wall time to each plan evaluation
    (``caesar_plan_seconds{phase,context}``) and, in tracing mode, emits one
    span per dispatch — the per-operator telemetry that cost-based sharing
    decisions feed on.  Both are resolved to preregistered handles at
    construction; the default metrics level leaves the dispatch loop
    untouched.
    """

    def __init__(
        self,
        plans_by_context: dict[str, CombinedQueryPlan],
        *,
        context_aware: bool = True,
        observability: "Observability | None" = None,
        phase: str = "",
    ):
        self._plans_by_context = dict(plans_by_context)
        self.context_aware = context_aware
        self.phase = phase
        self._observability = observability
        self._tracing = observability is not None and observability.tracing
        self._plan_timers = None
        if observability is not None and observability.detailed:
            self._plan_timers = {
                name: observability.registry.histogram(
                    "caesar_plan_seconds",
                    "Wall time per combined-plan evaluation",
                    labels={"phase": phase, "context": name},
                )
                for name in self._plans_by_context
            }
        self.batches_routed = 0
        self.batches_suppressed = 0
        #: batches skipped because the plan's interest set was disjoint from
        #: the batch's event types (context-aware mode only)
        self.batches_uninterested = 0
        #: cumulative cost units spent by plans this router executed
        self.cost_units = 0.0
        #: the same, broken down per context
        self.cost_by_context: dict[str, float] = {
            name: 0.0 for name in self._plans_by_context
        }

    @property
    def contexts(self) -> tuple[str, ...]:
        return tuple(self._plans_by_context)

    def plan_for(self, context_name: str) -> CombinedQueryPlan | None:
        return self._plans_by_context.get(context_name)

    def all_plans(self) -> list[CombinedQueryPlan]:
        return list(self._plans_by_context.values())

    def replace_plan(self, context_name: str, plan: CombinedQueryPlan) -> None:
        """Install or swap the plan of one context (online deployment).

        Accumulated routing counters and per-context cost are preserved —
        routing cost is charged by delta per batch, so swapping a plan
        mid-run loses nothing.  New contexts get a zeroed cost slot and,
        in detailed mode, their own plan timer; the interest set is read
        live from the plan at every batch, so interest routing picks up
        the new plan immediately.
        """
        self._plans_by_context[context_name] = plan
        self.cost_by_context.setdefault(context_name, 0.0)
        if (
            self._plan_timers is not None
            and context_name not in self._plan_timers
        ):
            self._plan_timers[context_name] = (
                self._observability.registry.histogram(
                    "caesar_plan_seconds",
                    "Wall time per combined-plan evaluation",
                    labels={"phase": self.phase, "context": context_name},
                )
            )

    def remove_plan(self, context_name: str) -> None:
        """Drop a context's plan (query retirement emptied its workload).

        The cost slot survives — cost already spent is history, not state.
        """
        self._plans_by_context.pop(context_name, None)

    def wrap_plans(self, wrap) -> None:
        """Replace every plan with ``wrap(context_name, plan)``.

        The supervision seam: a wrapper must preserve the plan interface
        (``execute``/``advance_time``/``total_cost_units``/``interest_set``
        plus the state-management methods) — e.g. a fault-isolation guard
        that delegates to the original plan.
        """
        for name in self._plans_by_context:
            self._plans_by_context[name] = wrap(name, self._plans_by_context[name])

    def route(
        self,
        events: list[Event],
        store: ContextWindowStore,
        ctx: ExecutionContext,
    ) -> list[Event]:
        """Dispatch one batch; returns all derived output events.

        In context-aware mode only the plans of active contexts run, and
        among those only the plans whose interest set intersects the batch's
        event types; in the context-independent mode (the baseline) every
        plan receives every batch and relies on its embedded ``CW`` operator
        for semantics.
        """
        outputs: list[Event] = []
        context_aware = self.context_aware
        plan_timers = self._plan_timers
        # One pass over the batch buckets it by type; each plan then gets a
        # set-intersection test instead of a per-event scan.  Columnar
        # batches carry this set precomputed (``ColumnarEvents.type_names``).
        if context_aware:
            batch_types = getattr(events, "type_names", None)
            if batch_types is None:
                batch_types = frozenset(e.type_name for e in events)
        else:
            batch_types = None
        for context_name, plan in self._plans_by_context.items():
            if context_aware and not store.is_active(context_name):
                self.batches_suppressed += 1
                continue
            if context_aware and batch_types.isdisjoint(plan.interest_set()):
                self.batches_uninterested += 1
                continue
            self.batches_routed += 1
            before = plan.total_cost_units()
            if plan_timers is None:
                outputs.extend(plan.execute(events, ctx))
            else:
                outputs.extend(
                    self._timed_execute(context_name, plan, events, ctx)
                )
            delta = plan.total_cost_units() - before
            self.cost_units += delta
            self.cost_by_context[context_name] += delta
        return outputs

    def _timed_execute(
        self,
        context_name: str,
        plan: CombinedQueryPlan,
        events: list[Event],
        ctx: ExecutionContext,
    ) -> list[Event]:
        """Detailed-mode dispatch: per-plan wall time, optionally a span."""
        if self._tracing:
            with self._observability.recorder.span(
                "plan",
                "plan",
                phase=self.phase,
                context=context_name,
                t=ctx.now,
            ):
                started = _time.perf_counter()
                derived = plan.execute(events, ctx)
        else:
            started = _time.perf_counter()
            derived = plan.execute(events, ctx)
        self._plan_timers[context_name].observe(
            _time.perf_counter() - started
        )
        return derived

    def advance_time(
        self, now, store: ContextWindowStore, ctx: ExecutionContext
    ) -> list[Event]:
        """Propagate a time tick to active plans (trailing negations)."""
        outputs: list[Event] = []
        for context_name, plan in self._plans_by_context.items():
            if self.context_aware and not store.is_active(context_name):
                continue
            before = plan.total_cost_units()
            outputs.extend(plan.advance_time(now, ctx))
            delta = plan.total_cost_units() - before
            self.cost_units += delta
            self.cost_by_context[context_name] += delta
        return outputs
