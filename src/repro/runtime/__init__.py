"""CAESAR execution infrastructure (Section 6).

The core pieces: the context-aware stream router, the time-driven
transaction scheduler, the event distributor with its per-partition queues,
the context history store, the garbage collector — and the two engines that
tie them together: :class:`~repro.runtime.engine.CaesarEngine` (context-
aware) and :class:`~repro.runtime.baseline.ContextIndependentEngine` (the
state-of-the-art comparator).

Extensions: :class:`~repro.runtime.session.EngineSession` (incremental
feeding), :class:`~repro.runtime.service.EngineService` (long-lived
streaming service: bounded ingestion queue with backpressure, live
emission, online query/context deployment — ``repro serve``),
:class:`~repro.runtime.reorder.ReorderBuffer` (bounded
out-of-order handling), :mod:`~repro.runtime.reporting` (JSON export,
ASCII context timelines) — and the supervision layer:
:class:`~repro.runtime.supervisor.SupervisedEngine` (per-plan fault
isolation behind circuit breakers),
:class:`~repro.runtime.deadletter.DeadLetterQueue` (bounded capture of
schema-violating / late / quarantined events) and
:class:`~repro.runtime.recovery.RecoveryManager` (checkpoint autosave +
crash recovery by suffix replay).
"""

from repro.runtime.engine import CaesarEngine, EngineReport, ScheduledWorkloadEngine
from repro.runtime.backend import (
    BACKENDS,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    resolve_backend,
)
from repro.runtime.baseline import ContextIndependentEngine
from repro.runtime.metrics import LatencyTracker, win_ratio
from repro.runtime.router import ContextAwareStreamRouter
from repro.runtime.scheduler import TimeDrivenScheduler
from repro.runtime.queues import EventDistributor
from repro.runtime.history import ContextHistory
from repro.runtime.garbage import GarbageCollector
from repro.runtime.reorder import ReorderBuffer
from repro.runtime.session import EngineSession
from repro.runtime.service import EngineService
from repro.runtime.checkpoint import capture_checkpoint, restore_checkpoint
from repro.runtime.deadletter import (
    DeadLetterEntry,
    DeadLetterQueue,
    REASON_LATE,
    REASON_PLAN_FAULT,
    REASON_QUARANTINED,
    REASON_SCHEMA,
    REASON_SHED,
)
from repro.runtime.shedding import (
    LoadShedder,
    OverloadController,
    SheddingConfig,
    resolve_shedding,
)
from repro.runtime.recovery import RecoveryManager
from repro.runtime.supervisor import (
    BreakerState,
    CircuitBreaker,
    SupervisedEngine,
)
from repro.runtime.reporting import (
    REPORT_SCHEMA_VERSION,
    outputs_to_rows,
    render_timeline,
    report_to_dict,
)

__all__ = [
    "BACKENDS",
    "BreakerState",
    "CaesarEngine",
    "CircuitBreaker",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "ContextAwareStreamRouter",
    "ContextHistory",
    "ContextIndependentEngine",
    "DeadLetterEntry",
    "DeadLetterQueue",
    "EngineReport",
    "EngineService",
    "EngineSession",
    "EventDistributor",
    "GarbageCollector",
    "LatencyTracker",
    "LoadShedder",
    "OverloadController",
    "REASON_LATE",
    "REASON_PLAN_FAULT",
    "REASON_QUARANTINED",
    "REASON_SCHEMA",
    "REASON_SHED",
    "REPORT_SCHEMA_VERSION",
    "RecoveryManager",
    "ReorderBuffer",
    "ScheduledWorkloadEngine",
    "SheddingConfig",
    "SupervisedEngine",
    "TimeDrivenScheduler",
    "capture_checkpoint",
    "outputs_to_rows",
    "render_timeline",
    "report_to_dict",
    "resolve_backend",
    "resolve_shedding",
    "restore_checkpoint",
    "win_ratio",
]
