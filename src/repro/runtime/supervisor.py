"""Supervised execution: per-plan fault isolation behind circuit breakers.

The paper's runtime assumes a cooperative world — well-formed events and
operators that never fail.  :class:`SupervisedEngine` drops that assumption:
it is a :class:`~repro.runtime.engine.CaesarEngine` whose combined plans are
individually *supervised*.  An exception raised by one plan no longer aborts
the run; instead the supervisor

1. catches the exception, dead-letters the triggering events
   (:data:`~repro.runtime.deadletter.REASON_PLAN_FAULT`) and records the
   failure against the plan's :class:`CircuitBreaker`;
2. after ``failure_threshold`` consecutive failures *opens* the breaker —
   the plan is **quarantined**: it receives no events, and every event it
   would have consumed is dead-lettered
   (:data:`~repro.runtime.deadletter.REASON_QUARANTINED`);
3. once ``cooldown`` stream-time units pass, the breaker goes *half-open*
   and the next batch is a probe: success closes the breaker (the plan
   rejoins the workload), another failure reopens it.

Quarantine granularity is one combined plan per ``(partition, phase,
context)`` — exactly the unit the router dispatches to — so the remaining
workload keeps flowing with unchanged semantics.

On top of plan supervision the engine validates every input event against
its declared schema (schema violations are dead-lettered, not fatal) and,
when given a :class:`~repro.runtime.recovery.RecoveryManager`, autosaves
checkpoints at stream-time boundaries for crash recovery.

Errors deriving from :class:`~repro.errors.FatalEngineError` always escape
supervision: they model process crashes and abort the run so the recovery
path (restore + replay) can take over.

All supervision activity flows into the
:class:`~repro.runtime.engine.EngineReport` counters (``plan_failures``,
``plans_quarantined``, ``breaker_transitions``, ``dead_lettered``,
``checkpoints_taken``, ``recovery_replays``) and from there into
:func:`~repro.runtime.reporting.report_to_dict`.
"""

from __future__ import annotations

import enum
import threading

from repro.core.model import CaesarModel
from repro.errors import FatalEngineError, SchemaError
from repro.events.event import Event
from repro.events.timebase import TimePoint
from repro.runtime.deadletter import (
    DeadLetterQueue,
    REASON_PLAN_FAULT,
    REASON_QUARANTINED,
    REASON_SCHEMA,
)
from repro.runtime.engine import CaesarEngine, EngineReport, _PartitionRuntime


class BreakerState(enum.Enum):
    """The classic circuit-breaker state machine."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Failure accounting for one supervised plan.

    ``CLOSED`` → (``failure_threshold`` consecutive failures) → ``OPEN`` →
    (``cooldown`` stream-time units) → ``HALF_OPEN`` → one probe →
    ``CLOSED`` on success / ``OPEN`` on failure.  Time is *stream* time:
    a quarantined plan's cooldown advances with the data, so replays are
    deterministic regardless of wall-clock speed.
    """

    def __init__(self, *, failure_threshold: int = 3, cooldown: TimePoint = 60):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown < 0:
            raise ValueError(f"cooldown must be non-negative, got {cooldown}")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.failures = 0
        self.opened_at: TimePoint | None = None
        self.ever_opened = False
        #: ``(stream_time, from_state, to_state)`` in order of occurrence
        self.transitions: list[tuple[TimePoint, BreakerState, BreakerState]] = []

    def _transition(self, to: BreakerState, now: TimePoint) -> None:
        self.transitions.append((now, self.state, to))
        self.state = to
        if to is BreakerState.OPEN:
            self.ever_opened = True
            # ``now`` can regress: a half-open probe may fail at a stream
            # time *before* the original open (out-of-order advance_time
            # under replay/reorder).  The cooldown deadline must never move
            # backward, or a regressed reopen would expire immediately and
            # the breaker would flap open/half-open on every batch.
            if self.opened_at is None or now > self.opened_at:
                self.opened_at = now

    def allow(self, now: TimePoint) -> bool:
        """May the plan run at stream time ``now``?

        In the open state this is where the cooldown expiry is observed:
        the breaker flips to half-open and admits one probe batch.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if self.opened_at is not None and now >= self.opened_at + self.cooldown:
                self._transition(BreakerState.HALF_OPEN, now)
                return True
            return False
        return True  # HALF_OPEN: the probe is in flight

    def record_success(self, now: TimePoint) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._transition(BreakerState.CLOSED, now)
        self.consecutive_failures = 0

    def record_failure(self, now: TimePoint) -> None:
        self.failures += 1
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            self._transition(BreakerState.OPEN, now)
        elif (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self._transition(BreakerState.OPEN, now)


class _GuardedPlan:
    """Wraps one combined plan with fault isolation and quarantine.

    Implements the plan interface the router and the engine exercise:
    ``execute`` and ``advance_time`` consult the breaker and trap
    exceptions; everything else (``interest_set``, ``total_cost_units``,
    ``snapshot_state``, ``restore_state``, ``reset_state``...) delegates to
    the wrapped plan, so context history, garbage collection and
    checkpointing are oblivious to the guard.
    """

    def __init__(self, plan, supervisor: "SupervisedEngine", key, breaker):
        self._plan = plan
        self._supervisor = supervisor
        self._key = key
        self._breaker = breaker

    def __getattr__(self, name):
        return getattr(self._plan, name)

    def execute(self, events: list[Event], ctx) -> list[Event]:
        if not self._breaker.allow(ctx.now):
            self._supervisor._dead_letter_for_plan(
                events, self._plan, REASON_QUARANTINED, ctx.now,
                error=f"plan {self._key} quarantined (breaker open)",
            )
            return []
        try:
            outputs = self._plan.execute(events, ctx)
        except FatalEngineError:
            raise
        except Exception as exc:
            self._supervisor._on_plan_failure(
                self._key, self._breaker, exc, events, ctx.now
            )
            return []
        self._breaker.record_success(ctx.now)
        return outputs

    def advance_time(self, now: TimePoint, ctx) -> list[Event]:
        if not self._breaker.allow(now):
            return []
        try:
            outputs = self._plan.advance_time(now, ctx)
        except FatalEngineError:
            raise
        except Exception as exc:
            self._supervisor._on_plan_failure(
                self._key, self._breaker, exc, [], now
            )
            return []
        self._breaker.record_success(now)
        return outputs

    def __repr__(self) -> str:
        return f"<GuardedPlan {self._key} {self._breaker.state.value}: {self._plan!r}>"


#: Identifies one supervised plan: ``(partition_key, phase, context_name)``
#: with phase ``"deriving"`` or ``"processing"``.
PlanKey = tuple


class SupervisedEngine(CaesarEngine):
    """A :class:`CaesarEngine` wrapped in a supervision layer.

    Parameters (beyond the base engine's)
    -------------------------------------
    failure_threshold:
        Consecutive plan failures before its circuit breaker opens.
    cooldown:
        Stream-time units a breaker stays open before admitting a
        half-open probe.
    dead_letters:
        The :class:`~repro.runtime.deadletter.DeadLetterQueue` to divert
        events into (a fresh bounded queue by default).
    recovery:
        Optional :class:`~repro.runtime.recovery.RecoveryManager`; when
        given, checkpoints are autosaved every ``recovery.interval``
        stream-time units at batch boundaries.
    validate_schemas:
        Validate every input event against its declared schema and
        dead-letter violators instead of processing them (on by default —
        the point of supervised execution).
    """

    def __init__(
        self,
        model: CaesarModel,
        *,
        failure_threshold: int = 3,
        cooldown: TimePoint = 60,
        dead_letters: DeadLetterQueue | None = None,
        recovery=None,
        validate_schemas: bool = True,
        **engine_kwargs,
    ):
        super().__init__(model, **engine_kwargs)
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.dead_letters = (
            dead_letters if dead_letters is not None else DeadLetterQueue()
        )
        self.recovery = recovery
        self.validate_schemas = validate_schemas
        self._breakers: dict[PlanKey, CircuitBreaker] = {}
        self.plan_failures = 0
        #: guards ``plan_failures``: thread-backend shard workers report
        #: failures concurrently (the DLQ carries its own lock)
        self._failure_lock = threading.Lock()
        registry = self.observability.registry
        if registry.enabled:
            self.dead_letters.bind_metrics(registry)
        if self.shedder is not None and self.shedder.config.dead_letter:
            self.shedder.bind_dead_letters(self.dead_letters)
        self._failure_counter = registry.counter(
            "caesar_plan_failures_total",
            "Plan exceptions caught and isolated by the supervisor",
        )
        self._quarantined_gauge = registry.gauge(
            "caesar_plans_quarantined",
            "Distinct plans whose circuit breaker ever opened",
        )
        self._checkpoints_gauge = registry.gauge(
            "caesar_checkpoints_taken",
            "Checkpoints autosaved by the recovery manager",
        )
        self._replays_gauge = registry.gauge(
            "caesar_recovery_replays",
            "Checkpoint restores followed by a stream-suffix replay",
        )
        #: supervision state absorbed from forked shard workers at end of
        #: run (process backend) — merged into the report alongside the
        #: parent's own breakers
        self._absorbed_quarantined: set[PlanKey] = set()
        self._absorbed_transitions: dict[str, int] = {}
        self._capture_dead_letter_baseline()

    def _capture_dead_letter_baseline(self) -> None:
        """Reports count dead-letter activity relative to this snapshot.

        The queue may be shared across engines (or survive a
        :meth:`reset_run_state`), so the report counts only what *this*
        engine diverted since construction/reset — which also keeps
        back-to-back runs of the same stream byte-identical.
        """
        self._dlq_counts_baseline = dict(self.dead_letters.counts_by_reason)
        self._dlq_dropped_baseline = self.dead_letters.dropped
        self._dlq_dropped_by_reason_baseline = dict(
            self.dead_letters.dropped_by_reason
        )

    # ------------------------------------------------------------------
    # plan guarding
    # ------------------------------------------------------------------

    def breaker_for(self, key: PlanKey) -> CircuitBreaker | None:
        """The breaker of plan ``(partition, phase, context)``, if created."""
        return self._breakers.get(key)

    def quarantined_plans(self) -> tuple[PlanKey, ...]:
        """Keys of every plan whose breaker ever opened."""
        local = tuple(
            key for key, breaker in self._breakers.items() if breaker.ever_opened
        )
        absorbed = tuple(
            key for key in self._absorbed_quarantined if key not in local
        )
        return local + absorbed

    def reset_run_state(self) -> None:
        """Reset supervision alongside the partition runtimes.

        Breakers belong to per-partition plan instances, so they die with
        them; failure counters and the dead-letter baseline restart so the
        next run's report reflects only that run.
        """
        super().reset_run_state()
        self._breakers = {}
        self.plan_failures = 0
        self._absorbed_quarantined = set()
        self._absorbed_transitions = {}
        self._capture_dead_letter_baseline()

    def _worker_pool_reusable(self) -> bool:
        """Reuse the worker pool only while the dead-letter queue is empty.

        Retained DLQ entries are part of the engine state a fresh fork
        would carry into the workers; a reused worker instead holds its
        own entries from the previous run, so eviction behaviour could
        diverge.  Respawning whenever entries are retained keeps the
        persistent pool observationally identical to fork-per-run.
        """
        return super()._worker_pool_reusable() and self.dead_letters.total == 0

    def _partition(self, key: object) -> _PartitionRuntime:
        created = key not in self._partitions
        runtime = super()._partition(key)
        if created:
            for phase, router in (
                ("deriving", runtime.deriving_router),
                ("processing", runtime.processing_router),
            ):
                def guard(context_name, plan, _key=key, _phase=phase):
                    return self._guard_plan(_key, _phase, context_name, plan)

                router.wrap_plans(guard)
        return runtime

    def _guard_plan(
        self, partition_key: object, phase: str, context_name: str, plan
    ):
        """Wrap a plan in a circuit breaker (initial build *and* online
        deployment splices route through here).  A context whose plan is
        replaced keeps its breaker — failure history is per (partition,
        phase, context), not per plan object."""
        plan_key = (partition_key, phase, context_name)
        breaker = self._breakers.get(plan_key)
        if breaker is None:
            breaker = CircuitBreaker(
                failure_threshold=self.failure_threshold,
                cooldown=self.cooldown,
            )
            self._breakers[plan_key] = breaker
        return _GuardedPlan(plan, self, plan_key, breaker)

    def _on_plan_failure(
        self,
        key: PlanKey,
        breaker: CircuitBreaker,
        error: Exception,
        events: list[Event],
        now: TimePoint,
    ) -> None:
        with self._failure_lock:
            self.plan_failures += 1
        self._failure_counter.inc()
        breaker.record_failure(now)
        self._dead_letter_for_plan(
            events, None, REASON_PLAN_FAULT, now, error=error, key=key
        )

    def _dead_letter_for_plan(
        self, events, plan, reason, now, *, error=None, key=None
    ) -> None:
        """Divert the events a plan would have consumed.

        Only events in the plan's interest set "belong" to it; the rest of
        the batch flows to other plans unharmed and is not diverted.  On a
        failure (``plan`` is None — the guard already holds the key) the
        whole triggering batch is diverted: the fault may have been caused
        by inter-plan routing inside the combined plan.
        """
        interest = plan.interest_set() if plan is not None else None
        for event in events:
            if interest is not None and event.type_name not in interest:
                continue
            self.dead_letters.put(
                event, reason=reason, error=error, timestamp=now
            )

    # ------------------------------------------------------------------
    # schema validation + recovery hooks
    # ------------------------------------------------------------------

    def _prepare_batch(self, events: list[Event], t: TimePoint) -> list[Event]:
        """Validate schemas *before* distribution.

        Violators are dead-lettered up front so they never enter the
        partition queues; a batch that is invalid in its entirety leaves
        its timestamp empty, which the scheduler treats as a no-op.
        """
        if not self.validate_schemas:
            return super()._prepare_batch(events, t)
        valid: list[Event] = []
        for event in events:
            try:
                event.event_type.schema.validate(
                    event.payload, type_name=event.type_name
                )
            except SchemaError as exc:
                self.dead_letters.put(
                    event, reason=REASON_SCHEMA, error=exc, timestamp=t
                )
            else:
                valid.append(event)
        # Schema rejection happens *before* admission control, so the shed
        # decision stream (and its digest) is identical whether validation
        # is on or off for well-formed streams.
        return super()._prepare_batch(valid, t)

    def _on_batch_end(self, t: TimePoint) -> None:
        if self.recovery is not None:
            self.recovery.observe(self, t)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def breaker_transition_counts(self) -> dict[str, int]:
        counts: dict[str, int] = dict(self._absorbed_transitions)
        for breaker in self._breakers.values():
            for _, from_state, to_state in breaker.transitions:
                key = f"{from_state.value}->{to_state.value}"
                counts[key] = counts.get(key, 0) + 1
        return counts

    def _finalize_report(self, report: EngineReport) -> None:
        super()._finalize_report(report)
        report.plan_failures = self.plan_failures
        report.plans_quarantined = len(self.quarantined_plans())
        report.breaker_transitions = self.breaker_transition_counts()
        report.dead_lettered = {
            reason: count - self._dlq_counts_baseline.get(reason, 0)
            for reason, count in self.dead_letters.counts_by_reason.items()
            if count - self._dlq_counts_baseline.get(reason, 0) > 0
        }
        report.dead_letter_dropped = (
            self.dead_letters.dropped - self._dlq_dropped_baseline
        )
        report.dead_letter_dropped_by_reason = {
            reason: count - self._dlq_dropped_by_reason_baseline.get(reason, 0)
            for reason, count in self.dead_letters.dropped_by_reason.items()
            if count - self._dlq_dropped_by_reason_baseline.get(reason, 0) > 0
        }
        if self.recovery is not None:
            report.checkpoints_taken = self.recovery.checkpoints_taken
            report.recovery_replays = self.recovery.recovery_replays
        self._quarantined_gauge.set(report.plans_quarantined)
        self._checkpoints_gauge.set(report.checkpoints_taken)
        self._replays_gauge.set(report.recovery_replays)

    # ------------------------------------------------------------------
    # process-backend worker state fan-in
    # ------------------------------------------------------------------

    def _worker_state_baseline(self):
        """Snapshot taken inside a freshly forked shard worker.

        The fork inherits the parent's supervision state (copy-on-write),
        so the end-of-run summary must report *deltas* against this.
        Extends the base engine's baseline (observability) with the
        supervision slice.
        """
        baseline = super()._worker_state_baseline() or {}
        baseline["supervision"] = {
            "plan_failures": self.plan_failures,
            "dlq_total": self.dead_letters.total,
            "dlq_dropped": self.dead_letters.dropped,
            "dlq_dropped_by_reason": dict(self.dead_letters.dropped_by_reason),
            "transitions": self.breaker_transition_counts(),
            "quarantined": set(self.quarantined_plans()),
        }
        return baseline

    def _worker_state_summary(self, baseline):
        """What a shard worker accumulated beyond its fork-time baseline."""
        baseline = baseline or {}
        summary = super()._worker_state_summary(baseline) or {}
        base = baseline.get("supervision") or {
            "plan_failures": 0,
            "dlq_total": 0,
            "dlq_dropped": 0,
            "dlq_dropped_by_reason": {},
            "transitions": {},
            "quarantined": set(),
        }
        new_puts = self.dead_letters.total - base["dlq_total"]
        retained = self.dead_letters.entries()
        new_entries = retained[-new_puts:] if new_puts > 0 else []
        transitions = self.breaker_transition_counts()
        base_transitions = base["transitions"]
        summary["supervision"] = {
            "plan_failures": self.plan_failures - base["plan_failures"],
            "dlq_entries": new_entries,
            "dlq_dropped": self.dead_letters.dropped - base["dlq_dropped"],
            "dlq_dropped_by_reason": {
                reason: count - base["dlq_dropped_by_reason"].get(reason, 0)
                for reason, count in self.dead_letters.dropped_by_reason.items()
                if count - base["dlq_dropped_by_reason"].get(reason, 0) > 0
            },
            "transitions": {
                key: count - base_transitions.get(key, 0)
                for key, count in transitions.items()
                if count - base_transitions.get(key, 0) > 0
            },
            "quarantined": [
                key
                for key in self.quarantined_plans()
                if key not in base["quarantined"]
            ],
        }
        return summary

    def _absorb_worker_state(self, summary) -> None:
        if not summary:
            return
        super()._absorb_worker_state(summary)
        supervision = summary.get("supervision")
        if supervision is None:
            return
        with self._failure_lock:
            self.plan_failures += supervision["plan_failures"]
        self.dead_letters.absorb(
            supervision["dlq_entries"],
            dropped=supervision["dlq_dropped"],
            dropped_by_reason=supervision.get("dlq_dropped_by_reason"),
        )
        for key, count in supervision["transitions"].items():
            self._absorbed_transitions[key] = (
                self._absorbed_transitions.get(key, 0) + count
            )
        self._absorbed_quarantined.update(supervision["quarantined"])
