"""Stream transactions (Section 6.2, "Correct Context Management").

A *stream transaction* is the sequence of operations triggered by all input
events sharing one timestamp (one transaction per partition).  A schedule of
read/write operations on the shared context data is correct if conflicting
operations — two operations on the same value, at least one a write — are
processed sorted by timestamps.  :class:`TransactionLog` records the
operations and verifies that ordering, raising
:class:`~repro.errors.TransactionOrderError` on violation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import TransactionOrderError
from repro.events.event import Event
from repro.events.timebase import TimePoint


class OperationKind(enum.Enum):
    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class ContextOperation:
    """One read or write of the shared context data (the bit vector)."""

    kind: OperationKind
    context_name: str
    timestamp: TimePoint


@dataclass
class StreamTransaction:
    """All operations triggered by one partition's events at one timestamp."""

    partition: object
    timestamp: TimePoint
    events: list[Event] = field(default_factory=list)
    operations: list[ContextOperation] = field(default_factory=list)
    committed: bool = False

    def record_read(self, context_name: str) -> None:
        self.operations.append(
            ContextOperation(OperationKind.READ, context_name, self.timestamp)
        )

    def record_write(self, context_name: str) -> None:
        self.operations.append(
            ContextOperation(OperationKind.WRITE, context_name, self.timestamp)
        )

    def commit(self) -> None:
        self.committed = True


class TransactionLog:
    """Verifies that conflicting operations execute in timestamp order.

    Per partition and context name, a write at time ``t`` must not be
    followed by any operation with a timestamp ``< t`` (and symmetrically a
    read must not precede an earlier write that has not yet executed —
    which, for a serial executor, reduces to timestamps never decreasing
    per conflict pair).
    """

    def __init__(self) -> None:
        self._last_write: dict[tuple[object, str], TimePoint] = {}
        self._last_any: dict[tuple[object, str], TimePoint] = {}
        self.transactions = 0

    def register(self, transaction: StreamTransaction) -> None:
        for operation in transaction.operations:
            key = (transaction.partition, operation.context_name)
            if operation.kind is OperationKind.WRITE:
                last = self._last_any.get(key)
                if last is not None and operation.timestamp < last:
                    raise TransactionOrderError(
                        f"write of context {operation.context_name!r} at "
                        f"t={operation.timestamp} after operation at t={last} "
                        f"(partition {transaction.partition!r})"
                    )
                self._last_write[key] = operation.timestamp
                self._last_any[key] = operation.timestamp
            else:
                last_write = self._last_write.get(key)
                if last_write is not None and operation.timestamp < last_write:
                    raise TransactionOrderError(
                        f"read of context {operation.context_name!r} at "
                        f"t={operation.timestamp} after write at t={last_write} "
                        f"(partition {transaction.partition!r})"
                    )
                self._last_any[key] = max(
                    self._last_any.get(key, operation.timestamp),
                    operation.timestamp,
                )
        self.transactions += 1
