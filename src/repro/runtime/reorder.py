"""Bounded out-of-order handling (library extension).

The paper assumes events arrive in timestamp order (Section 6.2: "events
arrive in-order by time stamps"); real sources jitter.  The standard remedy
is a bounded reorder buffer: hold arriving events for up to ``max_delay``
stream-time units, release them sorted once the watermark (largest seen
timestamp minus ``max_delay``) passes them, and count — or raise on —
events arriving later than the bound.

Place it in front of the engine::

    buffer = ReorderBuffer(max_delay=60)
    ordered = buffer.feed(jittered_events)   # plus buffer.flush() at the end
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Iterator

from repro.errors import StreamOrderError
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.events.timebase import TimePoint


class ReorderBuffer:
    """Sorts a jittered event feed within a bounded delay.

    Parameters
    ----------
    max_delay:
        How far (in stream time) an event may lag the newest seen event and
        still be placed correctly.
    on_late:
        ``"drop"`` silently discards events older than the watermark
        (counted in :attr:`late_events`); ``"raise"`` raises
        :class:`~repro.errors.StreamOrderError`; a callable receives each
        late event (after it was counted), e.g. a dead-letter queue's
        :meth:`~repro.runtime.deadletter.DeadLetterQueue.record_late`.
    """

    def __init__(
        self,
        max_delay: TimePoint,
        *,
        on_late: str | Callable[[Event], object] = "drop",
    ):
        if max_delay < 0:
            raise ValueError(f"max_delay must be non-negative, got {max_delay}")
        if not callable(on_late) and on_late not in ("drop", "raise"):
            raise ValueError(
                f"on_late must be 'drop', 'raise' or a callable, got {on_late!r}"
            )
        self.max_delay = max_delay
        self.on_late = on_late
        self._heap: list[tuple[TimePoint, int, Event]] = []
        #: largest timestamp seen so far; ``None`` until the first event.
        #: A numeric sentinel (the old ``-1``) would anchor the initial
        #: watermark at ``-1 - max_delay``, silently dead-lettering events
        #: on streams whose timestamps are negative (epoch offsets,
        #: relative clocks) and mis-counting reorderings around t=0.
        self._max_seen: TimePoint | None = None
        self._last_released: TimePoint | None = None
        self.late_events = 0
        self.reordered_events = 0
        self._late_counter = None
        self._reordered_counter = None
        self._pending_gauge = None

    def bind_metrics(self, registry) -> None:
        """Mirror buffer activity into a metrics registry: late and
        reordered event counters plus a buffer-depth gauge."""
        self._late_counter = registry.counter(
            "caesar_reorder_late_total",
            "Events that arrived after the reorder bound",
        )
        self._reordered_counter = registry.counter(
            "caesar_reorder_reordered_total",
            "Events placed out of arrival order within the bound",
        )
        self._pending_gauge = registry.gauge(
            "caesar_reorder_pending", "Events held in the reorder buffer"
        )

    @property
    def watermark(self) -> TimePoint:
        """Events at or below this timestamp are safe to release.

        Before any event has been seen the watermark is ``-inf``: nothing
        can be late relative to a stream that has not started.
        """
        if self._max_seen is None:
            return float("-inf")
        return self._max_seen - self.max_delay

    @property
    def pending(self) -> int:
        return len(self._heap)

    def push(self, event: Event) -> list[Event]:
        """Insert one event; returns the events released by its arrival.

        Lateness is judged against the *watermark* — the bound the buffer
        promises (``max_seen - max_delay``) — not against the last released
        timestamp.  The two only differ after a :meth:`flush`, which
        releases events ahead of the watermark: an event arriving after a
        flush that still honours ``max_delay`` is accepted (and re-sorted
        against the events still buffered), never falsely dead-lettered.
        """
        if event.timestamp < self.watermark:
            self.late_events += 1
            if self._late_counter is not None:
                self._late_counter.inc()
            if self.on_late == "raise":
                raise StreamOrderError(
                    f"event at t={event.timestamp} arrived after the reorder "
                    f"bound (watermark at t={self.watermark})"
                )
            if callable(self.on_late):
                self.on_late(event)
            return []
        if (
            self._heap
            and self._max_seen is not None
            and event.timestamp < self._max_seen
        ):
            self.reordered_events += 1
            if self._reordered_counter is not None:
                self._reordered_counter.inc()
        heapq.heappush(
            self._heap, (event.timestamp, event.event_id, event)
        )
        if self._max_seen is None or event.timestamp > self._max_seen:
            self._max_seen = event.timestamp
        return self._release(self.watermark)

    def _release(self, up_to: TimePoint) -> list[Event]:
        released: list[Event] = []
        while self._heap and self._heap[0][0] <= up_to:
            _, _, event = heapq.heappop(self._heap)
            released.append(event)
            self._last_released = event.timestamp
        if self._pending_gauge is not None:
            self._pending_gauge.set(len(self._heap))
        return released

    def feed(self, events: Iterable[Event]) -> Iterator[Event]:
        """Push many events, yielding releases as the watermark advances."""
        for event in events:
            yield from self.push(event)

    def flush(self) -> list[Event]:
        """Release everything still buffered (end of stream)."""
        if self._max_seen is None:
            return []
        return self._release(self._max_seen)

    def sort_stream(self, events: Iterable[Event]) -> EventStream:
        """Convenience: a fully ordered :class:`EventStream` from a
        jittered feed (feed + flush)."""
        ordered = list(self.feed(events))
        ordered.extend(self.flush())
        return EventStream(ordered, name="reordered")
