"""Engine checkpointing (library extension).

Long-running stream processors need recovery: capture the engine's mutable
state — per-partition context windows, every plan's partial matches,
aggregate accumulators — and restore it into a *fresh* engine built from
the same model and configuration::

    checkpoint = capture_checkpoint(engine)
    ...                                # process crashes / restarts
    engine2 = CaesarEngine(model, ...) # identical configuration
    restore_checkpoint(engine2, checkpoint)
    # feeding the remaining events now yields exactly the outputs the
    # uninterrupted run would have produced

Checkpoints are plain Python objects (picklable as long as partition keys
and event payloads are).  They capture *state*, not configuration: the
restoring engine must be constructed with the same model, optimization
flags and retention, which the restore verifies structurally.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import CheckpointMismatchError, RuntimeEngineError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.engine import CaesarEngine

#: Format marker so stored checkpoints fail loudly across versions.
#: Version 2 added the engine configuration flags (``context_aware``,
#: ``optimize``), which the restore verifies structurally.
CHECKPOINT_VERSION = 2


def capture_checkpoint(engine: "CaesarEngine") -> dict:
    """Snapshot all mutable state of the engine's partitions."""
    partitions = {}
    for key, runtime in engine._partitions.items():
        partitions[key] = {
            "store": runtime.store.snapshot(),
            "deriving": {
                name: runtime.deriving_router.plan_for(name).snapshot_state()
                for name in runtime.deriving_router.contexts
            },
            "processing": {
                name: runtime.processing_router.plan_for(name).snapshot_state()
                for name in runtime.processing_router.contexts
            },
            "preprocessors": [
                op.snapshot_state() for op in runtime.preprocessors
            ],
            "closed_seen": runtime.closed_seen,
        }
    return {
        "version": CHECKPOINT_VERSION,
        "contexts": tuple(engine.model.context_names),
        "default_context": engine.model.default_context,
        "context_aware": engine.context_aware,
        "optimize": engine.optimize,
        "partitions": partitions,
    }


def restore_checkpoint(engine: "CaesarEngine", checkpoint: dict) -> None:
    """Load a checkpoint into a structurally identical engine.

    Structural verification covers the model shape (context set, default
    context) *and* the engine configuration flags: a checkpoint taken from
    a ``context_aware=True`` engine holds suspended-plan state that a
    context-independent engine would immediately diverge on (and vice
    versa), and ``optimize`` changes the operator pipelines the snapshots
    map onto.  Mismatches raise :class:`~repro.errors.CheckpointMismatchError`
    naming the differing flag.
    """
    if checkpoint.get("version") != CHECKPOINT_VERSION:
        raise RuntimeEngineError(
            f"unsupported checkpoint version: {checkpoint.get('version')!r}"
        )
    if tuple(engine.model.context_names) != checkpoint["contexts"]:
        raise CheckpointMismatchError(
            "checkpoint was taken from a model with different contexts: "
            f"{checkpoint['contexts']} vs {tuple(engine.model.context_names)}"
        )
    if engine.model.default_context != checkpoint["default_context"]:
        raise CheckpointMismatchError("checkpoint default context differs")
    for flag in ("context_aware", "optimize"):
        if checkpoint[flag] != getattr(engine, flag):
            raise CheckpointMismatchError(
                f"checkpoint flag {flag!r} differs: checkpoint was taken "
                f"with {flag}={checkpoint[flag]}, restoring engine has "
                f"{flag}={getattr(engine, flag)}"
            )
    for key, state in checkpoint["partitions"].items():
        runtime = engine._partition(key)  # creates the partition lazily
        runtime.store.restore(state["store"])
        for name, snapshots in state["deriving"].items():
            plan = runtime.deriving_router.plan_for(name)
            if plan is None:
                raise RuntimeEngineError(
                    f"checkpoint references unknown deriving context {name!r}"
                )
            plan.restore_state(snapshots)
        for name, snapshots in state["processing"].items():
            plan = runtime.processing_router.plan_for(name)
            if plan is None:
                raise RuntimeEngineError(
                    f"checkpoint references unknown processing context {name!r}"
                )
            plan.restore_state(snapshots)
        preprocessor_states = state["preprocessors"]
        if len(preprocessor_states) != len(runtime.preprocessors):
            raise RuntimeEngineError(
                "checkpoint preprocessor count differs from the engine's"
            )
        for operator, snapshot in zip(
            runtime.preprocessors, preprocessor_states
        ):
            if snapshot is not None:
                operator.restore_state(snapshot)
        runtime.closed_seen = state["closed_seen"]
    # The next run() must resume from the restored state instead of
    # resetting to a clean slate (the re-entrancy default).
    engine._preserve_state_once = True
