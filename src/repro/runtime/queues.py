"""Event distributor and per-partition event queues (Section 6.1, storage
layer).

The event distributor buffers incoming events into per-partition queues
(one partition per unidirectional road segment in the traffic use case) and
tracks its *progress*: the largest timestamp it has fully distributed.  The
time-driven scheduler waits for the distributor's progress to pass ``t``
before executing the transactions of time ``t`` (Section 6.2, "Correct
Context Management").

Queue operations are guarded by a lock: the parallel execution backends
(:mod:`repro.runtime.backend`) form transactions on the scheduler thread
while shard workers may still be draining a previous dispatch, so takes and
distributes must be safe to interleave across threads.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Hashable, Iterable

from repro.events.event import Event
from repro.events.timebase import TimePoint

PartitionKey = Hashable
Partitioner = Callable[[Event], PartitionKey]


def single_partition(event: Event) -> PartitionKey:
    """The default partitioner: everything in one partition."""
    return None


class EventDistributor:
    """Buffers events into per-partition FIFO queues.

    ``progress`` is the largest timestamp ``t`` such that all events with
    timestamps ``<= t`` have been enqueued — for an in-order stream this is
    simply the last distributed timestamp.
    """

    def __init__(self, partitioner: Partitioner = single_partition):
        self._partitioner = partitioner
        self._queues: dict[PartitionKey, deque[Event]] = {}
        self._lock = threading.Lock()
        self.progress: TimePoint = -1
        self.distributed = 0
        #: events returned by :meth:`take_exactly` that were *older* than the
        #: requested timestamp — stragglers a correct scheduler never leaves
        #: behind, surfaced here instead of silently stranded or conflated
        self.stranded_taken = 0

    def distribute(self, events: Iterable[Event]) -> None:
        with self._lock:
            for event in events:
                key = self._partitioner(event)
                self._queues.setdefault(key, deque()).append(event)
                self.progress = max(self.progress, event.timestamp)
                self.distributed += 1

    @property
    def partitions(self) -> tuple[PartitionKey, ...]:
        with self._lock:
            return tuple(self._queues)

    def pending(self, key: PartitionKey) -> int:
        with self._lock:
            queue = self._queues.get(key)
            return len(queue) if queue else 0

    def total_pending(self) -> int:
        with self._lock:
            return sum(len(queue) for queue in self._queues.values())

    def take_until(self, key: PartitionKey, t: TimePoint) -> list[Event]:
        """Dequeue all events of a partition with timestamps ``<= t``."""
        with self._lock:
            return self._take_until_locked(key, t)

    def _take_until_locked(self, key: PartitionKey, t: TimePoint) -> list[Event]:
        queue = self._queues.get(key)
        if not queue:
            return []
        taken: list[Event] = []
        while queue and queue[0].timestamp <= t:
            taken.append(queue.popleft())
        return taken

    def take_exactly(self, key: PartitionKey, t: TimePoint) -> list[Event]:
        """Dequeue the events of a partition with timestamp exactly ``t``.

        Events older than ``t`` at the queue head would indicate a scheduler
        bug (they should have been taken by an earlier transaction), so they
        are also returned rather than silently stranded — but unlike
        :meth:`take_until` they are *distinguished*: each one is counted in
        :attr:`stranded_taken`.  Events newer than ``t`` stay queued.
        """
        with self._lock:
            taken = self._take_until_locked(key, t)
        for event in taken:
            if event.timestamp < t:
                self.stranded_taken += 1
        return taken
