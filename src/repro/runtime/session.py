"""Incremental execution sessions (library extension).

:meth:`CaesarEngine.run` consumes a complete stream; long-running services
feed events as they arrive.  :class:`EngineSession` wraps an engine with an
incremental interface::

    session = EngineSession(engine)
    alarms = session.feed(batch_of_events)   # events in timestamp order
    ...
    report = session.close()                 # final metrics

Feeding preserves all engine semantics — per-partition context derivation
before processing, suspension, history discard, garbage collection — and
enforces the in-order arrival contract across calls.
"""

from __future__ import annotations

import time as _time
from typing import Iterable, TYPE_CHECKING

from repro.errors import RuntimeEngineError, StreamOrderError
from repro.events.event import Event
from repro.events.timebase import TimePoint
from repro.runtime.metrics import LatencyTracker
from repro.runtime.queues import EventDistributor
from repro.runtime.scheduler import TimeDrivenScheduler
from repro.runtime.transactions import StreamTransaction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.engine import CaesarEngine, EngineReport


class EngineSession:
    """A stateful, incremental run of a :class:`CaesarEngine`."""

    def __init__(self, engine: "CaesarEngine"):
        self.engine = engine
        self._distributor = EventDistributor(engine.partition_by)
        self._scheduler = TimeDrivenScheduler(
            self._distributor, instruments=engine.instruments
        )
        self._latency = LatencyTracker()
        self._last_time: TimePoint | None = None
        self._events_processed = 0
        self._batches = 0
        self._outputs_by_type: dict[str, int] = {}
        self._wall_started = _time.perf_counter()
        self._closed = False
        if engine.shedder is not None:
            engine.shedder.begin_run(distributor=self._distributor, remote=False)

    # ------------------------------------------------------------------

    def feed(self, events: Iterable[Event]) -> list[Event]:
        """Process the next events (timestamp-ordered); returns derivations.

        Events within one call may span several timestamps; each distinct
        timestamp forms its own stream transactions.
        """
        if self._closed:
            raise RuntimeEngineError("session is closed")
        outputs: list[Event] = []
        pending: list[Event] = []
        for event in events:
            if self._last_time is not None and event.timestamp < self._last_time:
                raise StreamOrderError(
                    f"event at t={event.timestamp} arrived after "
                    f"t={self._last_time}"
                )
            if pending and event.timestamp != pending[-1].timestamp:
                outputs.extend(self._run_batch(pending))
                pending = []
            pending.append(event)
            self._last_time = event.timestamp
        if pending:
            outputs.extend(self._run_batch(pending))
        return outputs

    def _run_batch(self, batch: list[Event]) -> list[Event]:
        engine = self.engine
        t = batch[0].timestamp
        prepared = engine._prepare_batch(list(batch), t)
        if prepared:
            self._distributor.distribute(prepared)
        engine.instruments.queue_depth.set(self._distributor.total_pending())
        cost_before = engine._total_cost_units()
        wall_before = _time.perf_counter()
        outputs: list[Event] = []

        def execute(transaction: StreamTransaction) -> None:
            outputs.extend(engine._execute_transaction(transaction))

        self._scheduler.run_time(t, execute)
        if engine.seconds_per_cost_unit is not None:
            service = (
                engine._total_cost_units() - cost_before
            ) * engine.seconds_per_cost_unit
        else:
            service = _time.perf_counter() - wall_before
        batch_latency = self._latency.record(float(t), service)
        self._events_processed += len(batch)
        self._batches += 1
        instruments = engine.instruments
        instruments.batches.inc()
        instruments.events.inc(len(batch))
        instruments.outputs.inc(len(outputs))
        instruments.batch_service.observe(service)
        instruments.batch_latency.observe(batch_latency)
        for event in outputs:
            self._outputs_by_type[event.type_name] = (
                self._outputs_by_type.get(event.type_name, 0) + 1
            )
        if engine.shedder is not None:
            engine.shedder.note_batch_cost(
                engine._total_cost_units() - cost_before
            )
        engine._on_batch_end(t)
        if engine.observability.snapshot_due(self._batches):
            engine.observability.emit_snapshot(t)
            instruments.snapshots.inc()
        return outputs

    # ------------------------------------------------------------------

    @property
    def now(self) -> TimePoint | None:
        """Timestamp of the most recently fed event."""
        return self._last_time

    def active_contexts(self, partition=None) -> tuple[str, ...]:
        """Currently active contexts of a partition (for dashboards)."""
        return self.engine._partition(partition).store.active_contexts()

    def close(self) -> "EngineReport":
        """Finish the session and return the accumulated report."""
        from repro.runtime.engine import EngineReport

        self._closed = True
        self.engine._observe_totals(self.engine._local_totals())
        report = EngineReport(
            outputs=[],
            events_processed=self._events_processed,
            batches=self._batches,
            cost_units=self.engine._total_cost_units(),
            wall_seconds=_time.perf_counter() - self._wall_started,
            max_latency=self._latency.max_latency,
            mean_latency=self._latency.mean_latency,
            outputs_by_type=dict(self._outputs_by_type),
            windows_by_partition={
                key: runtime.store.all_windows()
                for key, runtime in self.engine._partitions.items()
            },
        )
        self.engine._finalize_report(report)
        return report
