"""Incremental execution sessions (library extension).

:meth:`CaesarEngine.run` consumes a complete stream; long-running services
feed events as they arrive.  :class:`EngineSession` wraps an engine with an
incremental interface::

    session = EngineSession(engine)
    alarms = session.feed(batch_of_events)   # events as they arrive
    ...
    report = session.close()                 # final metrics

Feeding preserves all engine semantics — per-partition context derivation
before processing, suspension, history discard, garbage collection,
admission control, supervision hooks — because each timestamp's batch runs
through exactly the same pipeline as one iteration of the ``run()`` loop:
``_prepare_batch`` → distribute → scheduler collect → backend execute →
commit → latency/shedder accounting → ``_on_batch_end``.  The session uses
the engine's configured execution backend, so thread- and process-sharded
engines feed incrementally too.

Late arrivals are no longer an error: events flow through a
:class:`~repro.runtime.reorder.ReorderBuffer` with the session's
``max_delay`` bound, and events older than the watermark (or older than a
timestamp whose transaction already committed) are counted in
:attr:`EngineSession.late_events` and diverted to the engine's dead-letter
queue under the ``late`` reason when one is attached.

The central invariant — enforced by the difftest ``service`` axis — is
that feeding a stream in chunks is byte-identical to one ``run()`` over
the whole stream: same outputs, same windows, same deterministic counters.
"""

from __future__ import annotations

import time as _time
from typing import Iterable, TYPE_CHECKING

from repro.errors import RuntimeEngineError
from repro.events.event import Event
from repro.events.timebase import TimePoint
from repro.runtime.reorder import ReorderBuffer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.engine import CaesarEngine, EngineReport


class EngineSession:
    """A stateful, incremental run of a :class:`CaesarEngine`.

    Parameters
    ----------
    engine:
        The engine to drive.  As with ``run()``, a session on a previously
        used engine starts from a clean slate unless the engine was just
        restored from a checkpoint.
    max_delay:
        Bounded out-of-order tolerance: events may arrive up to
        ``max_delay`` stream-time units late and are reordered before
        processing; older ones are dead-lettered as late.  ``0`` (default)
        keeps the strict in-order contract but demotes violations from an
        exception to late accounting.
    eager:
        With ``eager=True`` (default) every event released by the reorder
        buffer is processed before :meth:`feed` returns.  With
        ``eager=False`` the newest timestamp's batch is held until a
        strictly newer timestamp arrives, so equal-timestamp events split
        across calls still form one stream transaction — the mode
        :class:`~repro.runtime.service.EngineService` feeds single events
        with.
    track_outputs:
        As in ``run()``: accumulate derived events on the final report.
    """

    def __init__(
        self,
        engine: "CaesarEngine",
        *,
        max_delay: TimePoint = 0,
        eager: bool = True,
        track_outputs: bool = True,
    ):
        from repro.runtime.engine import RunState

        self.engine = engine
        self.eager = eager
        self.track_outputs = track_outputs
        self.late_events = 0
        if engine._runs_started > 0 and not engine._preserve_state_once:
            engine.reset_run_state()
        engine._runs_started += 1
        self._state = RunState(engine.partition_by, engine.instruments)
        self._reorder = ReorderBuffer(max_delay, on_late=self._record_late)
        #: released-but-unprocessed events, sorted by construction (the
        #: reorder buffer releases in timestamp order)
        self._pending: list[Event] = []
        self._last_fed: TimePoint | None = None
        self._last_processed: TimePoint | None = None
        self._closed = False
        self._report: "EngineReport | None" = None
        self._backend = engine.backend.for_engine(engine)
        engine._effective_backend = self._backend
        self._local_state = self._backend.local_state
        self._backend.begin_run(engine)
        if engine.shedder is not None:
            engine.shedder.begin_run(
                distributor=self._state.distributor,
                remote=not self._local_state,
            )

    # ------------------------------------------------------------------
    # feeding
    # ------------------------------------------------------------------

    def feed(self, events: Iterable[Event]) -> list[Event]:
        """Process the next events; returns the derivations they released.

        Events within one call may span several timestamps; each distinct
        timestamp forms its own stream transactions.  Arrival may be out
        of order within the session's ``max_delay`` bound; older events
        are dead-lettered as late instead of raising.
        """
        if self._closed:
            raise RuntimeEngineError("session is closed")
        for event in events:
            self._last_fed = event.timestamp
            self._pending.extend(self._reorder.push(event))
        return self._drain_pending()

    def flush(self) -> list[Event]:
        """Release and process everything the reorder buffer still holds."""
        if self._closed:
            raise RuntimeEngineError("session is closed")
        self._pending.extend(self._reorder.flush())
        return self._drain_pending(final=True)

    def _record_late(self, event: Event) -> None:
        self.late_events += 1
        dead_letters = getattr(self.engine, "dead_letters", None)
        if dead_letters is not None:
            dead_letters.record_late(event)

    def _drain_pending(self, *, final: bool = False) -> list[Event]:
        pending = self._pending
        if not pending:
            return []
        if not self.eager and not final:
            # hold the frontier timestamp's batch open: equal-timestamp
            # events arriving in later calls must join its transaction
            frontier = pending[-1].timestamp
            if pending[0].timestamp == frontier:
                return []
        else:
            frontier = None
        outputs: list[Event] = []
        self._pending = []
        index = 0
        while index < len(pending):
            t = pending[index].timestamp
            if frontier is not None and t == frontier:
                self._pending = pending[index:]
                break
            end = index
            while end < len(pending) and pending[end].timestamp == t:
                end += 1
            batch = pending[index:end]
            index = end
            if self._last_processed is not None and t <= self._last_processed:
                # the transaction for t already committed — a closed
                # timestamp cannot be reopened, so these count as late
                # even though the reorder bound admitted them
                for event in batch:
                    self._record_late(event)
                continue
            outputs.extend(self._run_batch(t, batch))
        return outputs

    def _run_batch(self, t: TimePoint, batch: list[Event]) -> list[Event]:
        """One iteration of the ``run()`` loop, verbatim semantics."""
        engine = self.engine
        state = self._state
        backend = self._backend
        local_state = self._local_state
        with engine.observability.span("batch", t=t):
            events = engine._prepare_batch(list(batch), t)
            if events:
                state.distributor.distribute(events)
            engine.instruments.queue_depth.set(
                state.distributor.total_pending()
            )
            cost_before = engine._total_cost_units() if local_state else 0.0
            wall_before = _time.perf_counter()
            transactions = state.scheduler.collect(t)
            results = backend.execute(t, transactions, engine)
            state.scheduler.commit(transactions)
            batch_outputs = [
                event for outputs in results for event in outputs
            ]
            if engine.seconds_per_cost_unit is not None:
                if local_state:
                    cost_delta = engine._total_cost_units() - cost_before
                else:
                    cost_delta = backend.last_cost_delta
                service = cost_delta * engine.seconds_per_cost_unit
            else:
                service = _time.perf_counter() - wall_before
            state.record_batch(
                t, len(batch), batch_outputs, service, self.track_outputs
            )
            shedder = engine.shedder
            if shedder is not None:
                if local_state:
                    shedder.note_batch_cost(
                        engine._total_cost_units() - cost_before
                    )
                else:
                    shedder.note_batch_cost(backend.last_cost_delta)
                    shedder.absorb_remote_feedback(backend.last_shed_feedback)
            engine._on_batch_end(t)
            engine._preserve_state_once = False
        if engine.observability.snapshot_due(state.batches):
            engine._refresh_gauges(state)
            engine.observability.emit_snapshot(t)
            engine.instruments.snapshots.inc()
        self._last_processed = t
        return batch_outputs

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def now(self) -> TimePoint | None:
        """Timestamp of the most recently fed event."""
        return self._last_fed

    @property
    def watermark(self) -> TimePoint | None:
        """Timestamp of the most recently committed stream transaction."""
        return self._last_processed

    @property
    def reordered_events(self) -> int:
        """Events the reorder buffer released out of arrival order."""
        return self._reorder.reordered_events

    def active_contexts(self, partition=None) -> tuple[str, ...]:
        """Currently active contexts of a partition (for dashboards)."""
        return self.engine._partition(partition).store.active_contexts()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> "EngineReport":
        """Finish the session and return the accumulated report.

        Flushes the reorder buffer, finalizes the backend (worker fan-in)
        and the shedder, and builds the same report ``run()`` would —
        including outputs, windows, backend/transport and overload
        accounting — so ``repro stats`` and the difftest axes see chunked
        and one-shot execution identically.  Idempotent: a second call
        returns the same report.
        """
        if self._report is not None:
            return self._report
        from repro.runtime.engine import EngineReport

        engine = self.engine
        self._pending.extend(self._reorder.flush())
        self._drain_pending(final=True)
        self._closed = True
        totals = None
        try:
            totals = self._backend.collect_totals(engine)
        finally:
            self._backend.end_run(engine)
        if totals is None:
            totals = engine._local_totals()
        engine._observe_totals(totals)
        engine._refresh_gauges(self._state, totals)
        state = self._state
        report = EngineReport(
            outputs=state.outputs,
            events_processed=state.events_processed,
            batches=state.batches,
            cost_units=totals.cost_units,
            wall_seconds=state.wall_seconds,
            max_latency=state.latency.max_latency,
            mean_latency=state.latency.mean_latency,
            outputs_by_type=state.outputs_by_type,
            windows_by_partition=totals.windows_by_partition,
            suppressed_batches=totals.suppressed_batches,
            routed_batches=totals.routed_batches,
            interest_suppressed_batches=totals.interest_suppressed_batches,
            gc_collected=totals.gc_collected,
            history_discards=totals.history_discards,
            cost_by_context=totals.cost_by_context,
            backend=self._backend.name,
            transport_bytes_out=totals.transport_bytes_out,
            transport_bytes_in=totals.transport_bytes_in,
            batches_shm=totals.batches_shm,
            batches_pickled_fallback=totals.batches_pickled_fallback,
        )
        engine._finalize_report(report)
        self._report = report
        return report
