"""Report exports and context-timeline rendering.

Engine runs produce :class:`~repro.runtime.engine.EngineReport` objects;
this module turns them into machine-readable dictionaries (for JSON
serialization or dataframes) and human-readable context timelines::

    print(render_timeline(report))
    json.dump(report_to_dict(report), fh)
"""

from __future__ import annotations

from typing import Any

from repro.core.windows import ContextWindow
from repro.runtime.engine import EngineReport

#: Version of the :func:`report_to_dict` layout.  Bumped whenever a field is
#: added, renamed or changes meaning, so downstream consumers (dashboards,
#: archived JSON reports) can dispatch on it.  History:
#:
#: 1. the original flat layout (implicit — no version field)
#: 2. adds ``schema_version`` itself; reports are produced by engines
#:    carrying the observability subsystem
#: 3. adds the ``transport`` subdict (process-backend shared-memory /
#:    pipe diagnostics; zeros for in-process backends)
#: 4. adds the ``overload`` subdict (load-shedding admission control) and
#:    per-reason dead-letter drop accounting under ``supervision``
#: 5. adds the ``aggregation`` subdict (DERIVE aggregate accounting:
#:    matches folded online vs. matches materialized by the oracle path)
REPORT_SCHEMA_VERSION = 5


def report_to_dict(report: EngineReport, *, include_outputs: bool = False) -> dict:
    """A JSON-serializable summary of an engine run.

    ``include_outputs`` adds every derived event (type, time, payload) —
    potentially large; off by default.
    """
    result: dict[str, Any] = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "backend": report.backend,
        "events_processed": report.events_processed,
        "batches": report.batches,
        "cost_units": report.cost_units,
        "wall_seconds": report.wall_seconds,
        "max_latency": report.max_latency,
        "mean_latency": report.mean_latency,
        "throughput": report.throughput,
        "outputs_by_type": dict(report.outputs_by_type),
        "suppressed_batches": report.suppressed_batches,
        "routed_batches": report.routed_batches,
        "interest_suppressed_batches": report.interest_suppressed_batches,
        "gc_collected": report.gc_collected,
        "history_discards": report.history_discards,
        "cost_by_context": dict(report.cost_by_context),
        "supervision": {
            "plan_failures": report.plan_failures,
            "plans_quarantined": report.plans_quarantined,
            "breaker_transitions": dict(report.breaker_transitions),
            "dead_lettered": dict(report.dead_lettered),
            "dead_letter_dropped": report.dead_letter_dropped,
            "dead_letter_dropped_by_reason": dict(
                report.dead_letter_dropped_by_reason
            ),
            "checkpoints_taken": report.checkpoints_taken,
            "recovery_replays": report.recovery_replays,
        },
        "overload": {
            "shed_events": report.shed_events,
            "protected_events": report.protected_events,
            "sampled_events": report.sampled_events,
            "shed_ticks": report.shed_ticks,
            "shed_by_class": dict(report.shed_by_class),
            "shed_by_context": dict(report.shed_by_context),
            "decision_digest": report.shed_decision_digest,
            "pressure_peak": report.shed_pressure_peak,
            "depth_peak": report.shed_depth_peak,
            "backlog_peak_seconds": report.shed_backlog_peak_seconds,
            "suspended_contexts": list(report.suspended_contexts),
        },
        "aggregation": {
            "matches_aggregated": report.matches_aggregated,
            "matches_materialized": report.matches_materialized,
        },
        "transport": {
            "bytes_out": report.transport_bytes_out,
            "bytes_in": report.transport_bytes_in,
            "batches_shm": report.batches_shm,
            "batches_pickled_fallback": report.batches_pickled_fallback,
        },
        "windows": {
            _partition_key(key): [_window_to_dict(w) for w in windows]
            for key, windows in report.windows_by_partition.items()
        },
    }
    if include_outputs:
        result["outputs"] = [
            {
                "type": event.type_name,
                "start": event.start_time,
                "end": event.timestamp,
                "payload": event.payload,
            }
            for event in report.outputs
        ]
    return result


def _partition_key(key: object) -> str:
    if key is None:
        return "<default>"
    return str(key)


def _window_to_dict(window: ContextWindow) -> dict:
    return {
        "context": window.context_name,
        "start": window.start,
        "end": window.end,
        "open": window.is_open,
    }


def render_timeline(
    report: EngineReport,
    *,
    partition: object = ...,
    width: int = 60,
) -> str:
    """An ASCII context timeline per partition.

    Each context gets one lane; ``#`` marks the spans its windows held::

        partition (0, 0, 0)  [0 .. 720]
          clear       ######------------------########----------
          accident    ------########----------------------------
          congestion  --------------##########------------------
    """
    partitions = report.windows_by_partition
    if partition is not ...:
        partitions = {partition: partitions[partition]}
    lines: list[str] = []
    for key, windows in partitions.items():
        if not windows:
            continue
        start = min(w.start for w in windows)
        end = max(
            (w.end for w in windows if w.end is not None),
            default=start,
        )
        end = max(end, max(w.start for w in windows))
        span = max(end - start, 1)
        lines.append(f"partition {_partition_key(key)}  [{start} .. {end}]")
        contexts = sorted({w.context_name for w in windows})
        label_width = max(len(c) for c in contexts)
        for context in contexts:
            lane = ["-"] * width
            for window in windows:
                if window.context_name != context:
                    continue
                w_end = window.end if window.end is not None else end
                lo = int((window.start - start) / span * (width - 1))
                hi = int((w_end - start) / span * (width - 1))
                for position in range(lo, max(hi, lo) + 1):
                    lane[position] = "#"
            lines.append(f"  {context:<{label_width}}  {''.join(lane)}")
    return "\n".join(lines)


def outputs_to_rows(report: "EngineReport | list") -> list[dict]:
    """Flatten derived events into rows (e.g. for csv.DictWriter).

    Accepts either an :class:`EngineReport` or a plain list of events —
    the latter is what incremental sessions and recovery replays hand
    back, and what the determinism-of-recovery contract compares.
    """
    events = report if isinstance(report, list) else report.outputs
    rows = []
    for event in events:
        row = {"type": event.type_name, "time": event.timestamp}
        row.update(event.payload)
        rows.append(row)
    return rows
