"""Time-driven stream-transaction scheduler (Section 6.2).

For each timestamp ``t`` the scheduler waits until the event distributor's
progress passed ``t`` and all transactions with smaller timestamps finished,
then extracts all events with timestamp ``t`` from the queues, wraps each
partition's events into one stream transaction and submits them for
execution.  Context derivation for ``t`` always runs before context
processing at ``t`` — the executor callback receives the transaction and
performs the two phases in order.

Transaction formation (:meth:`TimeDrivenScheduler.collect`) and commit
(:meth:`TimeDrivenScheduler.commit`) are split so an execution backend can
fan the transactions of one timestamp out to shard workers and fan the
results back in before anything is committed; :meth:`run_time` composes the
two for the serial path.  Correctness — conflicting operations sorted by
timestamps — is still *verified* through the
:class:`~repro.runtime.transactions.TransactionLog` regardless of which
backend executed the transactions.

A timestamp for which the distributor holds no events at all is a no-op,
not an error: supervised runs legitimately divert entire batches (e.g. all
events schema-invalid) to the dead-letter queue before distribution, and
time must still advance past them.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import RuntimeEngineError
from repro.events.timebase import TimePoint
from repro.runtime.queues import EventDistributor, PartitionKey
from repro.runtime.transactions import StreamTransaction, TransactionLog

Executor = Callable[[StreamTransaction], None]


class TimeDrivenScheduler:
    """Forms and submits stream transactions in timestamp order."""

    def __init__(
        self,
        distributor: EventDistributor,
        *,
        log: TransactionLog | None = None,
        instruments=None,
    ):
        self._distributor = distributor
        self.log = log if log is not None else TransactionLog()
        #: ``None`` until the first timestamp is scheduled — a numeric
        #: sentinel would misorder streams that start at negative times
        self._last_scheduled: TimePoint | None = None
        self.transactions_executed = 0
        #: timestamps scheduled with no pending events anywhere (e.g. a
        #: batch fully dead-lettered before distribution)
        self.empty_timestamps = 0
        #: optional :class:`~repro.observability.EngineInstruments` bundle;
        #: commit and empty-timestamp accounting mirror into it
        self._instruments = instruments

    def collect(self, t: TimePoint) -> list[StreamTransaction]:
        """Extract the (uncommitted) transactions for timestamp ``t``.

        One transaction per partition holding events, in the distributor's
        partition order — the deterministic merge order the parallel
        backends reproduce.  An empty timestamp (the distributor holds no
        pending events at all) yields an empty list; a distributor whose
        progress lags ``t`` *while still holding events* is a real
        scheduling error and raises.
        """
        if self._last_scheduled is not None and t <= self._last_scheduled:
            raise RuntimeEngineError(
                f"scheduler asked to run t={t} after t={self._last_scheduled}"
            )
        if self._distributor.progress < t:
            if self._distributor.total_pending() == 0:
                # Nothing was distributed for t (nor remains from earlier
                # timestamps): a legitimate empty timestamp, not a crash.
                self._last_scheduled = t
                self.empty_timestamps += 1
                if self._instruments is not None:
                    self._instruments.empty_timestamps.inc()
                return []
            raise RuntimeEngineError(
                f"event distributor progress {self._distributor.progress} has "
                f"not reached t={t}; distribute the events first"
            )
        transactions: list[StreamTransaction] = []
        for key in self._distributor.partitions:
            events = self._distributor.take_until(key, t)
            if not events:
                continue
            transactions.append(
                StreamTransaction(partition=key, timestamp=t, events=events)
            )
        self._last_scheduled = t
        return transactions

    def commit(self, transactions: list[StreamTransaction]) -> None:
        """Commit executed transactions and register them with the log."""
        for transaction in transactions:
            transaction.commit()
            self.log.register(transaction)
            self.transactions_executed += 1
        if transactions and self._instruments is not None:
            self._instruments.transactions.inc(len(transactions))

    def run_time(self, t: TimePoint, executor: Executor) -> list[StreamTransaction]:
        """Extract, execute and commit all transactions for timestamp ``t``."""
        transactions = self.collect(t)
        for transaction in transactions:
            executor(transaction)
            self.commit([transaction])
        return transactions
