"""Time-driven stream-transaction scheduler (Section 6.2).

For each timestamp ``t`` the scheduler waits until the event distributor's
progress passed ``t`` and all transactions with smaller timestamps finished,
then extracts all events with timestamp ``t`` from the queues, wraps each
partition's events into one stream transaction and submits them for
execution.  Context derivation for ``t`` always runs before context
processing at ``t`` — the executor callback receives the transaction and
performs the two phases in order.

The scheduler is serial (our substrate is single-process), but it still
*verifies* the correctness condition — conflicting operations sorted by
timestamps — through the :class:`~repro.runtime.transactions.TransactionLog`.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import RuntimeEngineError
from repro.events.timebase import TimePoint
from repro.runtime.queues import EventDistributor, PartitionKey
from repro.runtime.transactions import StreamTransaction, TransactionLog

Executor = Callable[[StreamTransaction], None]


class TimeDrivenScheduler:
    """Forms and submits stream transactions in timestamp order."""

    def __init__(
        self,
        distributor: EventDistributor,
        *,
        log: TransactionLog | None = None,
    ):
        self._distributor = distributor
        self.log = log if log is not None else TransactionLog()
        self._last_scheduled: TimePoint = -1
        self.transactions_executed = 0

    def run_time(self, t: TimePoint, executor: Executor) -> list[StreamTransaction]:
        """Extract, execute and commit all transactions for timestamp ``t``."""
        if t <= self._last_scheduled:
            raise RuntimeEngineError(
                f"scheduler asked to run t={t} after t={self._last_scheduled}"
            )
        if self._distributor.progress < t:
            raise RuntimeEngineError(
                f"event distributor progress {self._distributor.progress} has "
                f"not reached t={t}; distribute the events first"
            )
        transactions: list[StreamTransaction] = []
        for key in self._distributor.partitions:
            events = self._distributor.take_until(key, t)
            if not events:
                continue
            transaction = StreamTransaction(
                partition=key, timestamp=t, events=events
            )
            executor(transaction)
            transaction.commit()
            self.log.register(transaction)
            transactions.append(transaction)
            self.transactions_executed += 1
        self._last_scheduled = t
        return transactions
