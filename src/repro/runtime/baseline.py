"""Context-independent baseline engine (Section 7.3's comparator).

State-of-the-art CEP engines [34, 5, 32] evaluate every query continuously,
regardless of the current application context: plans are never suspended and
context scoping — if an application needs it — is enforced by an un-pushed
window/filter in the middle of each plan (the "non-optimized query plan" of
Figure 6(a) and Figure 11(b)).

:class:`ContextIndependentEngine` is the :class:`CaesarEngine` configured
that way: every batch is routed to every plan (``context_aware=False``), and
context windows stay where Table 1's naive translation puts them
(``optimize=False``), so patterns and filters busy-wait on the entire stream
while only the final emission is gated.  The outputs are identical to the
context-aware engine's — which the integration tests assert — only the cost
differs.
"""

from __future__ import annotations

from repro.core.model import CaesarModel
from repro.events.timebase import TimePoint
from repro.runtime.engine import CaesarEngine
from repro.runtime.queues import Partitioner, single_partition


class ContextIndependentEngine(CaesarEngine):
    """The paper's baseline: all queries, all the time."""

    def __init__(
        self,
        model: CaesarModel,
        *,
        retention: TimePoint = 300,
        partition_by: Partitioner = single_partition,
        seconds_per_cost_unit: float | None = None,
        gc_interval: TimePoint = 60,
        backend=None,
        observability=None,
    ):
        super().__init__(
            model,
            optimize=False,
            context_aware=False,
            retention=retention,
            partition_by=partition_by,
            seconds_per_cost_unit=seconds_per_cost_unit,
            gc_interval=gc_interval,
            backend=backend,
            observability=observability,
        )
