"""Long-lived streaming service mode (library extension).

:class:`EngineService` turns an engine into a continuously ingesting
service: producers :meth:`~EngineService.submit` events into a bounded
queue (blocking when it is full — backpressure that slows the producer
down instead of growing memory, complementing the load shedder's admission
control which keeps working on stream-time pressure unchanged), a feeder
thread drains the queue through an :class:`~repro.runtime.session.EngineSession`,
and derived events are emitted *as their stream transactions commit* — via
an ``on_emit`` callback or the :meth:`~EngineService.outputs` iterator —
not only in the end-of-run report.

The session runs in frontier mode (``eager=False``): a timestamp's batch
stays open until a strictly newer timestamp arrives, so events of one
logical transaction may be submitted one at a time and still execute as
one transaction — which is what makes continuous ingestion byte-identical
to a one-shot ``run()`` over the same stream (the difftest ``service``
axis enforces this).

Online deployment — :meth:`~EngineService.deploy_query`,
:meth:`~EngineService.retire_query`, :meth:`~EngineService.deploy_context`
— is serialized through the same queue: the operation takes effect after
every previously submitted event has committed, and returns that
activation watermark.  Outputs of the new query from the watermark onward
match a from-scratch engine that had the query all along (enforced by
test against a checkpoint-restored reference).

Periodic live snapshots come for free: a supervised engine with a
:class:`~repro.runtime.recovery.RecoveryManager` autosaves at watermark
boundaries because the session calls ``_on_batch_end`` per committed
transaction, exactly like ``run()``.

Service gauges (queue depth, watermark, watermark lag, emit latency) are
registered on the engine's metrics registry under ``caesar_service_*``.
"""

from __future__ import annotations

import queue as _queue
import threading
import time as _time
from typing import Callable, Iterable, Iterator, TYPE_CHECKING

from repro.errors import RuntimeEngineError
from repro.events.event import Event
from repro.events.timebase import TimePoint
from repro.runtime.session import EngineSession

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.engine import CaesarEngine, EngineReport

#: sentinel closing the feeder loop (graceful drain)
_STOP = object()


class _Finish:
    """Terminates the :meth:`EngineService.outputs` iterator.

    Carries the feeder error when the service died instead of stopping:
    a blocked consumer must wake up and see the failure, not wait on an
    emission queue nobody will ever feed again.
    """

    __slots__ = ("error",)

    def __init__(self, error: BaseException | None = None):
        self.error = error


#: sentinel terminating the outputs iterator after a clean stop
_DONE = _Finish()


class _Op:
    """A control operation serialized through the event queue."""

    __slots__ = ("apply", "done", "result", "error")

    def __init__(self, apply: Callable[[], object]):
        self.apply = apply
        self.done = threading.Event()
        self.result: object = None
        self.error: BaseException | None = None


class EngineService:
    """Continuous ingestion with live emission and online deployment.

    Parameters
    ----------
    engine:
        The engine to serve.  Must use an in-process (serial or thread)
        backend when online deployment is exercised.
    max_delay:
        Out-of-order tolerance forwarded to the underlying session's
        reorder buffer; older events are dead-lettered as late.
    queue_size:
        Bound of the ingestion queue; a full queue blocks :meth:`submit`
        (backpressure).
    on_emit:
        Optional callback invoked with each derived event as it is
        emitted (from the feeder thread).  Without one, consume
        :meth:`outputs` instead.
    track_outputs:
        As in ``run()``: also accumulate derived events on the report.
    """

    def __init__(
        self,
        engine: "CaesarEngine",
        *,
        max_delay: TimePoint = 0,
        queue_size: int = 1024,
        on_emit: Callable[[Event], None] | None = None,
        track_outputs: bool = True,
    ):
        self.engine = engine
        self.session = EngineSession(
            engine,
            max_delay=max_delay,
            eager=False,
            track_outputs=track_outputs,
        )
        self.on_emit = on_emit
        self.emitted_events = 0
        self._queue: _queue.Queue = _queue.Queue(maxsize=queue_size)
        self._emitted: _queue.Queue | None = (
            _queue.Queue() if on_emit is None else None
        )
        self._error: BaseException | None = None
        self._report: "EngineReport | None" = None
        self._stopping = False
        #: serializes the alive-check-then-enqueue step of ``submit`` and
        #: ``_control`` against ``stop`` marking the service stopped: an
        #: ingestion call either lands strictly ahead of the ``_STOP``
        #: sentinel (and is processed) or raises — never silently dropped
        self._gate = threading.Lock()
        #: events discarded without processing: queued behind a feeder
        #: crash, or still queued at a ``stop(drain=False)``
        self.dropped_events = 0
        self._emissions_closed = False
        registry = engine.observability.registry
        self._queue_gauge = registry.gauge(
            "caesar_service_queue_depth",
            "Events buffered in the service ingestion queue",
        )
        self._watermark_gauge = registry.gauge(
            "caesar_service_watermark",
            "Stream time of the service's last committed transaction",
        )
        self._lag_gauge = registry.gauge(
            "caesar_service_watermark_lag",
            "Stream-time distance between the newest submitted event and "
            "the service watermark",
        )
        self._emit_latency = registry.histogram(
            "caesar_service_emit_seconds",
            "Wall seconds from submission to emission of the batch that "
            "produced a derived event",
        )
        self._feeder = threading.Thread(
            target=self._feed_loop, name="caesar-service-feeder", daemon=True
        )
        self._feeder.start()

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------

    def submit(self, event: Event, *, timeout: float | None = None) -> None:
        """Enqueue one event; blocks while the queue is full (backpressure).

        Raises the stored feeder error after a crash, and
        :class:`~repro.errors.RuntimeEngineError` after :meth:`stop` —
        a submission that does not raise is guaranteed to be processed
        (the check-then-enqueue step is serialized against ``stop``).
        """
        with self._gate:
            self._check_alive()
            self._queue.put((event, _time.perf_counter()), timeout=timeout)
            if self._error is not None:
                # the feeder died while (or just before) we enqueued: our
                # event would sit unprocessed forever.  Resolve the queue
                # (dropping it, counted) and surface the error instead of
                # silently losing the submission.
                self._fail_queued()
                raise self._error
        self._queue_gauge.set(self._queue.qsize())

    def extend(self, events: Iterable[Event]) -> None:
        """Enqueue many events (same backpressure per event)."""
        for event in events:
            self.submit(event)

    def _check_alive(self) -> None:
        if self._error is not None:
            raise self._error
        if self._stopping:
            raise RuntimeEngineError("service is stopped")

    # ------------------------------------------------------------------
    # online deployment
    # ------------------------------------------------------------------

    def deploy_query(self, query, *, timeout: float | None = None):
        """Deploy a query on the live engine; returns its activation
        watermark (stream time of the last transaction committed under the
        old model — the new query sees everything strictly after it)."""
        return self._control(
            lambda: self.engine.deploy_query(query), timeout=timeout
        )

    def retire_query(self, name: str, *, timeout: float | None = None):
        """Retire a query from the live engine; returns the watermark."""
        return self._control(
            lambda: self.engine.retire_query(name), timeout=timeout
        )

    def deploy_context(self, name: str, *, timeout: float | None = None):
        """Declare a new context type on the live engine."""
        return self._control(
            lambda: self.engine.deploy_context(name), timeout=timeout
        )

    def _control(self, apply: Callable[[], object], *, timeout=None):
        """Run a deployment op after everything already submitted commits.

        Never blocks forever: if the feeder thread dies, every queued op —
        including this one — is failed with the stored error (either by
        the dying feeder's :meth:`_fail_queued` sweep or by our own
        post-enqueue re-check, whichever observes the crash).
        """
        op = _Op(apply)
        with self._gate:
            self._check_alive()
            self._queue.put(op)
            if self._error is not None:
                self._fail_queued()
        if not op.done.wait(timeout):
            raise RuntimeEngineError("deployment operation timed out")
        if op.error is not None:
            raise op.error
        return op.result

    # ------------------------------------------------------------------
    # feeder thread
    # ------------------------------------------------------------------

    def _feed_loop(self) -> None:
        try:
            while True:
                item = self._queue.get()
                self._queue_gauge.set(self._queue.qsize())
                if item is _STOP:
                    self._emit(self.session.flush(), None)
                    return
                if isinstance(item, _Op):
                    self._run_op(item)
                    continue
                event, submitted = item
                self._emit(self.session.feed([event]), submitted)
                self._refresh_gauges()
        except BaseException as exc:  # surfaced on submit/stop/outputs
            # Order matters: the error must be visible before the queue is
            # swept, so an ingestion call racing this crash either sees the
            # error up front or finds its just-enqueued item resolved by
            # the sweep (or by its own post-enqueue re-check).
            self._error = exc
            self._fail_queued()
            self._finish_emissions(exc)

    def _fail_queued(self) -> None:
        """Resolve everything still queued after a feeder crash.

        Pending control ops are failed with the stored error (their
        waiters wake up instead of hanging forever); queued events are
        discarded and counted in :attr:`dropped_events`.  Draining also
        frees queue slots, unblocking producers parked in a full-queue
        ``put`` so their own error re-check can run.  Idempotent — the
        dying feeder and any number of racing producers may all sweep.
        """
        error = self._error
        while True:
            try:
                item = self._queue.get_nowait()
            except _queue.Empty:
                return
            if isinstance(item, _Op):
                item.error = error
                item.done.set()
            elif item is not _STOP:
                self.dropped_events += 1

    def _finish_emissions(self, error: BaseException | None) -> None:
        """Terminate the :meth:`outputs` iterator (once)."""
        if self._emitted is None or self._emissions_closed:
            return
        self._emissions_closed = True
        self._emitted.put(_DONE if error is None else _Finish(error))

    def _run_op(self, op: _Op) -> None:
        try:
            # close the frontier first: events submitted before the op
            # must commit under the pre-op model
            self._emit(self.session.flush(), None)
            op.apply()
            op.result = self.session.watermark
        except BaseException as exc:
            op.error = exc
        finally:
            op.done.set()

    def _emit(self, outputs: list[Event], submitted: float | None) -> None:
        if not outputs:
            return
        if submitted is not None:
            self._emit_latency.observe(_time.perf_counter() - submitted)
        for event in outputs:
            self.emitted_events += 1
            if self.on_emit is not None:
                self.on_emit(event)
            else:
                self._emitted.put(event)

    def _refresh_gauges(self) -> None:
        watermark = self.session.watermark
        newest = self.session.now
        if watermark is not None:
            self._watermark_gauge.set(float(watermark))
            if newest is not None:
                self._lag_gauge.set(float(newest) - float(watermark))

    # ------------------------------------------------------------------
    # consumption / lifecycle
    # ------------------------------------------------------------------

    @property
    def error(self) -> BaseException | None:
        """The feeder thread's stored crash, if any (read-only)."""
        return self._error

    @property
    def stopped(self) -> bool:
        """True once :meth:`stop` has been requested or has completed."""
        return self._stopping or self._report is not None

    @property
    def queue_depth(self) -> int:
        """Events and ops currently buffered in the ingestion queue."""
        return self._queue.qsize()

    def outputs(self) -> Iterator[Event]:
        """Iterate derived events as they are emitted.

        Terminates after :meth:`stop`; if the feeder thread died, raises
        its error instead of blocking forever.  Only available without an
        ``on_emit`` callback (one consumer owns the emission stream).
        """
        if self._emitted is None:
            raise RuntimeEngineError(
                "an on_emit callback consumes this service's emissions"
            )
        while True:
            item = self._emitted.get()
            if isinstance(item, _Finish):
                if item.error is not None:
                    raise item.error
                return
            yield item

    def stop(self, *, drain: bool = True) -> "EngineReport":
        """Stop the service and return the final report.

        ``drain=True`` (graceful, the SIGTERM path) processes everything
        already submitted; ``drain=False`` discards events still queued.
        Idempotent — repeated calls return the same report.
        """
        if self._report is not None:
            return self._report
        with self._gate:
            # under the gate: no submit/_control can pass its alive check
            # and enqueue behind the _STOP sentinel anymore
            self._stopping = True
        if not drain:
            try:
                while True:
                    item = self._queue.get_nowait()
                    if isinstance(item, _Op):
                        item.error = RuntimeEngineError("service stopped")
                        item.done.set()
                    elif item is not _STOP:
                        self.dropped_events += 1
            except _queue.Empty:
                pass
        if self._feeder.is_alive():
            self._queue.put(_STOP)
        self._feeder.join()
        self._queue_gauge.set(0)
        if self._error is not None:
            # the feeder's crash path already failed queued ops and
            # terminated the outputs iterator with this error; re-raising
            # here (every call, for idempotency) surfaces it to stoppers
            self._finish_emissions(self._error)
            raise self._error
        try:
            self._report = self.session.close()
        except BaseException as exc:
            # a crash in the final close must not strand the outputs()
            # consumer either
            self._error = exc
            self._finish_emissions(exc)
            raise
        self._finish_emissions(None)
        return self._report

    close = stop

    def __enter__(self) -> "EngineService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.stop()
            return
        try:
            self.stop(drain=False)
        except BaseException as stop_error:
            # the in-flight exception triggered this exit and must win;
            # a feeder error raised by stop() here would mask it.  The
            # suppressed error stays inspectable via the chained context
            # and keeps surfacing from later stop() calls.
            if stop_error is not exc:
                exc.__context__ = stop_error
