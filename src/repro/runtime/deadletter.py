"""Dead-letter queue for events the engine cannot (or must not) process.

Production CEP deployments never let a malformed event abort the stream:
events that fail schema validation, arrive later than the reorder bound, or
belong to a quarantined plan are diverted to a *dead-letter queue* — a
bounded buffer carrying, for each entry, the event itself, the reason it was
diverted, the error that caused it (if any) and the stream timestamp at
which it happened.  Operators drain the queue offline to diagnose producers
or replay repaired events.

The queue is bounded: beyond ``capacity`` the *oldest* entries are evicted
(the newest failures are the ones an operator investigates first) and every
eviction is counted in :attr:`DeadLetterQueue.dropped`, so accounting never
lies about loss.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.events.event import Event
from repro.events.timebase import TimePoint

#: An event violated its declared schema.
REASON_SCHEMA = "schema"
#: An event arrived later than the reorder buffer's bound.
REASON_LATE = "late"
#: An event was withheld from a plan quarantined by its circuit breaker.
REASON_QUARANTINED = "quarantined"
#: An event batch triggered a plan exception (the fault itself).
REASON_PLAN_FAULT = "plan_fault"
#: An event was dropped by the load shedder under overload.
REASON_SHED = "shed"


@dataclass(frozen=True)
class DeadLetterEntry:
    """One diverted event: what, why, and when (in stream time)."""

    event: Event
    reason: str
    error: str | None
    timestamp: TimePoint


class DeadLetterQueue:
    """A bounded queue of diverted events with per-reason accounting.

    Parameters
    ----------
    capacity:
        Maximum number of retained entries; older entries are evicted (and
        counted in :attr:`dropped`) once it is exceeded.  ``capacity`` only
        bounds retention — the per-reason counters keep counting.
    """

    def __init__(self, capacity: int = 1024):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: deque[DeadLetterEntry] = deque()
        #: guards the entry deque and counters: shard workers of the thread
        #: execution backend dead-letter concurrently into one queue
        self._lock = threading.Lock()
        #: total entries ever enqueued, by reason (evictions do not subtract)
        self.counts_by_reason: dict[str, int] = {}
        #: entries evicted because the queue was full
        self.dropped = 0
        #: evictions broken down by the *evicted* entry's reason, so loss
        #: of ``shed`` vs ``late`` vs ``quarantined`` entries stays
        #: distinguishable even after the queue wrapped
        self.dropped_by_reason: dict[str, int] = {}
        self._registry = None
        self._reason_counters: dict[str, object] = {}
        self._dropped_counter = None
        self._pending_gauge = None

    def bind_metrics(self, registry) -> None:
        """Mirror queue activity into a metrics registry.

        Reason counters are bumped at :meth:`put` time — inside whichever
        worker diverted the event, fanning in through the registry's worker
        delta — so :meth:`absorb` deliberately leaves them alone (the
        worker already counted its own puts).  The occupancy gauge tracks
        the *retained* entries of this queue instance.
        """
        self._registry = registry
        self._reason_counters = {}
        self._dropped_counter = registry.counter(
            "caesar_dead_letters_dropped_total",
            "Dead-letter entries evicted because the queue was full",
        )
        self._pending_gauge = registry.gauge(
            "caesar_dead_letters_pending",
            "Dead-letter entries currently retained",
        )

    def _reason_counter(self, reason: str):
        counter = self._reason_counters.get(reason)
        if counter is None:
            counter = self._registry.counter(
                "caesar_dead_letters_total",
                "Events diverted to the dead-letter queue",
                labels={"reason": reason},
            )
            self._reason_counters[reason] = counter
        return counter

    def put(
        self,
        event: Event,
        *,
        reason: str,
        error: Exception | str | None = None,
        timestamp: TimePoint | None = None,
    ) -> DeadLetterEntry:
        """Divert one event; returns the recorded entry."""
        entry = DeadLetterEntry(
            event=event,
            reason=reason,
            error=None if error is None else str(error),
            timestamp=event.timestamp if timestamp is None else timestamp,
        )
        with self._lock:
            self._entries.append(entry)
            self.counts_by_reason[reason] = (
                self.counts_by_reason.get(reason, 0) + 1
            )
            evicted = len(self._entries) > self.capacity
            if evicted:
                oldest = self._entries.popleft()
                self.dropped += 1
                self.dropped_by_reason[oldest.reason] = (
                    self.dropped_by_reason.get(oldest.reason, 0) + 1
                )
            pending = len(self._entries)
        if self._registry is not None:
            self._reason_counter(reason).inc()
            if evicted:
                self._dropped_counter.inc()
            self._pending_gauge.set(pending)
        return entry

    def absorb(
        self,
        entries: Iterable[DeadLetterEntry],
        *,
        dropped: int = 0,
        dropped_by_reason: dict[str, int] | None = None,
    ) -> None:
        """Merge entries recorded by a shard worker in another process.

        Unlike :meth:`put` the entries already carry their reason/error, so
        they are appended verbatim (still honouring the capacity bound) and
        the per-reason counters are bumped to match.  ``dropped`` /
        ``dropped_by_reason`` add evictions the worker's own bounded queue
        already performed.
        """
        evictions = 0
        with self._lock:
            for entry in entries:
                self._entries.append(entry)
                self.counts_by_reason[entry.reason] = (
                    self.counts_by_reason.get(entry.reason, 0) + 1
                )
                if len(self._entries) > self.capacity:
                    oldest = self._entries.popleft()
                    self.dropped += 1
                    self.dropped_by_reason[oldest.reason] = (
                        self.dropped_by_reason.get(oldest.reason, 0) + 1
                    )
                    evictions += 1
            self.dropped += dropped
            for reason, count in (dropped_by_reason or {}).items():
                self.dropped_by_reason[reason] = (
                    self.dropped_by_reason.get(reason, 0) + count
                )
            pending = len(self._entries)
        if self._registry is not None:
            # The worker that recorded these entries already counted them
            # (its registry delta fans in); only absorb-time evictions are
            # new activity of *this* side.
            if evictions:
                self._dropped_counter.inc(evictions)
            self._pending_gauge.set(pending)

    def record_late(self, event: Event) -> DeadLetterEntry:
        """Divert a too-late event (:data:`REASON_LATE`).

        Signature-compatible with :class:`~repro.runtime.reorder.ReorderBuffer`'s
        ``on_late`` callback, so a buffer can feed the queue directly::

            buffer = ReorderBuffer(max_delay=60, on_late=dlq.record_late)
        """
        return self.put(
            event,
            reason=REASON_LATE,
            error=f"event at t={event.timestamp} arrived after the reorder bound",
        )

    # ------------------------------------------------------------------
    # inspection / draining
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[DeadLetterEntry]:
        return iter(self._entries)

    @property
    def total(self) -> int:
        """Total events ever dead-lettered (including later-evicted ones)."""
        return sum(self.counts_by_reason.values())

    def entries(self, *, reason: str | None = None) -> list[DeadLetterEntry]:
        """Retained entries, optionally restricted to one reason."""
        if reason is None:
            return list(self._entries)
        return [e for e in self._entries if e.reason == reason]

    def drain(self) -> list[DeadLetterEntry]:
        """Remove and return all retained entries (counters are kept)."""
        drained = list(self._entries)
        self._entries.clear()
        if self._pending_gauge is not None:
            self._pending_gauge.set(0)
        return drained

    def summary(self) -> dict:
        """A JSON-friendly accounting snapshot."""
        return {
            "retained": len(self._entries),
            "dropped": self.dropped,
            "dropped_by_reason": dict(self.dropped_by_reason),
            "by_reason": dict(self.counts_by_reason),
        }
