"""Sharded parallel execution backends (Section 6 scaled out).

CAESAR keeps a context bit vector and plan instances *per stream partition*
and partitions are semantically independent — the sharding lever the paper's
runtime never pulls.  An :class:`ExecutionBackend` decides how the stream
transactions of one timestamp are executed:

:class:`SerialBackend`
    One after the other on the calling thread — the reference semantics.

:class:`ThreadPoolBackend`
    All partitions' transactions for a timestamp run concurrently on a pool
    of shard worker threads with **shard affinity**: a partition is pinned
    to one worker for the whole run, so its window store, routers, garbage
    collector and context history stay worker-local and lock-free.

:class:`ProcessPoolBackend`
    The same sharding across a **persistent pool** of forked worker
    processes (one engine state copy per worker, copy-on-write, spawned
    once per engine and reused across runs).  Events cross the process
    boundary as columnar :class:`~repro.events.batch.EventBatch` frames
    written into per-worker ``multiprocessing.shared_memory`` rings, with
    per-batch pipe pickling as the fallback; per-partition counters,
    windows and supervision state come back as end-of-run deltas merged
    into the parent engine.

All backends merge each timestamp's outputs **deterministically** in the
scheduler's transaction order — the distributor's partition order, itself
fixed by the stream — and per-partition derivations keep their generation
order, so serial and parallel runs produce identical
:class:`~repro.runtime.engine.EngineReport` outputs and counters.

The backend for an engine is chosen with the ``backend=`` constructor
argument or the ``CAESAR_BACKEND`` environment variable (``serial`` |
``thread`` | ``process``).
"""

from __future__ import annotations

import os
import pickle
import queue
import threading
import weakref
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.errors import RuntimeEngineError, UnknownBackendError
from repro.events.batch import EventBatch, TypeDirectory
from repro.events.event import Event
from repro.events.timebase import TimePoint
from repro.runtime.transactions import StreamTransaction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.engine import CaesarEngine

#: Environment variable consulted when an engine is built without an
#: explicit backend.
BACKEND_ENV_VAR = "CAESAR_BACKEND"


@dataclass
class RunTotals:
    """Aggregated per-partition state of one finished run.

    For backends whose partition runtimes live in the engine process this is
    read straight off the engine; the process backend assembles it from the
    summaries its shard workers send back.
    """

    cost_units: float = 0.0
    windows_by_partition: dict = field(default_factory=dict)
    suppressed_batches: int = 0
    routed_batches: int = 0
    interest_suppressed_batches: int = 0
    gc_collected: int = 0
    history_discards: int = 0
    #: SEQ matches folded into running summaries (online aggregation)
    matches_aggregated: int = 0
    #: SEQ matches enumerated then aggregated (materialize oracle)
    matches_materialized: int = 0
    cost_by_context: dict[str, float] = field(default_factory=dict)
    # -- transport diagnostics (process backend only; excluded from the
    # -- cross-backend parity projection) --------------------------------
    transport_bytes_out: int = 0
    transport_bytes_in: int = 0
    batches_shm: int = 0
    batches_pickled_fallback: int = 0


class ExecutionBackend:
    """How the stream transactions of one timestamp get executed.

    The engine drives the lifecycle: ``begin_run`` → (``execute`` per
    timestamp) → ``collect_totals`` → ``end_run`` (always, also on error).
    ``local_state`` tells the engine whether partition runtimes (and thus
    cost accounting and checkpointable state) live in the engine's own
    process.
    """

    name = "abstract"
    #: True when partition runtimes are shared with the engine process.
    local_state = True
    #: True when this instance was chosen by the ``CAESAR_BACKEND``
    #: environment variable rather than an explicit spec — such backends
    #: may transparently fall back via :meth:`for_engine` instead of
    #: rejecting an incompatible engine the caller never asked to shard.
    _from_env = False

    def for_engine(self, engine: "CaesarEngine") -> "ExecutionBackend":
        """The backend that should actually drive ``engine``'s run.

        Default: this instance.  Env-selected backends with engine
        compatibility constraints override this to substitute a fallback.
        """
        return self

    def begin_run(self, engine: "CaesarEngine") -> None:
        """Prepare for a run (spawn workers, reset shard maps)."""

    def execute(
        self,
        t: TimePoint,
        transactions: list[StreamTransaction],
        engine: "CaesarEngine",
    ) -> list[list[Event]]:
        """Execute one timestamp's transactions; outputs aligned with input."""
        raise NotImplementedError

    @property
    def last_cost_delta(self) -> float:
        """Cost units spent by the last :meth:`execute` (non-local backends)."""
        return 0.0

    @property
    def last_shed_feedback(self):
        """Per-partition shed feedback gathered by the last :meth:`execute`.

        Only the process backend (whose partition state lives in workers)
        returns anything; backends with local state let the admission
        controller read the partitions directly.
        """
        return None

    def collect_totals(self, engine: "CaesarEngine") -> RunTotals | None:
        """Merged run totals, or None when the engine can read its own."""
        return None

    def end_run(self, engine: "CaesarEngine") -> None:
        """Tear down after a run (join workers).  Must be idempotent."""

    def close(self) -> None:
        """Release resources that outlive a run (persistent worker pools).

        Idempotent; a no-op for backends that hold none.
        """


class SerialBackend(ExecutionBackend):
    """Today's behaviour: partitions execute one after the other."""

    name = "serial"

    def execute(self, t, transactions, engine):
        return [
            engine._execute_transaction(transaction)
            for transaction in transactions
        ]


class _ShardMap:
    """Stable partition→shard assignment (round-robin on first sight)."""

    def __init__(self, shards: int):
        self.shards = shards
        self._assignment: dict = {}

    def shard_of(self, key) -> int:
        shard = self._assignment.get(key)
        if shard is None:
            shard = len(self._assignment) % self.shards
            self._assignment[key] = shard
        return shard

    def group(
        self, transactions: list[StreamTransaction]
    ) -> dict[int, list[tuple[int, StreamTransaction]]]:
        """Transactions grouped by shard, tagged with their merge index."""
        groups: dict[int, list[tuple[int, StreamTransaction]]] = {}
        for index, transaction in enumerate(transactions):
            shard = self.shard_of(transaction.partition)
            groups.setdefault(shard, []).append((index, transaction))
        return groups


#: Environment variable overriding the default worker count for parallel
#: backends built without an explicit ``max_workers`` (e.g. the CI matrix
#: pinning ``CAESAR_WORKERS=2`` on small runners).
WORKERS_ENV_VAR = "CAESAR_WORKERS"


def default_worker_count() -> int:
    """Worker default: ``CAESAR_WORKERS`` if set, else cores clamped to 2..8."""
    override = os.environ.get(WORKERS_ENV_VAR, "").strip()
    if override:
        try:
            workers = int(override)
        except ValueError:
            raise RuntimeEngineError(
                f"{WORKERS_ENV_VAR} must be an integer >= 1, got {override!r}"
            ) from None
        if workers < 1:
            raise RuntimeEngineError(
                f"{WORKERS_ENV_VAR} must be an integer >= 1, got {override!r}"
            )
        return workers
    return max(2, min(8, os.cpu_count() or 1))


class ThreadPoolBackend(ExecutionBackend):
    """Shard-affine worker threads sharing the engine's address space.

    A partition's runtime is only ever touched by its pinned worker, so no
    per-partition locking is needed; the engine-level structures workers do
    share (the dead-letter queue, supervision counters) are individually
    thread-safe.  The fan-in barrier at the end of each timestamp preserves
    the paper's correctness condition: all transactions of time ``t`` commit
    before any transaction of time ``t+1`` starts.
    """

    name = "thread"

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers or default_worker_count()
        self._queues: list[queue.Queue] = []
        self._threads: list[threading.Thread] = []
        self._shard_map: _ShardMap | None = None

    def begin_run(self, engine):
        self._shard_map = _ShardMap(self.max_workers)
        self._queues = [queue.Queue() for _ in range(self.max_workers)]
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(shard_queue,),
                name=f"caesar-shard-{index}",
                daemon=True,
            )
            for index, shard_queue in enumerate(self._queues)
        ]
        for thread in self._threads:
            thread.start()

    @staticmethod
    def _worker_loop(shard_queue: queue.Queue) -> None:
        while True:
            job = shard_queue.get()
            if job is None:
                return
            execute, items, results, errors, done = job
            try:
                for index, transaction in items:
                    try:
                        results[index] = execute(transaction)
                    except BaseException as exc:  # noqa: BLE001 - forwarded
                        errors[index] = exc
                        break  # a failing partition aborts its shard's lane
            finally:
                done.set()

    def execute(self, t, transactions, engine):
        if not transactions:
            return []
        # Partition runtimes are created on the scheduler thread, in
        # transaction order, before any worker touches them: creation stays
        # deterministic and the per-partition state needs no lock.
        for transaction in transactions:
            engine._partition(transaction.partition)
        if len(transactions) == 1:
            return [engine._execute_transaction(transactions[0])]
        results: list = [None] * len(transactions)
        errors: dict[int, BaseException] = {}
        barriers: list[threading.Event] = []
        for shard, items in self._shard_map.group(transactions).items():
            done = threading.Event()
            barriers.append(done)
            self._queues[shard].put(
                (engine._execute_transaction, items, results, errors, done)
            )
        for done in barriers:
            done.wait()
        if errors:
            # Deterministic error propagation: surface the failure of the
            # earliest transaction in merge order, as a serial run would.
            raise errors[min(errors)]
        return results

    def end_run(self, engine):
        for shard_queue in self._queues:
            shard_queue.put(None)
        for thread in self._threads:
            thread.join()
        self._queues = []
        self._threads = []


# ---------------------------------------------------------------------------
# process backend
# ---------------------------------------------------------------------------


def _partition_summaries(engine: "CaesarEngine") -> dict:
    """Picklable per-partition state for the fan-in merge (worker side)."""
    summaries = {}
    for key, runtime in engine._partitions.items():
        cost_by_context: dict[str, float] = {}
        for router in (runtime.deriving_router, runtime.processing_router):
            for name, cost in router.cost_by_context.items():
                cost_by_context[name] = cost_by_context.get(name, 0.0) + cost
        summaries[key] = {
            "windows": runtime.store.all_windows(),
            "cost_units": runtime.cost_units(),
            "suppressed": (
                runtime.deriving_router.batches_suppressed
                + runtime.processing_router.batches_suppressed
            ),
            "routed": (
                runtime.deriving_router.batches_routed
                + runtime.processing_router.batches_routed
            ),
            "uninterested": (
                runtime.deriving_router.batches_uninterested
                + runtime.processing_router.batches_uninterested
            ),
            "gc_collected": runtime.gc.collected,
            "history_discards": runtime.history.discards,
            "aggregation_counts": runtime.aggregation_counts(),
            "cost_by_context": cost_by_context,
        }
    return summaries


def _unpack_events(descriptor, ring, directory: TypeDirectory):
    """Materialize one transaction's events from its wire descriptor."""
    if descriptor[0] == "shm":
        _tag, offset, length = descriptor
        return EventBatch.decode(ring[offset : offset + length], directory)
    return descriptor[1]  # "pkl": the events travelled in the message


def _process_worker_main(conn, engine: "CaesarEngine", shm) -> None:
    """Request loop of one forked shard worker.

    The worker is persistent: ``finish`` reports the run's summary but
    keeps the loop alive, ``begin`` resets run state for the next run,
    ``stop`` (or a closed pipe) exits.  Messages travel as explicit pickle
    frames (``send_bytes``/``recv_bytes``) so the parent can meter
    transport bytes; event batches normally arrive as offsets into the
    inherited shared-memory ring.  The ring is owned (closed and
    unlinked) by the parent — the worker only ever reads it.
    """
    directory = TypeDirectory()
    ring = memoryview(shm.buf) if shm is not None else None
    baseline = engine._worker_state_baseline()
    while True:
        try:
            message = pickle.loads(conn.recv_bytes())
        except EOFError:
            return
        kind = message[0]
        if kind == "exec":
            _, t, parts = message
            replies = []
            cost_before = engine._total_cost_units()
            try:
                for index, key, descriptor in parts:
                    transaction = StreamTransaction(
                        partition=key,
                        timestamp=t,
                        events=_unpack_events(descriptor, ring, directory),
                    )
                    outputs = engine._execute_transaction(transaction)
                    replies.append((index, outputs, transaction.operations))
            except BaseException as exc:  # noqa: BLE001 - forwarded
                try:
                    payload = pickle.dumps(
                        ("error", exc), protocol=pickle.HIGHEST_PROTOCOL
                    )
                except Exception:
                    payload = pickle.dumps(
                        ("error", RuntimeEngineError(repr(exc))),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                conn.send_bytes(payload)
                continue
            cost_delta = engine._total_cost_units() - cost_before
            conn.send_bytes(
                pickle.dumps(
                    ("ok", replies, cost_delta, engine._shed_feedback()),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            )
        elif kind == "finish":
            conn.send_bytes(
                pickle.dumps(
                    (
                        "summary",
                        _partition_summaries(engine),
                        engine._worker_state_summary(baseline),
                    ),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            )
        elif kind == "begin":
            # Next run on a reused pool: same reset the parent performed,
            # and a fresh observability baseline for the new run's deltas.
            engine.reset_run_state()
            baseline = engine._worker_state_baseline()
        else:  # "stop"
            conn.close()
            return


class _WorkerHandle:
    """One pool worker: pipe, process, shm ring, per-link type directory."""

    __slots__ = ("conn", "process", "shm", "directory")

    def __init__(self, conn, process, shm):
        self.conn = conn
        self.process = process
        self.shm = shm
        self.directory = TypeDirectory()


class _PoolState:
    """Lifecycle state of one spawned worker pool.

    Kept separate from the backend so a ``weakref.finalize`` callback can
    tear the pool down without keeping the backend (and the engine it
    forked) alive.
    """

    __slots__ = ("workers", "engine_id", "broken", "closed")

    def __init__(self, workers: list[_WorkerHandle], engine_id: int):
        self.workers = workers
        self.engine_id = engine_id
        #: a worker errored or a pipe broke: state may have diverged, the
        #: pool must not serve another run
        self.broken = False
        self.closed = False


def _teardown_pool(pool: _PoolState) -> None:
    """Stop a pool's workers and release its rings.  Idempotent."""
    if pool.closed:
        return
    pool.closed = True
    stop = pickle.dumps(("stop",), protocol=pickle.HIGHEST_PROTOCOL)
    for handle in pool.workers:
        try:
            handle.conn.send_bytes(stop)
        except (BrokenPipeError, OSError):
            pass
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover - defensive
            pass
    for handle in pool.workers:
        handle.process.join(timeout=10)
        if handle.process.is_alive():  # pragma: no cover - defensive
            handle.process.terminate()
            handle.process.join(timeout=10)
        if handle.shm is not None:
            # The parent owns the ring; workers only ever attach to the
            # inherited mapping, so close+unlink here reclaims it fully.
            try:
                handle.shm.close()
                handle.shm.unlink()
            except OSError:  # pragma: no cover - defensive
                pass


#: Default per-worker shared-memory ring size (1 MiB): comfortably holds
#: any realistic timestamp's batches; oversized batches fall back to pipe
#: pickling per batch, never fail.
DEFAULT_RING_BYTES = 1 << 20


class ProcessPoolBackend(ExecutionBackend):
    """Shard-affine persistent worker processes (POSIX only).

    Workers are forked **once per engine** — on the first run, or after
    :meth:`close` — inheriting the engine's pristine state copy-on-write;
    from then on each worker owns its shard's partitions exclusively and
    the pool is reused across runs (``begin`` resets worker run state
    exactly as :meth:`~repro.runtime.engine.CaesarEngine.reset_run_state`
    does in the parent).  Each worker gets a shared-memory ring; the
    parent encodes every timestamp's events into columnar
    :class:`~repro.events.batch.EventBatch` frames written straight into
    the ring, and ships only the (offset, length) descriptors over the
    pipe.  Batches that do not fit (or when shared memory is unavailable)
    fall back to per-batch pipe pickling — slower, never wrong.  Derived
    events, per-partition counters and supervision state come back as
    deltas at the end of the run, which the parent engine absorbs so
    reports look exactly as they would after a serial run.

    Checkpoint autosave (``recovery=``) and ``on_context_transition``
    callbacks need the partition state in the engine process and are
    rejected up front — unless the backend came from the
    ``CAESAR_BACKEND`` environment variable, in which case
    :meth:`for_engine` silently substitutes a serial backend for the
    incompatible engine (the caller never asked this engine to shard).
    """

    name = "process"
    local_state = False

    def __init__(
        self,
        max_workers: int | None = None,
        *,
        ring_bytes: int = DEFAULT_RING_BYTES,
    ):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers or default_worker_count()
        self.ring_bytes = ring_bytes
        self._pool: _PoolState | None = None
        self._finalizer = None
        self._serial_fallback: SerialBackend | None = None
        self._shard_map: _ShardMap | None = None
        self._partition_order: list = []
        self._cost_delta = 0.0
        self._shed_feedback: dict = {}
        self._bytes_out = 0
        self._bytes_in = 0
        self._batches_shm = 0
        self._batches_pkl = 0

    # -- engine compatibility -------------------------------------------

    @staticmethod
    def _incompatibility(engine) -> str | None:
        """Why ``engine`` cannot run on this backend, or None if it can."""
        if getattr(engine, "recovery", None) is not None:
            return (
                "checkpoint autosave needs partition state in the engine "
                "process; use SerialBackend or ThreadPoolBackend with a "
                "RecoveryManager"
            )
        if engine.on_context_transition is not None:
            return (
                "on_context_transition callbacks fire inside worker "
                "processes and would be lost; use SerialBackend or "
                "ThreadPoolBackend"
            )
        return None

    def for_engine(self, engine):
        if self._from_env and self._incompatibility(engine) is not None:
            # A fleet-wide CAESAR_BACKEND=process must not break engines
            # that are structurally serial (recovery, transition hooks).
            fallback = self._serial_fallback
            if fallback is None:
                fallback = self._serial_fallback = SerialBackend()
            return fallback
        return self

    # -- pool lifecycle --------------------------------------------------

    def _spawn(self, engine) -> _PoolState:
        import multiprocessing

        context = multiprocessing.get_context("fork")
        workers: list[_WorkerHandle] = []
        for _ in range(self.max_workers):
            shm = self._create_ring()
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_process_worker_main,
                args=(child_conn, engine, shm),
                daemon=True,
            )
            process.start()
            child_conn.close()
            workers.append(_WorkerHandle(parent_conn, process, shm))
        pool = _PoolState(workers, id(engine))
        self._pool = pool
        # GC of the backend must not leak worker processes or /dev/shm
        # segments; the finalizer holds only the pool state, not self.
        self._finalizer = weakref.finalize(self, _teardown_pool, pool)
        return pool

    def _create_ring(self):
        if self.ring_bytes < 64:
            return None  # degenerate ring: force the pickle fallback
        try:
            from multiprocessing import shared_memory

            return shared_memory.SharedMemory(
                create=True, size=self.ring_bytes
            )
        except (ImportError, OSError):  # pragma: no cover - platform
            return None

    def _pool_for(self, engine) -> _PoolState:
        pool = self._pool
        if (
            pool is not None
            and not pool.broken
            and not pool.closed
            and pool.engine_id == id(engine)
            and all(h.process.is_alive() for h in pool.workers)
            and engine._worker_pool_reusable()
        ):
            # Warm pool: same engine, clean slate — tell workers to reset
            # their run state instead of paying a respawn.
            begin = pickle.dumps(("begin",), protocol=pickle.HIGHEST_PROTOCOL)
            for handle in pool.workers:
                handle.conn.send_bytes(begin)
                self._bytes_out += len(begin)
            return pool
        self._teardown()
        return self._spawn(engine)

    def _teardown(self) -> None:
        pool = self._pool
        if pool is not None:
            _teardown_pool(pool)
            self._pool = None
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None

    def close(self) -> None:
        self._teardown()

    @property
    def worker_pids(self) -> tuple[int, ...]:
        """PIDs of the live pool workers (empty when no pool is up)."""
        pool = self._pool
        if pool is None or pool.closed:
            return ()
        return tuple(h.process.pid for h in pool.workers)

    # -- run lifecycle ---------------------------------------------------

    def begin_run(self, engine):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeEngineError(
                "ProcessPoolBackend requires the fork start method "
                "(POSIX); use ThreadPoolBackend on this platform"
            )
        problem = self._incompatibility(engine)
        if problem is not None:
            raise RuntimeEngineError(problem)
        self._shard_map = _ShardMap(self.max_workers)
        self._partition_order = []
        self._cost_delta = 0.0
        self._shed_feedback = {}
        self._bytes_out = 0
        self._bytes_in = 0
        self._batches_shm = 0
        self._batches_pkl = 0
        self._pool_for(engine)

    def _send(self, handle: _WorkerHandle, message) -> None:
        payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        handle.conn.send_bytes(payload)
        self._bytes_out += len(payload)

    def _recv(self, handle: _WorkerHandle):
        payload = handle.conn.recv_bytes()
        self._bytes_in += len(payload)
        return pickle.loads(payload)

    def _pack(self, handle: _WorkerHandle, events, offset: int):
        """Place one batch: shm descriptor if it fits, else pipe pickle.

        Returns ``(descriptor, next_offset)``.  The per-link type
        directory is committed only after a successful ring placement, so
        a fallback batch never advances type ids the decoder won't see.
        """
        shm = handle.shm
        if shm is not None:
            try:
                batch = EventBatch.encode(events, handle.directory)
            except Exception:  # exotic unpicklable-in-parts payloads
                batch = None
            if batch is not None:
                start = (offset + 7) & ~7
                end = start + len(batch.data)
                if end <= shm.size:
                    shm.buf[start:end] = batch.data
                    batch.commit()
                    self._batches_shm += 1
                    self._bytes_out += len(batch.data)
                    return ("shm", start, len(batch.data)), end
        self._batches_pkl += 1
        return ("pkl", list(events)), offset

    def execute(self, t, transactions, engine):
        self._cost_delta = 0.0
        self._shed_feedback = {}
        if not transactions:
            return []
        pool = self._pool
        if pool is None or pool.closed or pool.broken:
            raise RuntimeEngineError(
                "process backend has no live worker pool (begin_run not "
                "called, or the pool failed earlier in this run)"
            )
        for transaction in transactions:
            if transaction.partition not in self._shard_map._assignment:
                self._partition_order.append(transaction.partition)
        groups = self._shard_map.group(transactions)
        try:
            for shard, items in groups.items():
                handle = pool.workers[shard]
                # The ring is reused from offset 0 every timestamp: the
                # worker materializes all events before replying, and the
                # parent never writes again before that reply arrives.
                offset = 0
                parts = []
                for index, transaction in items:
                    descriptor, offset = self._pack(
                        handle, transaction.events, offset
                    )
                    parts.append((index, transaction.partition, descriptor))
                self._send(handle, ("exec", t, parts))
            results: list = [None] * len(transactions)
            errors: dict[int, BaseException] = {}
            for shard, items in groups.items():
                reply = self._recv(pool.workers[shard])
                if reply[0] == "error":
                    errors[items[0][0]] = reply[1]
                    continue
                _, replies, cost_delta, shed_feedback = reply
                self._cost_delta += cost_delta
                if shed_feedback:
                    self._shed_feedback.update(shed_feedback)
                for index, outputs, operations in replies:
                    results[index] = outputs
                    # The worker recorded the context reads/writes; adopt
                    # them so the parent's transaction log verifies the
                    # schedule.
                    transactions[index].operations = operations
        except (EOFError, BrokenPipeError, OSError) as exc:
            pool.broken = True
            raise RuntimeEngineError(
                f"process backend worker communication failed: {exc!r}"
            ) from exc
        if errors:
            # A worker that raised may hold diverged partition state (and
            # a type directory that stopped tracking the parent's): the
            # pool cannot serve another run.
            pool.broken = True
            raise errors[min(errors)]
        return results

    @property
    def last_cost_delta(self) -> float:
        return self._cost_delta

    @property
    def last_shed_feedback(self):
        return self._shed_feedback or None

    def collect_totals(self, engine):
        pool = self._pool
        summaries: dict = {}
        try:
            for handle in pool.workers:
                self._send(handle, ("finish",))
            for handle in pool.workers:
                _tag, partition_summaries, worker_state = self._recv(handle)
                summaries.update(partition_summaries)
                engine._absorb_worker_state(worker_state)
        except (EOFError, BrokenPipeError, OSError) as exc:
            pool.broken = True
            raise RuntimeEngineError(
                f"process backend worker communication failed: {exc!r}"
            ) from exc
        totals = RunTotals(
            transport_bytes_out=self._bytes_out,
            transport_bytes_in=self._bytes_in,
            batches_shm=self._batches_shm,
            batches_pickled_fallback=self._batches_pkl,
        )
        for key in self._partition_order:
            summary = summaries.get(key)
            if summary is None:  # pragma: no cover - defensive
                continue
            totals.cost_units += summary["cost_units"]
            totals.windows_by_partition[key] = summary["windows"]
            totals.suppressed_batches += summary["suppressed"]
            totals.routed_batches += summary["routed"]
            totals.interest_suppressed_batches += summary["uninterested"]
            totals.gc_collected += summary["gc_collected"]
            totals.history_discards += summary["history_discards"]
            aggregated, materialized = summary.get(
                "aggregation_counts", (0, 0)
            )
            totals.matches_aggregated += aggregated
            totals.matches_materialized += materialized
            for name, cost in summary["cost_by_context"].items():
                totals.cost_by_context[name] = (
                    totals.cost_by_context.get(name, 0.0) + cost
                )
        return totals

    def end_run(self, engine):
        # The pool persists across runs; only a failed pool is scrapped
        # here.  close() (or engine.close()/GC) releases a healthy one.
        pool = self._pool
        if pool is not None and pool.broken:
            self._teardown()


#: Registry used by :func:`resolve_backend` (and the ``CAESAR_BACKEND``
#: environment variable).
BACKENDS: dict[str, Callable[[], ExecutionBackend]] = {
    "serial": SerialBackend,
    "thread": ThreadPoolBackend,
    "threads": ThreadPoolBackend,
    "process": ProcessPoolBackend,
    "processes": ProcessPoolBackend,
}


def resolve_backend(
    spec: "ExecutionBackend | str | None",
) -> ExecutionBackend:
    """Turn a backend spec into an instance.

    ``None`` consults the ``CAESAR_BACKEND`` environment variable (unset or
    empty means serial); strings are looked up in :data:`BACKENDS`;
    instances pass through (each engine should get its own instance — a
    backend holds per-run worker state).  An unknown name — explicit or
    from the environment — raises :class:`~repro.errors.UnknownBackendError`
    (a ``ValueError``) listing the valid names; it is never silently
    replaced by a fallback.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    source = "backend spec"
    from_env = False
    if spec is None:
        spec = os.environ.get(BACKEND_ENV_VAR, "") or "serial"
        source = f"{BACKEND_ENV_VAR} environment variable"
        from_env = True
    factory = BACKENDS.get(str(spec).strip().lower())
    if factory is None:
        raise UnknownBackendError(
            f"unknown execution backend {spec!r} (from {source}); "
            f"choose one of {sorted(set(BACKENDS))}"
        )
    backend = factory()
    backend._from_env = from_env
    return backend
