"""Sharded parallel execution backends (Section 6 scaled out).

CAESAR keeps a context bit vector and plan instances *per stream partition*
and partitions are semantically independent — the sharding lever the paper's
runtime never pulls.  An :class:`ExecutionBackend` decides how the stream
transactions of one timestamp are executed:

:class:`SerialBackend`
    One after the other on the calling thread — the reference semantics.

:class:`ThreadPoolBackend`
    All partitions' transactions for a timestamp run concurrently on a pool
    of shard worker threads with **shard affinity**: a partition is pinned
    to one worker for the whole run, so its window store, routers, garbage
    collector and context history stay worker-local and lock-free.

:class:`ProcessPoolBackend`
    The same sharding across forked worker processes (one engine state copy
    per worker, copy-on-write).  Events cross the process boundary by
    pickling; per-partition counters, windows and supervision state are
    merged back into the parent engine at the end of the run.

All backends merge each timestamp's outputs **deterministically** in the
scheduler's transaction order — the distributor's partition order, itself
fixed by the stream — and per-partition derivations keep their generation
order, so serial and parallel runs produce identical
:class:`~repro.runtime.engine.EngineReport` outputs and counters.

The backend for an engine is chosen with the ``backend=`` constructor
argument or the ``CAESAR_BACKEND`` environment variable (``serial`` |
``thread`` | ``process``).
"""

from __future__ import annotations

import os
import queue
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.errors import RuntimeEngineError, UnknownBackendError
from repro.events.event import Event
from repro.events.timebase import TimePoint
from repro.runtime.transactions import StreamTransaction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.engine import CaesarEngine

#: Environment variable consulted when an engine is built without an
#: explicit backend.
BACKEND_ENV_VAR = "CAESAR_BACKEND"


@dataclass
class RunTotals:
    """Aggregated per-partition state of one finished run.

    For backends whose partition runtimes live in the engine process this is
    read straight off the engine; the process backend assembles it from the
    summaries its shard workers send back.
    """

    cost_units: float = 0.0
    windows_by_partition: dict = field(default_factory=dict)
    suppressed_batches: int = 0
    routed_batches: int = 0
    interest_suppressed_batches: int = 0
    gc_collected: int = 0
    history_discards: int = 0
    cost_by_context: dict[str, float] = field(default_factory=dict)


class ExecutionBackend:
    """How the stream transactions of one timestamp get executed.

    The engine drives the lifecycle: ``begin_run`` → (``execute`` per
    timestamp) → ``collect_totals`` → ``end_run`` (always, also on error).
    ``local_state`` tells the engine whether partition runtimes (and thus
    cost accounting and checkpointable state) live in the engine's own
    process.
    """

    name = "abstract"
    #: True when partition runtimes are shared with the engine process.
    local_state = True

    def begin_run(self, engine: "CaesarEngine") -> None:
        """Prepare for a run (spawn workers, reset shard maps)."""

    def execute(
        self,
        t: TimePoint,
        transactions: list[StreamTransaction],
        engine: "CaesarEngine",
    ) -> list[list[Event]]:
        """Execute one timestamp's transactions; outputs aligned with input."""
        raise NotImplementedError

    @property
    def last_cost_delta(self) -> float:
        """Cost units spent by the last :meth:`execute` (non-local backends)."""
        return 0.0

    def collect_totals(self, engine: "CaesarEngine") -> RunTotals | None:
        """Merged run totals, or None when the engine can read its own."""
        return None

    def end_run(self, engine: "CaesarEngine") -> None:
        """Tear down after a run (join workers).  Must be idempotent."""


class SerialBackend(ExecutionBackend):
    """Today's behaviour: partitions execute one after the other."""

    name = "serial"

    def execute(self, t, transactions, engine):
        return [
            engine._execute_transaction(transaction)
            for transaction in transactions
        ]


class _ShardMap:
    """Stable partition→shard assignment (round-robin on first sight)."""

    def __init__(self, shards: int):
        self.shards = shards
        self._assignment: dict = {}

    def shard_of(self, key) -> int:
        shard = self._assignment.get(key)
        if shard is None:
            shard = len(self._assignment) % self.shards
            self._assignment[key] = shard
        return shard

    def group(
        self, transactions: list[StreamTransaction]
    ) -> dict[int, list[tuple[int, StreamTransaction]]]:
        """Transactions grouped by shard, tagged with their merge index."""
        groups: dict[int, list[tuple[int, StreamTransaction]]] = {}
        for index, transaction in enumerate(transactions):
            shard = self.shard_of(transaction.partition)
            groups.setdefault(shard, []).append((index, transaction))
        return groups


def default_worker_count() -> int:
    """Worker default: the machine's cores, at least 2, at most 8."""
    return max(2, min(8, os.cpu_count() or 1))


class ThreadPoolBackend(ExecutionBackend):
    """Shard-affine worker threads sharing the engine's address space.

    A partition's runtime is only ever touched by its pinned worker, so no
    per-partition locking is needed; the engine-level structures workers do
    share (the dead-letter queue, supervision counters) are individually
    thread-safe.  The fan-in barrier at the end of each timestamp preserves
    the paper's correctness condition: all transactions of time ``t`` commit
    before any transaction of time ``t+1`` starts.
    """

    name = "thread"

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers or default_worker_count()
        self._queues: list[queue.Queue] = []
        self._threads: list[threading.Thread] = []
        self._shard_map: _ShardMap | None = None

    def begin_run(self, engine):
        self._shard_map = _ShardMap(self.max_workers)
        self._queues = [queue.Queue() for _ in range(self.max_workers)]
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(shard_queue,),
                name=f"caesar-shard-{index}",
                daemon=True,
            )
            for index, shard_queue in enumerate(self._queues)
        ]
        for thread in self._threads:
            thread.start()

    @staticmethod
    def _worker_loop(shard_queue: queue.Queue) -> None:
        while True:
            job = shard_queue.get()
            if job is None:
                return
            execute, items, results, errors, done = job
            try:
                for index, transaction in items:
                    try:
                        results[index] = execute(transaction)
                    except BaseException as exc:  # noqa: BLE001 - forwarded
                        errors[index] = exc
                        break  # a failing partition aborts its shard's lane
            finally:
                done.set()

    def execute(self, t, transactions, engine):
        if not transactions:
            return []
        # Partition runtimes are created on the scheduler thread, in
        # transaction order, before any worker touches them: creation stays
        # deterministic and the per-partition state needs no lock.
        for transaction in transactions:
            engine._partition(transaction.partition)
        if len(transactions) == 1:
            return [engine._execute_transaction(transactions[0])]
        results: list = [None] * len(transactions)
        errors: dict[int, BaseException] = {}
        barriers: list[threading.Event] = []
        for shard, items in self._shard_map.group(transactions).items():
            done = threading.Event()
            barriers.append(done)
            self._queues[shard].put(
                (engine._execute_transaction, items, results, errors, done)
            )
        for done in barriers:
            done.wait()
        if errors:
            # Deterministic error propagation: surface the failure of the
            # earliest transaction in merge order, as a serial run would.
            raise errors[min(errors)]
        return results

    def end_run(self, engine):
        for shard_queue in self._queues:
            shard_queue.put(None)
        for thread in self._threads:
            thread.join()
        self._queues = []
        self._threads = []


# ---------------------------------------------------------------------------
# process backend
# ---------------------------------------------------------------------------


def _partition_summaries(engine: "CaesarEngine") -> dict:
    """Picklable per-partition state for the fan-in merge (worker side)."""
    summaries = {}
    for key, runtime in engine._partitions.items():
        cost_by_context: dict[str, float] = {}
        for router in (runtime.deriving_router, runtime.processing_router):
            for name, cost in router.cost_by_context.items():
                cost_by_context[name] = cost_by_context.get(name, 0.0) + cost
        summaries[key] = {
            "windows": runtime.store.all_windows(),
            "cost_units": runtime.cost_units(),
            "suppressed": (
                runtime.deriving_router.batches_suppressed
                + runtime.processing_router.batches_suppressed
            ),
            "routed": (
                runtime.deriving_router.batches_routed
                + runtime.processing_router.batches_routed
            ),
            "uninterested": (
                runtime.deriving_router.batches_uninterested
                + runtime.processing_router.batches_uninterested
            ),
            "gc_collected": runtime.gc.collected,
            "history_discards": runtime.history.discards,
            "cost_by_context": cost_by_context,
        }
    return summaries


def _process_worker_main(conn, engine: "CaesarEngine") -> None:
    """Request loop of one forked shard worker."""
    baseline = engine._worker_state_baseline()
    while True:
        message = conn.recv()
        kind = message[0]
        if kind == "exec":
            _, t, parts = message
            replies = []
            cost_before = engine._total_cost_units()
            try:
                for index, key, events in parts:
                    transaction = StreamTransaction(
                        partition=key, timestamp=t, events=events
                    )
                    outputs = engine._execute_transaction(transaction)
                    replies.append((index, outputs, transaction.operations))
            except BaseException as exc:  # noqa: BLE001 - forwarded
                try:
                    conn.send(("error", exc))
                except Exception:
                    conn.send(("error", RuntimeEngineError(repr(exc))))
                continue
            cost_delta = engine._total_cost_units() - cost_before
            conn.send(("ok", replies, cost_delta))
        elif kind == "finish":
            conn.send(
                (
                    "summary",
                    _partition_summaries(engine),
                    engine._worker_state_summary(baseline),
                )
            )
        else:  # "stop"
            conn.close()
            return


class ProcessPoolBackend(ExecutionBackend):
    """Shard-affine forked worker processes (POSIX only).

    Workers are forked at the start of each run, inheriting the engine's
    (fresh or restored) state copy-on-write; from then on each worker owns
    its shard's partitions exclusively.  Events are pickled across the
    boundary both ways.  At the end of the run every worker reports its
    partitions' windows and counters plus its supervision state
    (dead-letter entries, breakers, failure counts), which the parent
    engine absorbs so reports and ``engine.dead_letters`` look exactly as
    they would after a serial run.

    Checkpoint autosave (``recovery=``) and ``on_context_transition``
    callbacks need the partition state in the engine process and are
    rejected up front.
    """

    name = "process"
    local_state = False

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers or default_worker_count()
        self._workers: list = []  # (connection, process) pairs
        self._shard_map: _ShardMap | None = None
        self._partition_order: list = []
        self._cost_delta = 0.0

    def begin_run(self, engine):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeEngineError(
                "ProcessPoolBackend requires the fork start method "
                "(POSIX); use ThreadPoolBackend on this platform"
            )
        if getattr(engine, "recovery", None) is not None:
            raise RuntimeEngineError(
                "checkpoint autosave needs partition state in the engine "
                "process; use SerialBackend or ThreadPoolBackend with a "
                "RecoveryManager"
            )
        if engine.on_context_transition is not None:
            raise RuntimeEngineError(
                "on_context_transition callbacks fire inside worker "
                "processes and would be lost; use SerialBackend or "
                "ThreadPoolBackend"
            )
        context = multiprocessing.get_context("fork")
        self._shard_map = _ShardMap(self.max_workers)
        self._partition_order = []
        self._workers = []
        for _ in range(self.max_workers):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_process_worker_main,
                args=(child_conn, engine),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._workers.append((parent_conn, process))

    def execute(self, t, transactions, engine):
        self._cost_delta = 0.0
        if not transactions:
            return []
        for transaction in transactions:
            if transaction.partition not in self._shard_map._assignment:
                self._partition_order.append(transaction.partition)
        groups = self._shard_map.group(transactions)
        for shard, items in groups.items():
            conn = self._workers[shard][0]
            conn.send(
                ("exec", t, [(i, tx.partition, tx.events) for i, tx in items])
            )
        results: list = [None] * len(transactions)
        errors: dict[int, BaseException] = {}
        self._cost_delta = 0.0
        for shard, items in groups.items():
            conn = self._workers[shard][0]
            reply = conn.recv()
            if reply[0] == "error":
                errors[items[0][0]] = reply[1]
                continue
            _, replies, cost_delta = reply
            self._cost_delta += cost_delta
            for index, outputs, operations in replies:
                results[index] = outputs
                # The worker recorded the context reads/writes; adopt them so
                # the parent's transaction log verifies the schedule.
                transactions[index].operations = operations
        if errors:
            raise errors[min(errors)]
        return results

    @property
    def last_cost_delta(self) -> float:
        return self._cost_delta

    def collect_totals(self, engine):
        summaries: dict = {}
        for conn, _process in self._workers:
            conn.send(("finish",))
            _tag, partition_summaries, worker_state = conn.recv()
            summaries.update(partition_summaries)
            engine._absorb_worker_state(worker_state)
        totals = RunTotals()
        for key in self._partition_order:
            summary = summaries.get(key)
            if summary is None:  # pragma: no cover - defensive
                continue
            totals.cost_units += summary["cost_units"]
            totals.windows_by_partition[key] = summary["windows"]
            totals.suppressed_batches += summary["suppressed"]
            totals.routed_batches += summary["routed"]
            totals.interest_suppressed_batches += summary["uninterested"]
            totals.gc_collected += summary["gc_collected"]
            totals.history_discards += summary["history_discards"]
            for name, cost in summary["cost_by_context"].items():
                totals.cost_by_context[name] = (
                    totals.cost_by_context.get(name, 0.0) + cost
                )
        return totals

    def end_run(self, engine):
        for conn, process in self._workers:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
            conn.close()
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=10)
        self._workers = []


#: Registry used by :func:`resolve_backend` (and the ``CAESAR_BACKEND``
#: environment variable).
BACKENDS: dict[str, Callable[[], ExecutionBackend]] = {
    "serial": SerialBackend,
    "thread": ThreadPoolBackend,
    "threads": ThreadPoolBackend,
    "process": ProcessPoolBackend,
    "processes": ProcessPoolBackend,
}


def resolve_backend(
    spec: "ExecutionBackend | str | None",
) -> ExecutionBackend:
    """Turn a backend spec into an instance.

    ``None`` consults the ``CAESAR_BACKEND`` environment variable (unset or
    empty means serial); strings are looked up in :data:`BACKENDS`;
    instances pass through (each engine should get its own instance — a
    backend holds per-run worker state).  An unknown name — explicit or
    from the environment — raises :class:`~repro.errors.UnknownBackendError`
    (a ``ValueError``) listing the valid names; it is never silently
    replaced by a fallback.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    source = "backend spec"
    if spec is None:
        spec = os.environ.get(BACKEND_ENV_VAR, "") or "serial"
        source = f"{BACKEND_ENV_VAR} environment variable"
    factory = BACKENDS.get(str(spec).strip().lower())
    if factory is None:
        raise UnknownBackendError(
            f"unknown execution backend {spec!r} (from {source}); "
            f"choose one of {sorted(set(BACKENDS))}"
        )
    return factory()
