"""The CAESAR engines (Section 6).

:class:`CaesarEngine` executes a :class:`~repro.core.model.CaesarModel`
end-to-end: per stream partition it keeps a context window store (the bit
vector), routes each timestamp's batch first through the context *deriving*
plans and then through the context *processing* plans of the currently
active contexts, discards partial matches of terminated windows, and
garbage-collects expired state.  With ``context_aware=False`` and
``optimize=False`` the very same machinery behaves like a state-of-the-art
context-independent engine — every plan receives every batch and the context
window operator sits un-pushed in the middle of each plan.

:class:`ScheduledWorkloadEngine` executes a
:class:`~repro.optimizer.sharing.SharedWorkload`: plans activated and
suspended by precomputed window intervals, used for the workload-sharing
experiments (Figures 13-14) where window bounds are part of the experiment
design.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field

from repro.algebra.operators import ExecutionContext, Operator
from repro.algebra.plan import CombinedQueryPlan, clone_operator
from repro.algebra.seq_aggregate import (
    MatchAggregateProjection,
    PatternAggregateOperator,
)
from repro.core.model import CaesarModel
from repro.core.windows import ContextWindow, ContextWindowStore
from repro.errors import RuntimeEngineError
from repro.events.batch import ColumnarEvents, columnar_enabled
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.events.timebase import TimePoint
from repro.observability import (
    EngineInstruments,
    NULL_REGISTRY,
    Observability,
    resolve_observability,
)
from repro.optimizer.apply import OptimizationRules, optimize_combined
from repro.optimizer.planner import (
    AGGREGATION_MODES,
    build_combined_plans,
    build_plans_for_queries,
)
from repro.optimizer.sharing import ExecutionUnit, SharedWorkload
from repro.runtime.backend import ExecutionBackend, RunTotals, resolve_backend
from repro.runtime.garbage import GarbageCollector
from repro.runtime.history import ContextHistory
from repro.runtime.metrics import LatencyTracker
from repro.runtime.queues import EventDistributor, Partitioner, single_partition
from repro.runtime.router import ContextAwareStreamRouter
from repro.runtime.scheduler import TimeDrivenScheduler
from repro.runtime.shedding import LoadShedder, SheddingConfig, resolve_shedding
from repro.runtime.transactions import StreamTransaction


#: ``run()`` keywords that were deprecated aliases for two releases and are
#: now *removed*, mapped to their replacement.  Passing one raises
#: ``TypeError`` naming the replacement instead of silently translating —
#: the keyword set stays unified across :class:`CaesarEngine`,
#: :class:`SupervisedEngine` and :class:`ScheduledWorkloadEngine`.
_REMOVED_RUN_KWARGS = {
    "collect_outputs": "track_outputs",
    "keep_outputs": "track_outputs",
}


def _reject_unknown_run_kwargs(engine_name: str, kwargs: dict) -> None:
    """Raise ``TypeError`` for any unexpected ``run()`` keyword.

    Removed aliases get a message naming their replacement; anything else
    fails exactly as a plain signature mismatch would, naming the engine
    for a readable message.
    """
    for name in kwargs:
        replacement = _REMOVED_RUN_KWARGS.get(name)
        if replacement is not None:
            raise TypeError(
                f"{engine_name}.run() keyword {name!r} was removed; "
                f"use {replacement!r}"
            )
        raise TypeError(
            f"{engine_name}.run() got an unexpected keyword argument "
            f"{name!r}"
        )


@dataclass
class EngineReport:
    """Outcome of one engine run over a stream."""

    outputs: list[Event]
    events_processed: int
    batches: int
    cost_units: float
    wall_seconds: float
    max_latency: float
    mean_latency: float
    outputs_by_type: dict[str, int] = field(default_factory=dict)
    windows_by_partition: dict[object, list[ContextWindow]] = field(
        default_factory=dict
    )
    suppressed_batches: int = 0
    routed_batches: int = 0
    #: batches skipped by interest-set routing: the plan's context was
    #: active, but the batch contained no event type the plan consumes
    #: (orthogonal to context suspension, context-aware mode only)
    interest_suppressed_batches: int = 0
    gc_collected: int = 0
    history_discards: int = 0
    # -- DERIVE aggregation accounting (Section 4.2's Table 1 extension):
    # -- how many SEQ matches each strategy accounted for.  The two
    # -- counters differ *by construction* between aggregation modes, so
    # -- they are excluded from the cross-run parity projection. ----------
    #: matches folded into running summaries without ever materializing
    matches_aggregated: int = 0
    #: matches enumerated by a pattern operator and aggregated afterwards
    matches_materialized: int = 0
    #: cost units per context across all partitions (deriving + processing),
    #: the observable footprint of suspension: suspended contexts spend 0
    cost_by_context: dict[str, float] = field(default_factory=dict)
    # -- supervision counters (populated by SupervisedEngine; zero for a
    # -- bare engine run) ------------------------------------------------
    #: plan exceptions caught and isolated by the supervisor
    plan_failures: int = 0
    #: distinct plans whose circuit breaker ever opened
    plans_quarantined: int = 0
    #: breaker state transitions, keyed "closed->open" etc.
    breaker_transitions: dict[str, int] = field(default_factory=dict)
    #: dead-lettered events by reason (schema / late / quarantined / ...)
    dead_lettered: dict[str, int] = field(default_factory=dict)
    #: dead-letter entries evicted because the queue was full
    dead_letter_dropped: int = 0
    #: checkpoints autosaved by the recovery manager
    checkpoints_taken: int = 0
    #: times a checkpoint was restored and the stream suffix replayed
    recovery_replays: int = 0
    #: name of the execution backend that produced this report
    backend: str = "serial"
    # -- transport diagnostics (nonzero only for the process backend; they
    # -- describe *how* events moved, not what the run computed, so they are
    # -- excluded from the cross-backend parity projection) ---------------
    #: bytes shipped parent -> workers (shared-memory batch frames + pipe
    #: messages, measured at the transport boundary)
    transport_bytes_out: int = 0
    #: bytes shipped workers -> parent (derived events, summaries)
    transport_bytes_in: int = 0
    #: event batches placed in the shared-memory ring
    batches_shm: int = 0
    #: event batches that fell back to pipe pickling (ring full / shm
    #: unavailable / batch exceeding the ring)
    batches_pickled_fallback: int = 0
    # -- overload management (populated by the load shedder; zeros and an
    # -- empty digest when shedding is off) -------------------------------
    #: events dropped by the load shedder (all classes)
    shed_events: int = 0
    #: events admitted because the decision ladder protected them
    protected_events: int = 0
    #: sheddable events admitted by the sampling hash
    sampled_events: int = 0
    #: events retained solely to keep a partition's transaction clock alive
    shed_ticks: int = 0
    #: shed events by ladder class ("cold" / "warm" / "suspended")
    shed_by_class: dict[str, int] = field(default_factory=dict)
    #: shed events charged to their highest-priority interested context
    shed_by_context: dict[str, int] = field(default_factory=dict)
    #: blake2b over every (timestamp, decision bytes) — byte-identical
    #: across backends for the same seed and stream
    shed_decision_digest: str = ""
    #: controller peaks over the run
    shed_pressure_peak: float = 0.0
    shed_depth_peak: int = 0
    shed_backlog_peak_seconds: float = 0.0
    #: contexts the shedder ever suspended outright (low priority under
    #: extreme pressure)
    suspended_contexts: tuple = ()
    # -- dead-letter drop accounting by the evicted entry's reason --------
    dead_letter_dropped_by_reason: dict[str, int] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Events per wall second."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.events_processed / self.wall_seconds

    def summary(self) -> str:
        output_count = sum(self.outputs_by_type.values())
        return (
            f"events={self.events_processed} batches={self.batches} "
            f"outputs={output_count} cost={self.cost_units:.0f} "
            f"max_latency={self.max_latency:.3f}s "
            f"mean_latency={self.mean_latency:.4f}s "
            f"wall={self.wall_seconds:.3f}s"
        )


@dataclass
class _PartitionRuntime:
    """Per-partition state: window store, routers, history, GC."""

    store: ContextWindowStore
    deriving_router: ContextAwareStreamRouter
    processing_router: ContextAwareStreamRouter
    history: ContextHistory
    gc: GarbageCollector
    preprocessors: list[Operator] = field(default_factory=list)
    closed_seen: int = 0

    def cost_units(self) -> float:
        return (
            self.deriving_router.cost_units
            + self.processing_router.cost_units
            + sum(op.stats.cost_units for op in self.preprocessors)
        )

    def aggregation_counts(self) -> tuple[int, int]:
        """(matches_aggregated, matches_materialized) over all plans."""
        aggregated = 0
        materialized = 0
        for router in (self.deriving_router, self.processing_router):
            for combined in router.all_plans():
                for plan in combined.plans:
                    for operator in plan.operators:
                        if isinstance(operator, PatternAggregateOperator):
                            aggregated += operator.matches_aggregated
                        elif isinstance(operator, MatchAggregateProjection):
                            materialized += operator.matches_materialized
        return aggregated, materialized


class RunState:
    """All state scoped to *one* :meth:`CaesarEngine.run`.

    The distributor, scheduler, latency tracker and output accumulators
    used to live as locals threaded through the run loop; bundling them
    makes the per-run vs. per-engine state split explicit — everything in
    here is born and dies with a single run, everything on the engine
    (partition runtimes, templates, supervision state) survives across
    timestamps and is reset by :meth:`CaesarEngine.reset_run_state`.
    """

    def __init__(
        self,
        partition_by: Partitioner,
        instruments: EngineInstruments | None = None,
    ):
        self.instruments = (
            instruments
            if instruments is not None
            else EngineInstruments(NULL_REGISTRY)
        )
        self.distributor = EventDistributor(partition_by)
        self.scheduler = TimeDrivenScheduler(
            self.distributor, instruments=self.instruments
        )
        self.latency = LatencyTracker()
        self.outputs: list[Event] = []
        self.outputs_by_type: dict[str, int] = {}
        self.events_processed = 0
        self.batches = 0
        self.wall_started = _time.perf_counter()

    def record_batch(
        self,
        t: TimePoint,
        incoming: int,
        batch_outputs: list[Event],
        service: float,
        track_outputs: bool,
    ) -> None:
        latency = self.latency.record(float(t), service)
        self.events_processed += incoming
        self.batches += 1
        instruments = self.instruments
        instruments.batches.inc()
        instruments.events.inc(incoming)
        instruments.outputs.inc(len(batch_outputs))
        instruments.batch_service.observe(service)
        instruments.batch_latency.observe(latency)
        for event in batch_outputs:
            self.outputs_by_type[event.type_name] = (
                self.outputs_by_type.get(event.type_name, 0) + 1
            )
        if track_outputs:
            self.outputs.extend(batch_outputs)

    @property
    def wall_seconds(self) -> float:
        return _time.perf_counter() - self.wall_started


class CaesarEngine:
    """Context-aware execution of a CAESAR model.

    Parameters
    ----------
    model:
        The CAESAR model to execute.
    optimize:
        ``True`` applies the context window push-down to every plan
        (Section 5.2); ``False`` leaves the naive Table 1 plans untouched.
        An :class:`~repro.optimizer.apply.OptimizationRules` instance
        switches each rewrite (push-down, filter/projection swap, filter
        reordering, filter merging) individually — the differential
        harness's optimized-vs-unoptimized axis runs on these switches.
    context_aware:
        Route batches only to plans of active contexts (Section 6.2).  With
        both flags False the engine is the context-independent baseline.
    retention:
        Pattern-state retention horizon in stream time units.
    aggregation:
        How aggregating DERIVE queries are evaluated: ``"online"``
        (default) propagates running summaries during pattern evaluation
        without ever enumerating matches; ``"materialize"`` enumerates
        every match and aggregates afterwards (the oracle shape the
        differential harness compares against).  Queries the online
        operator cannot express (negation, cross-variable predicates)
        silently fall back to materialization in both modes.
    partition_by:
        Maps each event to its partition key (e.g. road segment).  Each
        partition gets its own context bit vector and plan instances.
    seconds_per_cost_unit:
        If set, batch service times for the latency model are computed as
        ``cost_units × seconds_per_cost_unit`` (deterministic); otherwise
        measured wall-clock time is used.
    backend:
        How each timestamp's stream transactions execute: an
        :class:`~repro.runtime.backend.ExecutionBackend` instance, a name
        (``"serial"`` | ``"thread"`` | ``"process"``), or ``None`` to
        consult the ``CAESAR_BACKEND`` environment variable (default:
        serial).  Parallel backends shard by partition and merge outputs
        deterministically, so reports are identical across backends.
    observability:
        An :class:`~repro.observability.Observability` facade, a mode name
        (``"off"`` | ``"on"`` | ``"detailed"`` | ``"trace"``), a boolean,
        or ``None`` to consult the ``CAESAR_OBSERVABILITY`` environment
        variable (default: metrics on).  Deterministic counters are
        byte-identical across backends; worker-local updates fan in at
        end of run exactly like supervision state.
    shedding:
        A :class:`~repro.runtime.shedding.SheddingConfig`, ``True`` for
        defaults, a ``key=value,...`` string, or ``None`` to consult the
        ``CAESAR_SHED`` environment variable (default: off — a strict
        no-op).  When enabled, a deterministic admission controller runs
        in :meth:`_prepare_batch` and sheds cold/warm events under
        overload while protecting context-deriving events and hot partial
        matches (see :mod:`repro.runtime.shedding`).
    """

    def __init__(
        self,
        model: CaesarModel,
        *,
        optimize: bool | OptimizationRules = True,
        context_aware: bool = True,
        retention: TimePoint = 300,
        aggregation: str = "online",
        partition_by: Partitioner = single_partition,
        seconds_per_cost_unit: float | None = None,
        gc_interval: TimePoint = 60,
        preprocessors: tuple[Operator, ...] = (),
        on_context_transition=None,
        backend: ExecutionBackend | str | None = None,
        observability: Observability | str | bool | None = None,
        shedding: SheddingConfig | str | bool | None = None,
    ):
        self.model = model
        #: the per-rule switches actually applied to the plan templates
        self.optimize_rules = OptimizationRules.from_spec(optimize)
        #: truthiness of the rule set — kept as a plain bool because the
        #: checkpoint format verifies it structurally (v2 ``optimize`` flag)
        self.optimize = bool(self.optimize_rules)
        self.context_aware = context_aware
        self.retention = retention
        if aggregation not in AGGREGATION_MODES:
            raise RuntimeEngineError(
                f"unknown aggregation mode {aggregation!r}; expected one of "
                f"{AGGREGATION_MODES}"
            )
        self.aggregation = aggregation
        self.partition_by = partition_by
        self.seconds_per_cost_unit = seconds_per_cost_unit
        self.gc_interval = gc_interval
        #: always-active stages applied to every batch before context
        #: derivation — e.g. the windowed statistics computation every
        #: Linear Road implementation performs (see repro.algebra.aggregate);
        #: cloned per partition, their outputs join the batch
        self.preprocessor_templates = tuple(preprocessors)
        #: optional callback ``fn(partition, kind, window)`` fired
        #: synchronously on every context initiation/termination
        self.on_context_transition = on_context_transition

        self.backend = resolve_backend(backend)
        #: the backend instance actually driving the current/most recent
        #: run — differs from ``self.backend`` only when an env-selected
        #: backend falls back for an incompatible engine (``for_engine``)
        self._effective_backend = self.backend
        self.observability = resolve_observability(observability)
        #: wrap each transaction's event list in ColumnarEvents so filters
        #: and routers can take the vectorized path (CAESAR_COLUMNAR)
        self._columnar = columnar_enabled()
        #: preregistered instrument handles — the run loop touches these
        #: directly, never the registry (no dict lookups on the hot path)
        self.instruments = EngineInstruments(self.observability.registry)

        queries = model.to_query_set()
        deriving = [q for q in queries if q.is_deriving]
        processing = [q for q in queries if q.is_processing]
        self._deriving_templates = self._templates(deriving)
        self._processing_templates = self._templates(processing)
        #: overload management: ``None`` keeps the engine byte-identical
        #: to its pre-shedding behaviour (strict no-op)
        self.shedding = resolve_shedding(shedding)
        self.shedder = (
            LoadShedder(self.shedding) if self.shedding is not None else None
        )
        if self.shedder is not None:
            self.shedder.attach(self)
            self.shedder.bind_metrics(self.observability.registry)
        self._partitions: dict[object, _PartitionRuntime] = {}
        self._runs_started = 0
        #: set by ``restore_checkpoint`` so the next run resumes from the
        #: restored state instead of resetting it
        self._preserve_state_once = False

    # ------------------------------------------------------------------
    # plan construction
    # ------------------------------------------------------------------

    def _templates(self, queries) -> dict[str, CombinedQueryPlan]:
        plans = build_plans_for_queries(
            queries, retention=self.retention, aggregation=self.aggregation
        )
        combined = build_combined_plans(plans)
        if self.optimize_rules:
            combined = [
                optimize_combined(c, self.optimize_rules) for c in combined
            ]
        templates: dict[str, CombinedQueryPlan] = {}
        for plan in combined:
            if plan.context_name is None:
                raise RuntimeEngineError("combined plan without a context")
            templates[plan.context_name] = plan
        return templates

    def _partition(self, key: object) -> _PartitionRuntime:
        runtime = self._partitions.get(key)
        if runtime is not None:
            return runtime
        store = ContextWindowStore(
            self.model.context_names, self.model.default_context
        )
        if self.on_context_transition is not None:
            callback = self.on_context_transition

            def listener(kind, window, _key=key):
                callback(_key, kind, window)

            store.add_listener(listener)
        deriving = {
            name: plan.clone() for name, plan in self._deriving_templates.items()
        }
        processing = {
            name: plan.clone()
            for name, plan in self._processing_templates.items()
        }
        runtime = _PartitionRuntime(
            store=store,
            deriving_router=ContextAwareStreamRouter(
                deriving,
                context_aware=self.context_aware,
                observability=self.observability,
                phase="deriving",
            ),
            processing_router=ContextAwareStreamRouter(
                processing,
                context_aware=self.context_aware,
                observability=self.observability,
                phase="processing",
            ),
            history=ContextHistory(),
            gc=GarbageCollector(
                list(deriving.values()) + list(processing.values()),
                retention=self.retention,
                interval=self.gc_interval,
                reclaimed_counter=self.instruments.gc_reclaimed,
                runs_counter=self.instruments.gc_runs,
            ),
            preprocessors=[
                clone_operator(op) for op in self.preprocessor_templates
            ],
        )
        self._partitions[key] = runtime
        return runtime

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(
        self,
        stream: EventStream,
        *,
        track_outputs: bool = True,
        **unsupported,
    ) -> EngineReport:
        """Process a whole stream and report metrics.

        The time-driven scheduler guarantees that for each timestamp the
        context derivation phase completes before context processing starts
        (Section 6.2), per partition; the execution backend decides whether
        the partitions' transactions run serially or sharded across
        workers, with outputs merged back in deterministic partition order.

        ``run`` is re-entrant: a second call on the same engine starts from
        a clean slate (fresh partition runtimes, zeroed cost and latency
        accounting), so back-to-back runs of the same stream yield
        identical reports.  The one exception is a run immediately after
        :func:`~repro.runtime.checkpoint.restore_checkpoint`, which resumes
        from the restored state.
        """
        if unsupported:
            _reject_unknown_run_kwargs(type(self).__name__, unsupported)
        if self._runs_started > 0 and not self._preserve_state_once:
            self.reset_run_state()
        self._runs_started += 1

        state = RunState(self.partition_by, self.instruments)
        observability = self.observability
        backend = self.backend.for_engine(self)
        self._effective_backend = backend
        local_state = backend.local_state
        totals: RunTotals | None = None
        backend.begin_run(self)
        shedder = self.shedder
        if shedder is not None:
            shedder.begin_run(
                distributor=state.distributor, remote=not local_state
            )
        try:
            for batch in stream.batches():
                t = batch.timestamp
                with observability.span("batch", t=t):
                    events = self._prepare_batch(list(batch), t)
                    if events:
                        state.distributor.distribute(events)
                    self.instruments.queue_depth.set(
                        state.distributor.total_pending()
                    )
                    cost_before = (
                        self._total_cost_units() if local_state else 0.0
                    )
                    wall_before = _time.perf_counter()
                    transactions = state.scheduler.collect(t)
                    results = backend.execute(t, transactions, self)
                    state.scheduler.commit(transactions)
                    batch_outputs = [
                        event for outputs in results for event in outputs
                    ]
                    if self.seconds_per_cost_unit is not None:
                        if local_state:
                            cost_delta = self._total_cost_units() - cost_before
                        else:
                            cost_delta = backend.last_cost_delta
                        service = cost_delta * self.seconds_per_cost_unit
                    else:
                        service = _time.perf_counter() - wall_before
                    state.record_batch(
                        t, len(batch), batch_outputs, service, track_outputs
                    )
                    if shedder is not None:
                        if local_state:
                            shedder.note_batch_cost(
                                self._total_cost_units() - cost_before
                            )
                        else:
                            shedder.note_batch_cost(backend.last_cost_delta)
                            shedder.absorb_remote_feedback(
                                backend.last_shed_feedback
                            )
                    self._on_batch_end(t)
                    # Preservation (post-restore) is consumed only once a
                    # batch actually committed: a run that aborts before
                    # touching state must leave the restored state intact
                    # for the retry (the chunk-boundary recall-bug class).
                    self._preserve_state_once = False
                if observability.snapshot_due(state.batches):
                    self._refresh_gauges(state)
                    observability.emit_snapshot(t)
                    self.instruments.snapshots.inc()
            self._preserve_state_once = False
            totals = backend.collect_totals(self)
        finally:
            backend.end_run(self)

        if totals is None:
            totals = self._local_totals()
        self._observe_totals(totals)
        self._refresh_gauges(state, totals)
        report = EngineReport(
            outputs=state.outputs,
            events_processed=state.events_processed,
            batches=state.batches,
            cost_units=totals.cost_units,
            wall_seconds=state.wall_seconds,
            max_latency=state.latency.max_latency,
            mean_latency=state.latency.mean_latency,
            outputs_by_type=state.outputs_by_type,
            windows_by_partition=totals.windows_by_partition,
            suppressed_batches=totals.suppressed_batches,
            routed_batches=totals.routed_batches,
            interest_suppressed_batches=totals.interest_suppressed_batches,
            gc_collected=totals.gc_collected,
            history_discards=totals.history_discards,
            matches_aggregated=totals.matches_aggregated,
            matches_materialized=totals.matches_materialized,
            cost_by_context=totals.cost_by_context,
            backend=backend.name,
            transport_bytes_out=totals.transport_bytes_out,
            transport_bytes_in=totals.transport_bytes_in,
            batches_shm=totals.batches_shm,
            batches_pickled_fallback=totals.batches_pickled_fallback,
        )
        self._finalize_report(report)
        return report

    def close(self) -> None:
        """Release backend resources (worker pools, shared-memory rings).

        Idempotent; safe on engines whose backend holds no resources.  An
        engine remains usable after ``close()`` — the next :meth:`run`
        simply pays the pool spawn cost again.
        """
        self.backend.close()
        if self._effective_backend is not self.backend:
            self._effective_backend.close()

    def reset_run_state(self) -> None:
        """Discard all state accumulated by previous runs.

        Partition runtimes — window stores, plan instances with their
        partial matches, routers with their cost counters, garbage
        collectors, context histories — are dropped and will be rebuilt
        lazily from the immutable templates, exactly as on a fresh engine.
        """
        self._partitions = {}

    # ------------------------------------------------------------------
    # online deployment (streaming service mode)
    # ------------------------------------------------------------------

    def _guard_plan(
        self, partition_key: object, phase: str, context_name: str, plan
    ):
        """Hook: wrap a plan spliced into a live partition (supervision seam).

        The base engine installs plans bare; :class:`SupervisedEngine`
        overrides this to put a fresh circuit breaker around each one.
        :meth:`_partition` construction routes through the same hook via
        ``wrap_plans``, so initial and online-deployed plans are guarded
        identically.
        """
        return plan

    def _require_local_state(self, operation: str) -> None:
        backend = self.backend.for_engine(self)
        if not (backend.local_state and self._effective_backend.local_state):
            raise RuntimeEngineError(
                f"{operation} requires an execution backend with in-process "
                f"partition state; {self._effective_backend.name!r} keeps "
                "partitions in worker processes"
            )

    def deploy_query(self, query) -> None:
        """Add a query to the live model without restarting the engine.

        The grouping optimizer reruns incrementally — only the combined
        plans of the contexts named in the query's CONTEXT clause are
        rebuilt — and the fresh plans are spliced into every live
        partition's routers with the old plans' pattern state restored, so
        no partial match is lost at the deployment boundary.  The new
        query's own plan starts empty; its activation watermark is the
        next timestamp processed.  Interest sets are read live from the
        spliced plans, so routing (and the shedder's protected-type
        ladder, which is re-attached) picks the query up immediately.
        """
        self._require_local_state("deploy_query")
        self.model.add_query(query)
        affected = set(query.contexts or (self.model.default_context,))
        try:
            self._rebuild_templates_for(affected)
        except Exception:
            self.model.remove_query(query.name)
            raise
        self._splice_partitions(affected)

    def retire_query(self, name: str) -> None:
        """Remove a query from the live model without restarting.

        Contexts whose workload becomes empty lose their combined plan
        entirely; the remaining queries keep their pattern state.
        """
        self._require_local_state("retire_query")
        affected = set(self.model.remove_query(name))
        self._rebuild_templates_for(affected)
        self._splice_partitions(affected)

    def deploy_context(self, name: str) -> None:
        """Declare a new context type on the live engine.

        Every partition's bit vector grows to admit the new name (existing
        bits are carried over); the context has no workload until queries
        are deployed into it.
        """
        self._require_local_state("deploy_context")
        self.model.add_context(name)
        for runtime in self._partitions.values():
            runtime.store.register_context(name)

    def _rebuild_templates_for(self, contexts: set) -> None:
        """Re-run plan building + grouping for the affected contexts only."""
        queries = self.model.to_query_set()
        for attr_name, predicate in (
            ("_deriving_templates", lambda q: q.is_deriving),
            ("_processing_templates", lambda q: q.is_processing),
        ):
            relevant = [
                q
                for q in queries
                if predicate(q) and set(q.contexts) & contexts
            ]
            rebuilt = self._templates(relevant) if relevant else {}
            templates = getattr(self, attr_name)
            for name in contexts:
                if name in rebuilt:
                    templates[name] = rebuilt[name]
                else:
                    templates.pop(name, None)

    def _splice_partitions(self, contexts: set) -> None:
        """Swap the affected contexts' plans into every live partition.

        Each surviving query's plan state is carried over by name
        (``snapshot_state``/``restore_state``); names absent from the old
        snapshot — the newly deployed query — start fresh.
        """
        for key, runtime in self._partitions.items():
            for phase, router, templates in (
                ("deriving", runtime.deriving_router, self._deriving_templates),
                (
                    "processing",
                    runtime.processing_router,
                    self._processing_templates,
                ),
            ):
                for context_name in sorted(contexts):
                    template = templates.get(context_name)
                    old = router.plan_for(context_name)
                    if template is None:
                        if old is not None:
                            router.remove_plan(context_name)
                        continue
                    plan = template.clone()
                    if old is not None:
                        plan.restore_state(old.snapshot_state())
                    router.replace_plan(
                        context_name,
                        self._guard_plan(key, phase, context_name, plan),
                    )
            runtime.gc.set_plans(
                runtime.deriving_router.all_plans()
                + runtime.processing_router.all_plans()
            )
        if self.shedder is not None:
            self.shedder.attach(self)

    def _prepare_batch(self, events: list[Event], t: TimePoint) -> list[Event]:
        """Hook: filter/augment a raw batch before it is distributed.

        The supervision layer overrides this to validate schemas and divert
        violators to the dead-letter queue *before* distribution — which is
        why a timestamp may legitimately reach the scheduler with no events
        at all.  The base engine applies admission control (load shedding)
        when configured and otherwise passes the batch through unchanged.
        """
        if self.shedder is not None:
            return self.shedder.admit(events, t)
        return events

    def _shed_feedback(self):
        """Picklable per-partition shed feedback (worker side, process
        backend): the active contexts and hot partial-match types/keys the
        parent's admission controller cannot read across the process
        boundary.  ``None`` when shedding is off — zero protocol overhead.
        """
        if self.shedder is None:
            return None
        return self.shedder.collect_view(self._partitions)

    def _local_totals(self) -> RunTotals:
        """Run totals read from this process's partition runtimes."""
        partitions = self._partitions
        aggregation_counts = [
            p.aggregation_counts() for p in partitions.values()
        ]
        return RunTotals(
            matches_aggregated=sum(a for a, _ in aggregation_counts),
            matches_materialized=sum(m for _, m in aggregation_counts),
            cost_units=self._total_cost_units(),
            windows_by_partition={
                key: runtime.store.all_windows()
                for key, runtime in partitions.items()
            },
            suppressed_batches=sum(
                p.deriving_router.batches_suppressed
                + p.processing_router.batches_suppressed
                for p in partitions.values()
            ),
            routed_batches=sum(
                p.deriving_router.batches_routed
                + p.processing_router.batches_routed
                for p in partitions.values()
            ),
            interest_suppressed_batches=sum(
                p.deriving_router.batches_uninterested
                + p.processing_router.batches_uninterested
                for p in partitions.values()
            ),
            gc_collected=sum(p.gc.collected for p in partitions.values()),
            history_discards=sum(
                p.history.discards for p in partitions.values()
            ),
            cost_by_context=self._cost_by_context(),
        )

    def _observe_totals(self, totals: RunTotals) -> None:
        """Mirror a run's merged totals into the metrics registry.

        Invoked once per run on the parent engine after the backend's
        fan-in, so totals-derived counters are byte-identical across
        backends by construction.  GC counters are *not* mirrored here —
        the collector increments them live (worker-side for sharded
        backends, fanned in through the registry delta).
        """
        instruments = self.instruments
        instruments.cost_units.inc(totals.cost_units)
        instruments.suppressed.inc(totals.suppressed_batches)
        instruments.routed.inc(totals.routed_batches)
        instruments.uninterested.inc(totals.interest_suppressed_batches)
        instruments.history_discards.inc(totals.history_discards)
        instruments.transport_bytes_out.inc(totals.transport_bytes_out)
        instruments.transport_bytes_in.inc(totals.transport_bytes_in)
        instruments.batches_shm.inc(totals.batches_shm)
        instruments.batches_pickled.inc(totals.batches_pickled_fallback)
        registry = self.observability.registry
        if registry.enabled:
            for name in sorted(totals.cost_by_context):
                registry.counter(
                    "caesar_context_cost_units_total",
                    "Cost units spent per context (deriving + processing)",
                    labels={"context": name},
                ).inc(totals.cost_by_context[name])

    def _refresh_gauges(
        self, state: RunState, totals: RunTotals | None = None
    ) -> None:
        """Point-in-time gauges, refreshed at snapshot and run boundaries.

        Gauges are excluded from the worker fan-in (they describe *current*
        state, not accumulation); the parent recomputes them from whatever
        authoritative view it has — live partition runtimes mid-run, the
        merged totals at end of run.
        """
        instruments = self.instruments
        instruments.partitions.set(len(state.distributor.partitions))
        if totals is not None:
            windows = [
                window
                for window_list in totals.windows_by_partition.values()
                for window in window_list
            ]
        elif self._effective_backend.local_state:
            windows = [
                window
                for runtime in self._partitions.values()
                for window in runtime.store.all_windows()
            ]
        else:  # mid-run with remote partition state: nothing to read
            return
        instruments.windows_total.set(len(windows))
        instruments.open_windows.set(
            sum(1 for window in windows if window.is_open)
        )

    def _worker_pool_reusable(self) -> bool:
        """Hook: may a persistent worker pool carry over into the next run?

        Workers fork with a snapshot of the engine; reuse is sound only
        when the parent engine holds no run state a fresh worker would
        lack.  After :meth:`reset_run_state` the partition map is empty —
        workers perform the same reset on ``begin`` — so a pool spawned
        from a pristine engine stays equivalent to a fresh fork.
        """
        return not self._partitions

    def _worker_state_baseline(self):
        """Hook: snapshot taken by a forked shard worker at startup.

        Paired with :meth:`_worker_state_summary`.  The base engine reports
        its observability state (registry values and span count at fork
        time) so worker-local metric updates can be shipped home as deltas;
        subclasses extend the dict with their own keys via ``super()``.
        """
        return {"observability": self.observability.worker_baseline()}

    def _worker_state_summary(self, baseline):
        """Hook: picklable state a shard worker sends home at end of run."""
        baseline = baseline or {}
        return {
            "observability": self.observability.worker_summary(
                baseline.get("observability")
            )
        }

    def _absorb_worker_state(self, summary) -> None:
        """Hook: merge a shard worker's end-of-run summary (parent side)."""
        if not summary:
            return
        self.observability.absorb_worker(summary.get("observability"))

    def _finalize_report(self, report: EngineReport) -> None:
        """Hook to enrich a freshly built report (e.g. supervision counters).

        Invoked by :meth:`run` and by
        :meth:`~repro.runtime.session.EngineSession.close`.  The base
        engine adds the overload-management counters when shedding is on.
        """
        if self.shedder is not None:
            self.shedder.populate_report(report)

    def _cost_by_context(self) -> dict[str, float]:
        # Per-partition subtotals first, then one addition into the global
        # accumulator: the exact association the process backend's worker
        # summaries use, so costs stay bit-identical across backends.
        totals: dict[str, float] = {}
        for runtime in self._partitions.values():
            local: dict[str, float] = {}
            for router in (runtime.deriving_router, runtime.processing_router):
                for name, cost in router.cost_by_context.items():
                    local[name] = local.get(name, 0.0) + cost
            for name, cost in local.items():
                totals[name] = totals.get(name, 0.0) + cost
        return totals

    def _execute_transaction(self, transaction: StreamTransaction) -> list[Event]:
        observability = self.observability
        if observability.tracing:
            with observability.recorder.span(
                "transaction",
                "engine",
                t=transaction.timestamp,
                partition=transaction.partition,
            ):
                return self._transaction_body(transaction)
        return self._transaction_body(transaction)

    def _transaction_body(self, transaction: StreamTransaction) -> list[Event]:
        runtime = self._partition(transaction.partition)
        store = runtime.store
        t = transaction.timestamp
        ctx = ExecutionContext(windows=store, now=t)

        # Phase 0 — always-active preprocessing stages (e.g. windowed
        # statistics); their derivations join the batch.  When columnar
        # mode is on the batch is wrapped in ColumnarEvents (a list
        # subclass) so downstream filters and interest-set routing can use
        # the segmented view; re-wrapped after every merge because
        # ``list + list`` returns a plain list.
        events = transaction.events
        if self._columnar and type(events) is list:
            events = ColumnarEvents(events)
        for operator in runtime.preprocessors:
            derived = operator.process(events, ctx)
            derived.extend(operator.on_time_advance(t, ctx))
            if derived:
                merged = list(events) + derived
                events = ColumnarEvents(merged) if self._columnar else merged
        transaction.events = events

        # Phase 1 — context derivation (Section 6.2: derivation for time t
        # completes before any processing at t).
        active_before = set(store.active_contexts())
        runtime.deriving_router.route(transaction.events, store, ctx)
        active_after = set(store.active_contexts())
        for context_name in active_before | active_after:
            if (context_name in active_before) != (context_name in active_after):
                transaction.record_write(context_name)

        # Partial matches of terminated windows are safely discarded
        # (Section 6.2, "Context Processing").
        new_closed = store.closed[runtime.closed_seen :]
        runtime.closed_seen = len(store.closed)
        for window in new_closed:
            plan = runtime.processing_router.plan_for(window.context_name)
            if plan is not None:
                runtime.history.on_context_terminated(plan)
        # A (re)initiated window starts with a clean slate: queries consume
        # only events that arrive *during* their context window (Section
        # 3.4), so pre-window pattern state must not leak in.  For the
        # context-aware engine this is a no-op (suspended plans saw
        # nothing); it keeps the context-independent configuration — whose
        # patterns busy-wait on the whole stream — output-equivalent.
        for context_name in active_after - active_before:
            plan = runtime.processing_router.plan_for(context_name)
            if plan is not None and not self.context_aware:
                plan.reset_state()

        # Phase 2 — context processing within the active contexts.
        for context_name in store.active_contexts():
            transaction.record_read(context_name)
        derived = runtime.processing_router.route(transaction.events, store, ctx)
        derived.extend(runtime.processing_router.advance_time(t, store, ctx))

        runtime.gc.maybe_collect(t)
        return derived

    def _on_batch_end(self, t: TimePoint) -> None:
        """Hook fired after all transactions of timestamp ``t`` committed.

        The base engine does nothing; the supervision layer uses it to
        drive checkpoint autosaving at batch (= stream-time) boundaries.
        Both :meth:`run` and :class:`~repro.runtime.session.EngineSession`
        invoke it.
        """

    def _total_cost_units(self) -> float:
        return sum(p.cost_units() for p in self._partitions.values())

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def partition_keys(self) -> tuple[object, ...]:
        return tuple(self._partitions)

    def partition_store(self, key: object) -> ContextWindowStore:
        return self._partition(key).store

    def describe_plans(self) -> str:
        lines = ["Deriving plans:"]
        for name, plan in self._deriving_templates.items():
            for individual in plan.plans:
                lines.append(f"  [{name}] {individual!r}")
        lines.append("Processing plans:")
        for name, plan in self._processing_templates.items():
            for individual in plan.plans:
                lines.append(f"  [{name}] {individual!r}")
        return "\n".join(lines)


class ScheduledWorkloadEngine:
    """Executes a :class:`SharedWorkload` whose activations are time-driven.

    Used by the sharing experiments: window bounds are part of the
    experiment design, so plans are activated/suspended by the precomputed
    intervals instead of by context deriving queries.  Suspension semantics
    match the context-aware engine: a unit outside its activation intervals
    receives no events, and its partial matches are discarded when an
    activation interval ends (merged intervals persist state across adjacent
    grouped windows — the context history behaviour of Section 6.2).
    """

    def __init__(
        self,
        workload: SharedWorkload,
        *,
        context_aware: bool = True,
        seconds_per_cost_unit: float | None = None,
        observability: Observability | str | bool | None = None,
    ):
        self.workload = workload
        self.context_aware = context_aware
        self.seconds_per_cost_unit = seconds_per_cost_unit
        self.observability = resolve_observability(observability)
        self.instruments = EngineInstruments(self.observability.registry)
        self._store = ContextWindowStore([], "default")
        #: activation interval each unit was last seen in (None = inactive);
        #: crossing an interval boundary discards the unit's partial matches
        self._last_interval: dict[int, int | None] = {
            id(unit): None for unit in workload.units
        }

    def run(
        self,
        stream: EventStream,
        *,
        track_outputs: bool = True,
        **unsupported,
    ) -> EngineReport:
        if unsupported:
            _reject_unknown_run_kwargs(type(self).__name__, unsupported)
        latency = LatencyTracker()
        outputs: list[Event] = []
        outputs_by_type: dict[str, int] = {}
        events_processed = 0
        batches = 0
        cost_total = 0.0
        suppressed = 0
        routed = 0
        wall_started = _time.perf_counter()
        for batch in stream.batches():
            t = batch.timestamp
            ctx = ExecutionContext(windows=self._store, now=t)
            cost_before = cost_total
            wall_before = _time.perf_counter()
            batch_outputs: list[Event] = []
            events = list(batch)
            for unit in self.workload.units:
                interval = unit.interval_index_at(t)
                if interval is None and not self.context_aware:
                    interval = -1  # the CI baseline is always active
                previous = self._last_interval[id(unit)]
                if interval is None:
                    if previous is not None:
                        # the activation interval ended: partial matches of
                        # the suspended queries are safely discarded
                        unit.plan.reset_state()
                    self._last_interval[id(unit)] = None
                    suppressed += 1
                    continue
                if previous is not None and previous != interval:
                    # re-activated in a *different* interval: the originating
                    # user window ended in between, so stale state must not
                    # leak across (Section 6.2, context history)
                    unit.plan.reset_state()
                if previous is None and interval >= 0:
                    # activation after a silent gap (no batches arrived while
                    # the unit was suspended): clear pre-window state
                    unit.plan.reset_state()
                self._last_interval[id(unit)] = interval
                routed += 1
                before = unit.plan.total_cost_units()
                batch_outputs.extend(unit.plan.execute(events, ctx))
                batch_outputs.extend(unit.plan.advance_time(t, ctx))
                cost_total += unit.plan.total_cost_units() - before
            if self.seconds_per_cost_unit is not None:
                service = (cost_total - cost_before) * self.seconds_per_cost_unit
            else:
                service = _time.perf_counter() - wall_before
            batch_latency = latency.record(float(t), service)
            events_processed += len(events)
            batches += 1
            instruments = self.instruments
            instruments.batches.inc()
            instruments.events.inc(len(events))
            instruments.outputs.inc(len(batch_outputs))
            instruments.batch_service.observe(service)
            instruments.batch_latency.observe(batch_latency)
            for event in batch_outputs:
                outputs_by_type[event.type_name] = (
                    outputs_by_type.get(event.type_name, 0) + 1
                )
            if track_outputs:
                outputs.extend(batch_outputs)
            if self.observability.snapshot_due(batches):
                self.observability.emit_snapshot(t)
                self.instruments.snapshots.inc()
        wall_seconds = _time.perf_counter() - wall_started
        self.instruments.cost_units.inc(cost_total)
        self.instruments.suppressed.inc(suppressed)
        self.instruments.routed.inc(routed)
        matches_aggregated = 0
        matches_materialized = 0
        for unit in self.workload.units:
            for operator in unit.plan.operators:
                if isinstance(operator, PatternAggregateOperator):
                    matches_aggregated += operator.matches_aggregated
                elif isinstance(operator, MatchAggregateProjection):
                    matches_materialized += operator.matches_materialized
        return EngineReport(
            outputs=outputs,
            events_processed=events_processed,
            batches=batches,
            cost_units=cost_total,
            wall_seconds=wall_seconds,
            max_latency=latency.max_latency,
            mean_latency=latency.mean_latency,
            outputs_by_type=outputs_by_type,
            suppressed_batches=suppressed,
            routed_batches=routed,
            matches_aggregated=matches_aggregated,
            matches_materialized=matches_materialized,
        )
