"""Tokenizer for the CAESAR event query language.

The token set follows the grammar of Fig. 4: clause keywords, identifiers,
numeric and string literals, the comparison/arithmetic operators (both the
paper's typographic forms ``≠ ≤ ≥`` and their ASCII spellings), parentheses,
commas and the attribute-access dot.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import LexerError


class TokenKind(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    DOT = "."
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "INITIATE",
        "SWITCH",
        "TERMINATE",
        "CONTEXT",
        "DERIVE",
        "PATTERN",
        "WHERE",
        "SEQ",
        "NOT",
        "AND",
        "OR",
        "WITHIN",
    }
)

#: Multi-character operators must be matched before their prefixes.
_OPERATORS = ("!=", ">=", "<=", "≠", "≥", "≤", "=", ">", "<", "+", "-", "*", "/")

#: Canonical ASCII spelling of each operator token.
_CANONICAL = {"≠": "!=", "≥": ">=", "≤": "<="}


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    position: int
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r})"


class Lexer:
    """A single-pass tokenizer with line/column tracking for diagnostics."""

    def __init__(self, source: str):
        self.source = source
        self.position = 0
        self.line = 1
        self.column = 1

    def tokens(self) -> list[Token]:
        result: list[Token] = []
        while True:
            token = self._next_token()
            result.append(token)
            if token.kind is TokenKind.EOF:
                return result

    # ------------------------------------------------------------------

    def _error(self, message: str) -> LexerError:
        return LexerError(message, self.position, self.line, self.column)

    def _peek(self) -> str:
        if self.position >= len(self.source):
            return ""
        return self.source[self.position]

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.position : self.position + count]
        for char in text:
            if char == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.position += count
        return text

    def _skip_whitespace(self) -> None:
        while self._peek() and self._peek() in " \t\r\n":
            self._advance()

    def _make(self, kind: TokenKind, text: str, position: int, line: int, column: int) -> Token:
        return Token(kind, text, position, line, column)

    def _next_token(self) -> Token:
        self._skip_whitespace()
        position, line, column = self.position, self.line, self.column
        char = self._peek()
        if not char:
            return self._make(TokenKind.EOF, "", position, line, column)
        if char == "(":
            self._advance()
            return self._make(TokenKind.LPAREN, "(", position, line, column)
        if char == ")":
            self._advance()
            return self._make(TokenKind.RPAREN, ")", position, line, column)
        if char == ",":
            self._advance()
            return self._make(TokenKind.COMMA, ",", position, line, column)
        if char == ".":
            # A dot starting a number (".5") is a literal; otherwise access.
            nxt = self.source[self.position + 1 : self.position + 2]
            if not nxt.isdigit():
                self._advance()
                return self._make(TokenKind.DOT, ".", position, line, column)
        if char.isdigit() or char == ".":
            return self._number(position, line, column)
        if char in ("'", '"'):
            return self._string(position, line, column)
        for operator in _OPERATORS:
            if self.source.startswith(operator, self.position):
                self._advance(len(operator))
                canonical = _CANONICAL.get(operator, operator)
                return self._make(
                    TokenKind.OPERATOR, canonical, position, line, column
                )
        if char.isalpha() or char == "_":
            return self._identifier(position, line, column)
        raise self._error(f"unexpected character {char!r}")

    def _number(self, position: int, line: int, column: int) -> Token:
        text = []
        seen_dot = False
        while self._peek() and (self._peek().isdigit() or self._peek() == "."):
            if self._peek() == ".":
                # Attribute access after an integer ("5.vid") is not a number.
                follower = self.source[self.position + 1 : self.position + 2]
                if seen_dot or not follower.isdigit():
                    break
                seen_dot = True
            text.append(self._advance())
        return self._make(TokenKind.NUMBER, "".join(text), position, line, column)

    def _string(self, position: int, line: int, column: int) -> Token:
        quote = self._advance()
        text = []
        while True:
            char = self._peek()
            if not char:
                raise self._error("unterminated string literal")
            if char == "\n":
                raise self._error("newline in string literal")
            self._advance()
            if char == quote:
                break
            text.append(char)
        return self._make(TokenKind.STRING, "".join(text), position, line, column)

    def _identifier(self, position: int, line: int, column: int) -> Token:
        text = []
        while self._peek() and (self._peek().isalnum() or self._peek() == "_"):
            text.append(self._advance())
        word = "".join(text)
        if word.upper() in KEYWORDS:
            return self._make(
                TokenKind.KEYWORD, word.upper(), position, line, column
            )
        return self._make(TokenKind.IDENT, word, position, line, column)


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; the last token is always EOF."""
    return Lexer(source).tokens()
