"""Recursive-descent parser for the CAESAR event query language (Fig. 4).

Grammar (as implemented; ``WITHIN`` is a library extension bounding trailing
negation, cf. Section 4.1's requirement that a negated event ending a
sequence carries a temporal constraint)::

    Query      := WindowQuery | RetrievalQuery
    WindowQuery:= (INITIATE | SWITCH | TERMINATE) CONTEXT ident
                  Pattern Where? Within? ContextClause?
    Retrieval  := Derive Pattern Where? Within? ContextClause?
    Derive     := DERIVE ident "(" (DeriveArg ("," DeriveArg)*)? ")"
    DeriveArg  := Aggregate | Expr
    Aggregate  := ("COUNT" "(" "*" ")")
                | (("SUM"|"AVG"|"MIN"|"MAX") "(" ident ("." ident)? ")")
    Pattern    := PATTERN Patt
    Patt       := NOT? ident ident? | SEQ "(" Patt ("," Patt)* ")"
    Where      := WHERE Expr
    Within     := WITHIN number
    ContextClause := CONTEXT ident ("," ident)*
    Expr       := Or ; Or := And (OR And)* ; And := NotE (AND NotE)*
    NotE       := NOT NotE | Cmp
    Cmp        := Add (("=" | "!=" | ">" | ">=" | "<" | "<=") Add)?
    Add        := Mul (("+" | "-") Mul)* ; Mul := Primary (("*" | "/") Primary)*
    Primary    := number | string | "(" Expr ")" | ident ("." ident)?
"""

from __future__ import annotations

from repro.algebra.expressions import (
    And,
    AttrRef,
    BinaryOp,
    Constant,
    Expr,
    Not,
    Or,
)
from repro.errors import ParseError
from repro.algebra.aggregate import MATCH_AGGREGATE_FUNCTIONS
from repro.language.ast import (
    AggregateCallNode,
    DeriveClause,
    EventPatternNode,
    PatternNode,
    QueryNode,
    RetrievalQueryNode,
    SeqPatternNode,
    WindowQueryNode,
)
from repro.language.lexer import Token, TokenKind, tokenize

_WINDOW_ACTIONS = ("INITIATE", "SWITCH", "TERMINATE")


class Parser:
    """Parses one CAESAR query from a token list."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._index = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def _check(self, kind: TokenKind, text: str | None = None) -> bool:
        token = self._peek()
        if token.kind is not kind:
            return False
        return text is None or token.text == text

    def _match(self, kind: TokenKind, text: str | None = None) -> Token | None:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, text: str | None = None) -> Token:
        token = self._peek()
        if not self._check(kind, text):
            wanted = text or kind.value
            raise ParseError(
                f"expected {wanted!r} but found {token.text or 'end of input'!r} "
                f"(line {token.line}, column {token.column})"
            )
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        return self._expect(TokenKind.KEYWORD, word)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def parse_query(self) -> QueryNode:
        token = self._peek()
        if token.kind is TokenKind.KEYWORD and token.text in _WINDOW_ACTIONS:
            query = self._window_query()
        elif token.kind is TokenKind.KEYWORD and token.text == "DERIVE":
            query = self._retrieval_query()
        else:
            raise ParseError(
                f"a query starts with INITIATE, SWITCH, TERMINATE or DERIVE; "
                f"found {token.text or 'end of input'!r} "
                f"(line {token.line}, column {token.column})"
            )
        trailing = self._peek()
        if trailing.kind is not TokenKind.EOF:
            raise ParseError(
                f"unexpected input after query: {trailing.text!r} "
                f"(line {trailing.line}, column {trailing.column})"
            )
        return query

    def _window_query(self) -> WindowQueryNode:
        action = self._advance().text
        self._expect_keyword("CONTEXT")
        target = self._expect(TokenKind.IDENT).text
        pattern = self._pattern_clause()
        where = self._where_clause()
        within = self._within_clause()
        contexts = self._context_clause()
        return WindowQueryNode(
            action=action,
            target_context=target,
            pattern=pattern,
            where=where,
            contexts=contexts,
            within=within,
        )

    def _retrieval_query(self) -> RetrievalQueryNode:
        derive = self._derive_clause()
        pattern = self._pattern_clause()
        where = self._where_clause()
        within = self._within_clause()
        contexts = self._context_clause()
        return RetrievalQueryNode(
            derive=derive,
            pattern=pattern,
            where=where,
            contexts=contexts,
            within=within,
        )

    # ------------------------------------------------------------------
    # clauses
    # ------------------------------------------------------------------

    def _derive_clause(self) -> DeriveClause:
        self._expect_keyword("DERIVE")
        type_name = self._expect(TokenKind.IDENT).text
        args: list[Expr | AggregateCallNode] = []
        if self._match(TokenKind.LPAREN):
            if not self._check(TokenKind.RPAREN):
                args.append(self._derive_arg())
                while self._match(TokenKind.COMMA):
                    args.append(self._derive_arg())
            self._expect(TokenKind.RPAREN)
        return DeriveClause(type_name, tuple(args))

    def _derive_arg(self) -> Expr | AggregateCallNode:
        """One DERIVE argument: an aggregate call or a plain expression.

        Aggregate names are plain identifiers, not keywords, so ``COUNT``
        is only an aggregate when followed by ``(`` — ``DERIVE Out(count)``
        still projects an attribute named ``count``.
        """
        token = self._peek()
        if (
            token.kind is TokenKind.IDENT
            and token.text.lower() in MATCH_AGGREGATE_FUNCTIONS
            and self._tokens[self._index + 1].kind is TokenKind.LPAREN
        ):
            return self._aggregate_call()
        return self._expression()

    def _aggregate_call(self) -> AggregateCallNode:
        func = self._advance().text.lower()
        self._expect(TokenKind.LPAREN)
        if self._match(TokenKind.OPERATOR, "*"):
            if func != "count":
                raise ParseError(
                    f"{func.upper()}(*) is not valid; only COUNT takes '*'"
                )
            self._expect(TokenKind.RPAREN)
            return AggregateCallNode(func)
        if func == "count":
            token = self._peek()
            raise ParseError(
                f"COUNT over matches takes '*', found "
                f"{token.text or 'end of input'!r} "
                f"(line {token.line}, column {token.column})"
            )
        first = self._expect(TokenKind.IDENT).text
        if self._match(TokenKind.DOT):
            second = self._expect(TokenKind.IDENT).text
            var, attribute = first, second
        else:
            var, attribute = "", first
        self._expect(TokenKind.RPAREN)
        return AggregateCallNode(func, var=var, attribute=attribute)

    def _pattern_clause(self) -> PatternNode:
        self._expect_keyword("PATTERN")
        return self._pattern()

    def _pattern(self) -> PatternNode:
        if self._match(TokenKind.KEYWORD, "SEQ"):
            self._expect(TokenKind.LPAREN)
            elements = [self._pattern()]
            while self._match(TokenKind.COMMA):
                elements.append(self._pattern())
            self._expect(TokenKind.RPAREN)
            return SeqPatternNode(tuple(elements))
        negated = self._match(TokenKind.KEYWORD, "NOT") is not None
        type_name = self._expect(TokenKind.IDENT).text
        var = ""
        if self._check(TokenKind.IDENT):
            var = self._advance().text
        return EventPatternNode(type_name=type_name, var=var, negated=negated)

    def _where_clause(self) -> Expr | None:
        if self._match(TokenKind.KEYWORD, "WHERE"):
            return self._expression()
        return None

    def _within_clause(self) -> float | None:
        if self._match(TokenKind.KEYWORD, "WITHIN"):
            token = self._expect(TokenKind.NUMBER)
            value = float(token.text)
            return int(value) if value.is_integer() else value
        return None

    def _context_clause(self) -> tuple[str, ...]:
        if not self._match(TokenKind.KEYWORD, "CONTEXT"):
            return ()
        names = [self._expect(TokenKind.IDENT).text]
        while self._match(TokenKind.COMMA):
            names.append(self._expect(TokenKind.IDENT).text)
        return tuple(names)

    # ------------------------------------------------------------------
    # expressions (precedence climbing)
    # ------------------------------------------------------------------

    def _expression(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        left = self._and_expr()
        while self._match(TokenKind.KEYWORD, "OR"):
            left = Or(left, self._and_expr())
        return left

    def _and_expr(self) -> Expr:
        left = self._not_expr()
        while self._match(TokenKind.KEYWORD, "AND"):
            left = And(left, self._not_expr())
        return left

    def _not_expr(self) -> Expr:
        if self._match(TokenKind.KEYWORD, "NOT"):
            return Not(self._not_expr())
        return self._cmp_expr()

    def _cmp_expr(self) -> Expr:
        left = self._add_expr()
        token = self._peek()
        if token.kind is TokenKind.OPERATOR and token.text in (
            "=", "!=", ">", ">=", "<", "<=",
        ):
            op = self._advance().text
            return BinaryOp(op, left, self._add_expr())
        return left

    def _add_expr(self) -> Expr:
        left = self._mul_expr()
        while True:
            token = self._peek()
            if token.kind is TokenKind.OPERATOR and token.text in ("+", "-"):
                op = self._advance().text
                left = BinaryOp(op, left, self._mul_expr())
            else:
                return left

    def _mul_expr(self) -> Expr:
        left = self._unary_expr()
        while True:
            token = self._peek()
            if token.kind is TokenKind.OPERATOR and token.text in ("*", "/"):
                op = self._advance().text
                left = BinaryOp(op, left, self._unary_expr())
            else:
                return left

    def _unary_expr(self) -> Expr:
        return self._primary()

    def _primary(self) -> Expr:
        token = self._peek()
        if token.kind is TokenKind.NUMBER:
            self._advance()
            value = float(token.text)
            return Constant(int(value) if value.is_integer() else value)
        if token.kind is TokenKind.STRING:
            self._advance()
            return Constant(token.text)
        if self._match(TokenKind.LPAREN):
            inner = self._expression()
            self._expect(TokenKind.RPAREN)
            return inner
        if token.kind is TokenKind.IDENT:
            first = self._advance().text
            if self._match(TokenKind.DOT):
                second = self._expect(TokenKind.IDENT).text
                return AttrRef(first, second)
            return AttrRef("", first)
        raise ParseError(
            f"expected an expression, found {token.text or 'end of input'!r} "
            f"(line {token.line}, column {token.column})"
        )


def parse(source: str) -> QueryNode:
    """Parse one CAESAR query from text."""
    return Parser(tokenize(source)).parse_query()
