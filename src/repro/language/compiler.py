"""Compiler: CAESAR query AST → :class:`~repro.core.queries.EventQuery`.

Besides the straightforward clause mapping, the compiler performs the
WHERE-split that makes negation executable: conjuncts of the WHERE predicate
that reference a negated pattern variable become *guards* of that negated
element (a negated event only blocks a match when its guard holds), while
the remaining conjuncts stay in the query's filter predicate.

Example — the paper's query 2::

    DERIVE NewTravelingCar(p2.vid, p2.xway, p2.dir, p2.seg,
                           p2.lane, p2.pos, p2.sec)
    PATTERN SEQ(NOT PositionReport p1, PositionReport p2)
    WHERE p1.sec + 30 = p2.sec AND p1.vid = p2.vid AND p2.lane != 'exit'
    CONTEXT congestion

compiles to a :class:`~repro.algebra.pattern.Sequence` whose leading
``NOT PositionReport p1`` carries the guard
``p1.sec + 30 = p2.sec AND p1.vid = p2.vid``, with the residual filter
``p2.lane != 'exit'``.
"""

from __future__ import annotations

from typing import Mapping

from repro.algebra.aggregate import MatchAggregate
from repro.algebra.expressions import AttrRef, Expr, conjoin, conjuncts
from repro.algebra.pattern import EventMatch, NegatedSpec, PatternSpec, Sequence
from repro.core.queries import EventQuery, QueryAction
from repro.errors import CompileError
from repro.events.types import EventType
from repro.language.ast import (
    AggregateCallNode,
    EventPatternNode,
    PatternNode,
    QueryNode,
    RetrievalQueryNode,
    SeqPatternNode,
    WindowQueryNode,
)
from repro.language.parser import parse

_ACTIONS = {
    "INITIATE": QueryAction.INITIATE,
    "SWITCH": QueryAction.SWITCH,
    "TERMINATE": QueryAction.TERMINATE,
}


def _assign_variables(node: PatternNode) -> PatternNode:
    """Give every unnamed element of a multi-element SEQ a fresh variable."""
    if not isinstance(node, SeqPatternNode):
        return node
    used = {e.var for e in node.elements if isinstance(e, EventPatternNode) and e.var}
    counter = 0
    elements: list[PatternNode] = []
    for element in node.elements:
        if isinstance(element, SeqPatternNode):
            elements.append(_assign_variables(element))
            continue
        assert isinstance(element, EventPatternNode)
        if element.var:
            elements.append(element)
            continue
        counter += 1
        while f"_{counter}" in used:
            counter += 1
        used.add(f"_{counter}")
        elements.append(
            EventPatternNode(element.type_name, f"_{counter}", element.negated)
        )
    return SeqPatternNode(tuple(elements))


def _negated_vars(node: PatternNode) -> set[str]:
    if isinstance(node, EventPatternNode):
        return {node.var} if node.negated and node.var else set()
    assert isinstance(node, SeqPatternNode)
    result: set[str] = set()
    for element in node.elements:
        result |= _negated_vars(element)
    return result


def _split_where(
    where: Expr | None, negated_vars: set[str]
) -> tuple[Expr | None, dict[str, Expr]]:
    """Partition WHERE conjuncts into residual filter and per-variable guards."""
    if where is None:
        return None, {}
    residual: list[Expr] = []
    guards: dict[str, list[Expr]] = {}
    for conjunct in conjuncts(where):
        referenced = conjunct.variables() & negated_vars
        if not referenced:
            residual.append(conjunct)
        elif len(referenced) == 1:
            guards.setdefault(referenced.pop(), []).append(conjunct)
        else:
            raise CompileError(
                f"WHERE conjunct {conjunct} references multiple negated "
                f"variables {sorted(referenced)}; a guard may constrain only "
                "one negated element"
            )
    residual_expr = conjoin(residual) if residual else None
    guard_exprs = {var: conjoin(exprs) for var, exprs in guards.items()}
    return residual_expr, guard_exprs


def _build_pattern(
    node: PatternNode,
    guards: Mapping[str, Expr],
    within: float | None,
) -> PatternSpec:
    if isinstance(node, EventPatternNode):
        if node.negated:
            raise CompileError(
                "a pattern cannot consist of a single negated element; "
                "negation needs a positive element to anchor it"
            )
        return EventMatch(node.type_name, node.var)
    assert isinstance(node, SeqPatternNode)
    elements: list[PatternSpec] = []
    flat = node.elements
    last_positive = max(
        (i for i, e in enumerate(flat)
         if isinstance(e, EventPatternNode) and not e.negated),
        default=-1,
    )
    if last_positive < 0:
        raise CompileError("SEQ needs at least one positive element")
    for index, element in enumerate(flat):
        if isinstance(element, SeqPatternNode):
            raise CompileError("nested SEQ is not supported; flatten the pattern")
        assert isinstance(element, EventPatternNode)
        if not element.negated:
            elements.append(EventMatch(element.type_name, element.var))
            continue
        guard = guards.get(element.var)
        trailing = index > last_positive
        if trailing and within is None:
            raise CompileError(
                f"trailing negation NOT {element.type_name} requires a "
                "WITHIN clause bounding the interval in which the negated "
                "event must not occur (Section 4.1)"
            )
        elements.append(
            NegatedSpec(
                EventMatch(element.type_name, element.var),
                guard=guard,
                within=within if trailing else None,
            )
        )
    return Sequence(tuple(elements))


def compile_query(
    node: QueryNode,
    *,
    name: str = "query",
    types: Mapping[str, EventType] | None = None,
) -> EventQuery:
    """Lower a parsed query AST to an :class:`EventQuery` descriptor.

    ``types`` maps event type names to declared :class:`EventType` objects;
    derived types not found there are created schemaless on the fly.
    """
    types = dict(types or {})
    pattern_node = _assign_variables(node.pattern)
    negated = _negated_vars(pattern_node)
    residual_where, guards = _split_where(node.where, negated)
    unused_guards = set(guards) - {
        v for v in negated
    }
    if unused_guards:
        raise CompileError(f"guards for unknown variables: {sorted(unused_guards)}")
    pattern = _build_pattern(pattern_node, guards, node.within)

    if isinstance(node, WindowQueryNode):
        return EventQuery(
            name=name,
            action=_ACTIONS[node.action],
            pattern=pattern,
            contexts=node.contexts,
            where=residual_where,
            target_context=node.target_context,
        )
    assert isinstance(node, RetrievalQueryNode)
    derive_type = types.get(node.derive.type_name) or EventType(node.derive.type_name)
    aggregate_args = [
        arg for arg in node.derive.args if isinstance(arg, AggregateCallNode)
    ]
    if aggregate_args:
        if len(aggregate_args) != len(node.derive.args):
            raise CompileError(
                f"DERIVE {node.derive.type_name} mixes aggregate calls and "
                "plain expressions; a clause is either all aggregates or "
                "all per-match expressions"
            )
        return EventQuery(
            name=name,
            action=QueryAction.DERIVE,
            pattern=pattern,
            contexts=node.contexts,
            where=residual_where,
            derive_type=derive_type,
            derive_aggregates=_lower_aggregates(aggregate_args, pattern),
        )
    items: list[tuple[str, Expr]] = []
    used_names: set[str] = set()
    for index, arg in enumerate(node.derive.args):
        if isinstance(arg, AttrRef):
            base = arg.attr
        else:
            base = f"arg{index}"
        attr_name = base
        suffix = 1
        while attr_name in used_names:
            suffix += 1
            attr_name = f"{base}{suffix}"
        used_names.add(attr_name)
        items.append((attr_name, arg))
    return EventQuery(
        name=name,
        action=QueryAction.DERIVE,
        pattern=pattern,
        contexts=node.contexts,
        where=residual_where,
        derive_type=derive_type,
        derive_items=tuple(items),
    )


def _lower_aggregates(
    args: list[AggregateCallNode], pattern: PatternSpec
) -> tuple[MatchAggregate, ...]:
    """Lower aggregate calls, naming output attributes with deduplication.

    ``SUM(a.value)`` names its column ``value`` (``value2`` on a clash);
    ``COUNT(*)`` names its column ``count``.  Aggregated variables must be
    positive pattern variables — negated elements never appear in a match.
    """
    if isinstance(pattern, Sequence):
        positive_vars = {e.var for e in pattern.positives}
    else:
        assert isinstance(pattern, EventMatch)
        positive_vars = {pattern.var}
    aggregates: list[MatchAggregate] = []
    used_names: set[str] = set()
    for arg in args:
        if arg.attribute is not None and arg.var not in positive_vars:
            raise CompileError(
                f"aggregate {arg} references unknown pattern variable "
                f"{arg.var!r}; positive variables: {sorted(positive_vars)}"
            )
        base = arg.attribute if arg.attribute is not None else arg.func
        attr_name = base
        suffix = 1
        while attr_name in used_names:
            suffix += 1
            attr_name = f"{base}{suffix}"
        used_names.add(attr_name)
        aggregates.append(
            MatchAggregate(
                name=attr_name,
                func=arg.func,
                var=arg.var if arg.attribute is not None else None,
                attribute=arg.attribute,
            )
        )
    return tuple(aggregates)


def parse_query(
    source: str,
    *,
    name: str = "query",
    types: Mapping[str, EventType] | None = None,
) -> EventQuery:
    """Parse and compile one CAESAR query from text."""
    return compile_query(parse(source), name=name, types=types)
