"""The CAESAR event query language (Fig. 4).

The language has seven clause kinds (Definition 3): context initiation,
switch and termination; complex event derivation (DERIVE); event pattern
matching (PATTERN); event filtering (WHERE); and context window
specification (CONTEXT).  This package provides:

* :mod:`repro.language.lexer` — tokenizer;
* :mod:`repro.language.parser` — recursive-descent parser to an AST;
* :mod:`repro.language.compiler` — AST to
  :class:`~repro.core.queries.EventQuery` descriptors, including the
  WHERE-splitting that attaches negation guards to NOT elements.

The convenience entry point is :func:`parse_query`::

    query = parse_query(
        "DERIVE TollNotification(p.vid, p.sec, 5) "
        "PATTERN NewTravelingCar p CONTEXT congestion"
    )
"""

from repro.language.lexer import Lexer, Token, TokenKind, tokenize
from repro.language.parser import Parser, parse
from repro.language.compiler import compile_query, parse_query

__all__ = [
    "Lexer",
    "Parser",
    "Token",
    "TokenKind",
    "compile_query",
    "parse",
    "parse_query",
    "tokenize",
]
