"""Abstract syntax tree for CAESAR queries (grammar of Fig. 4).

The AST is deliberately close to the grammar: a query is either a *window*
query (INITIATE/SWITCH/TERMINATE CONTEXT plus the clauses describing when)
or a *retrieval* query (DERIVE ... PATTERN ... WHERE? ... CONTEXT?).  The
compiler (:mod:`repro.language.compiler`) lowers the AST to
:class:`~repro.core.queries.EventQuery` descriptors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.algebra.expressions import Expr


@dataclass(frozen=True)
class PatternNode:
    """Base class for pattern AST nodes (``Patt`` in the grammar)."""


@dataclass(frozen=True)
class EventPatternNode(PatternNode):
    """``NOT? EventType Var?``"""

    type_name: str
    var: str = ""
    negated: bool = False

    def __str__(self) -> str:
        prefix = "NOT " if self.negated else ""
        suffix = f" {self.var}" if self.var else ""
        return f"{prefix}{self.type_name}{suffix}"


@dataclass(frozen=True)
class SeqPatternNode(PatternNode):
    """``SEQ( (Patt ,?)+ )``"""

    elements: tuple[PatternNode, ...]

    def __str__(self) -> str:
        return f"SEQ({', '.join(str(e) for e in self.elements)})"


@dataclass(frozen=True)
class AggregateCallNode:
    """``FUNC(var.attr)`` or ``COUNT(*)`` inside a DERIVE argument list.

    ``func`` is the lowercase function name; ``var``/``attribute`` are empty
    / ``None`` for ``COUNT(*)``.  Not an expression node — aggregates are
    only legal as DERIVE arguments, and a clause is either all aggregates
    or all plain expressions (the compiler enforces the split).
    """

    func: str
    var: str = ""
    attribute: str | None = None

    def __str__(self) -> str:
        if self.attribute is None:
            return f"{self.func.upper()}(*)"
        target = f"{self.var}.{self.attribute}" if self.var else self.attribute
        return f"{self.func.upper()}({target})"


@dataclass(frozen=True)
class DeriveClause:
    """``DERIVE EventType(arg, ...)`` — the output type and its arguments.

    Arguments are either plain expressions (per-match projection) or
    :class:`AggregateCallNode` calls (aggregation over all matches).
    """

    type_name: str
    args: tuple[Union[Expr, AggregateCallNode], ...]

    def __str__(self) -> str:
        return f"DERIVE {self.type_name}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class WindowQueryNode:
    """A context deriving query: (INITIATE|SWITCH|TERMINATE) CONTEXT c ..."""

    action: str  # "INITIATE" | "SWITCH" | "TERMINATE"
    target_context: str
    pattern: PatternNode
    where: Expr | None = None
    contexts: tuple[str, ...] = ()
    within: float | None = None

    def __str__(self) -> str:
        parts = [f"{self.action} CONTEXT {self.target_context}",
                 f"PATTERN {self.pattern}"]
        if self.where is not None:
            parts.append(f"WHERE {self.where}")
        if self.within is not None:
            parts.append(f"WITHIN {self.within}")
        if self.contexts:
            parts.append(f"CONTEXT {', '.join(self.contexts)}")
        return " ".join(parts)


@dataclass(frozen=True)
class RetrievalQueryNode:
    """A context processing query: DERIVE ... PATTERN ... WHERE? CONTEXT?"""

    derive: DeriveClause
    pattern: PatternNode
    where: Expr | None = None
    contexts: tuple[str, ...] = ()
    within: float | None = None

    def __str__(self) -> str:
        parts = [str(self.derive), f"PATTERN {self.pattern}"]
        if self.where is not None:
            parts.append(f"WHERE {self.where}")
        if self.within is not None:
            parts.append(f"WITHIN {self.within}")
        if self.contexts:
            parts.append(f"CONTEXT {', '.join(self.contexts)}")
        return " ".join(parts)


QueryNode = Union[WindowQueryNode, RetrievalQueryNode]
