"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``describe-traffic``   print the Linear Road CAESAR model (textual Figure 1)
``describe-pam``       print the PAM CAESAR model
``dot-traffic``        print the traffic model as a Graphviz digraph
``dot-pam``            print the PAM model as a Graphviz digraph
``run-traffic``        run the traffic scenario and print the report
``run-pam``            run the health-monitoring scenario and print the report
``validate-traffic``   run the traffic scenario and validate its outputs
``parse``              parse a CAESAR query from the argument and dump it
``stats``              run a scenario with observability on and dump metrics
``diff``               differential correctness harness (see docs/difftest.md)
``serve``              long-lived streaming service: line-delimited JSON
                       events on stdin, derived events on stdout, graceful
                       drain on EOF/SIGTERM, online deployment ops; with
                       ``--listen HOST:PORT`` / ``--http HOST:PORT`` the
                       same protocol is served over TCP / HTTP instead
                       (see ``repro.net``)
"""

from __future__ import annotations

import argparse
import sys

from repro.core.viz import to_dot, to_text
from repro.errors import CaesarError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CAESAR: context-aware event stream analytics "
        "(EDBT 2016 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("describe-traffic", help="print the traffic model")
    sub.add_parser("describe-pam", help="print the PAM model")
    sub.add_parser("dot-traffic", help="traffic model as Graphviz DOT")
    sub.add_parser("dot-pam", help="PAM model as Graphviz DOT")

    run_traffic = sub.add_parser("run-traffic", help="run the traffic scenario")
    run_traffic.add_argument("--roads", type=int, default=1)
    run_traffic.add_argument("--segments", type=int, default=3)
    run_traffic.add_argument("--minutes", type=int, default=12)
    run_traffic.add_argument("--seed", type=int, default=7)
    run_traffic.add_argument(
        "--baseline", action="store_true",
        help="use the context-independent engine",
    )

    run_pam = sub.add_parser("run-pam", help="run the PAM scenario")
    run_pam.add_argument("--subjects", type=int, default=4)
    run_pam.add_argument("--minutes", type=int, default=12)
    run_pam.add_argument("--seed", type=int, default=5)
    run_pam.add_argument("--baseline", action="store_true")

    validate = sub.add_parser(
        "validate-traffic",
        help="run the traffic scenario and validate outputs against an "
        "independent recomputation (the Linear Road correctness bar)",
    )
    validate.add_argument("--roads", type=int, default=1)
    validate.add_argument("--segments", type=int, default=2)
    validate.add_argument("--minutes", type=int, default=12)
    validate.add_argument("--seed", type=int, default=7)

    parse_cmd = sub.add_parser("parse", help="parse one CAESAR query")
    parse_cmd.add_argument("query", help="the query text")

    stats = sub.add_parser(
        "stats",
        help="run a scenario with observability enabled and print metrics",
    )
    stats.add_argument(
        "--scenario", choices=("traffic", "pam"), default="traffic"
    )
    stats.add_argument("--roads", type=int, default=1)
    stats.add_argument("--segments", type=int, default=3)
    stats.add_argument("--subjects", type=int, default=4)
    stats.add_argument("--minutes", type=int, default=12)
    stats.add_argument("--seed", type=int, default=7)
    stats.add_argument(
        "--backend", default=None,
        help="execution backend (serial | thread | process)",
    )
    stats.add_argument(
        "--format", choices=("human", "prometheus", "json"), default="human"
    )
    stats.add_argument(
        "--trace", metavar="FILE", default=None,
        help="also record trace spans and write Chrome trace JSON to FILE",
    )
    stats.add_argument(
        "--timeline", action="store_true",
        help="append the ASCII context timeline after the metrics",
    )

    diff = sub.add_parser(
        "diff",
        help="run the differential correctness harness: pairs of "
        "configurations that must agree (optimizer on/off, context-aware "
        "vs baseline, backends, checkpoint/restore, reordered arrival)",
    )
    diff.add_argument(
        "--scenario",
        choices=("traffic", "pam", "threshold", "all"),
        default="all",
        help="workload to diff (default: all)",
    )
    diff.add_argument(
        "--axis",
        choices=("optimizer", "context", "backend", "checkpoint",
                 "reorder", "shed", "aggregate", "service", "all"),
        default="all",
        help="equivalence axis to check (default: all)",
    )
    diff.add_argument("--seed", type=int, default=7)
    diff.add_argument(
        "--scale", type=float, default=1.0,
        help="stream length multiplier (CI uses a small budget like 0.5)",
    )
    diff.add_argument(
        "--inject-divergence", action="store_true",
        help="drop one event from one side to prove the harness catches "
        "and minimizes a real disagreement (exits non-zero)",
    )
    diff.add_argument(
        "--no-shrink", action="store_true",
        help="report the first divergence without ddmin-minimizing "
        "the failing stream",
    )

    serve = sub.add_parser(
        "serve",
        help="long-lived streaming service: line-delimited JSON events on "
        "stdin, derived events on stdout; {\"op\": \"deploy\"|\"retire\"} "
        "lines manage queries online; drains gracefully on EOF/SIGTERM",
    )
    serve.add_argument(
        "--scenario",
        choices=("traffic", "pam", "threshold"),
        default="traffic",
        help="model + partitioner + type registry to serve (default: traffic)",
    )
    serve.add_argument(
        "--max-delay", type=float, default=0,
        help="out-of-order tolerance in stream time units (older events "
        "are dead-lettered as late)",
    )
    serve.add_argument(
        "--queue-size", type=int, default=1024,
        help="ingestion queue bound; a full queue blocks stdin reading "
        "(backpressure)",
    )
    serve.add_argument(
        "--backend", default=None,
        help="execution backend (serial | thread)",
    )
    serve.add_argument(
        "--summary", action="store_true",
        help="print the final report summary to stderr on exit",
    )
    serve.add_argument(
        "--listen", metavar="HOST:PORT", default=None,
        help="serve the line protocol over TCP instead of stdin; "
        "PORT 0 picks an ephemeral port (announced on stderr)",
    )
    serve.add_argument(
        "--http", metavar="HOST:PORT", default=None,
        help="also serve HTTP: POST /events (NDJSON), GET /healthz, "
        "GET /metrics (Prometheus text)",
    )
    serve.add_argument(
        "--read-timeout", type=float, default=300.0,
        help="per-connection idle bound in seconds for --listen "
        "(0 disables)",
    )
    return parser


def _cmd_describe_traffic() -> int:
    from repro.linearroad.queries import build_traffic_model

    print(to_text(build_traffic_model()))
    return 0


def _cmd_describe_pam() -> int:
    from repro.pam.queries import build_pam_model

    print(to_text(build_pam_model()))
    return 0


def _cmd_dot_traffic() -> int:
    from repro.linearroad.queries import build_traffic_model

    print(to_dot(build_traffic_model(), name="traffic"))
    return 0


def _cmd_dot_pam() -> int:
    from repro.pam.queries import build_pam_model

    print(to_dot(build_pam_model(), name="pam"))
    return 0


def _cmd_run_traffic(args: argparse.Namespace) -> int:
    from repro.linearroad.generator import (
        LinearRoadConfig,
        generate_stream,
        paper_timeline_schedules,
    )
    from repro.linearroad.queries import (
        build_traffic_model,
        segment_partitioner,
    )
    from repro.runtime.baseline import ContextIndependentEngine
    from repro.runtime.engine import CaesarEngine

    config = paper_timeline_schedules(
        LinearRoadConfig(
            num_roads=args.roads,
            segments_per_road=args.segments,
            duration_minutes=args.minutes,
            seed=args.seed,
        )
    )
    engine_class = (
        ContextIndependentEngine if args.baseline else CaesarEngine
    )
    engine = engine_class(
        build_traffic_model(),
        partition_by=segment_partitioner,
        retention=120,
    )
    report = engine.run(generate_stream(config))
    print(report.summary())
    print("outputs:", dict(sorted(report.outputs_by_type.items())))
    return 0


def _cmd_run_pam(args: argparse.Namespace) -> int:
    from repro.pam.generator import PamConfig, generate_pam_stream
    from repro.pam.queries import build_pam_model, subject_partitioner
    from repro.runtime.baseline import ContextIndependentEngine
    from repro.runtime.engine import CaesarEngine

    config = PamConfig(
        num_subjects=args.subjects,
        duration_minutes=args.minutes,
        seed=args.seed,
    )
    engine_class = (
        ContextIndependentEngine if args.baseline else CaesarEngine
    )
    engine = engine_class(
        build_pam_model(), partition_by=subject_partitioner, retention=60
    )
    report = engine.run(generate_pam_stream(config))
    print(report.summary())
    print("outputs:", dict(sorted(report.outputs_by_type.items())))
    return 0


def _cmd_validate_traffic(args: argparse.Namespace) -> int:
    from repro.linearroad.generator import (
        LinearRoadConfig,
        generate_stream,
        paper_timeline_schedules,
    )
    from repro.linearroad.queries import (
        build_traffic_model,
        segment_partitioner,
    )
    from repro.linearroad.validation import validate_report
    from repro.runtime.engine import CaesarEngine

    config = paper_timeline_schedules(
        LinearRoadConfig(
            num_roads=args.roads,
            segments_per_road=args.segments,
            duration_minutes=args.minutes,
            seed=args.seed,
        )
    )
    engine = CaesarEngine(
        build_traffic_model(),
        partition_by=segment_partitioner,
        retention=120,
    )
    report = engine.run(generate_stream(config))
    result = validate_report(generate_stream(config), report)
    print(result.summary())
    return 0 if result.passed else 1


def _cmd_parse(args: argparse.Namespace) -> int:
    from repro.language import parse_query
    from repro.optimizer.planner import build_query_plan
    from repro.optimizer.pushdown import push_context_windows_down

    query = parse_query(args.query, name="cli")
    print(query)
    context = query.contexts[0] if query.contexts else "default"
    plan = push_context_windows_down(build_query_plan(query, context))
    print()
    print(plan.describe())
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    from repro.api import EngineConfig, create_engine
    from repro.observability import (
        Observability,
        chrome_trace,
        render_stats,
        to_json_snapshot,
        to_prometheus,
    )
    from repro.runtime.reporting import render_timeline

    if args.scenario == "traffic":
        from repro.linearroad.generator import (
            LinearRoadConfig,
            generate_stream,
            paper_timeline_schedules,
        )
        from repro.linearroad.queries import (
            build_traffic_model,
            segment_partitioner,
        )

        scenario_config = paper_timeline_schedules(
            LinearRoadConfig(
                num_roads=args.roads,
                segments_per_road=args.segments,
                duration_minutes=args.minutes,
                seed=args.seed,
            )
        )
        model = build_traffic_model()
        partitioner = segment_partitioner
        stream = generate_stream(scenario_config)
        retention = 120
    else:
        from repro.pam.generator import PamConfig, generate_pam_stream
        from repro.pam.queries import build_pam_model, subject_partitioner

        scenario_config = PamConfig(
            num_subjects=args.subjects,
            duration_minutes=args.minutes,
            seed=args.seed,
        )
        model = build_pam_model()
        partitioner = subject_partitioner
        stream = generate_pam_stream(scenario_config)
        retention = 60

    observability = Observability(detailed=True, tracing=args.trace is not None)
    engine = create_engine(
        model,
        EngineConfig(
            backend=args.backend,
            observability=observability,
            partition_by=partitioner,
            retention=retention,
        ),
    )
    report = engine.run(stream)

    if args.format == "prometheus":
        print(to_prometheus(observability.registry), end="")
    elif args.format == "json":
        print(json.dumps(to_json_snapshot(observability), indent=2))
    else:
        print(report.summary())
        print()
        print(render_stats(observability.registry, title=args.scenario))
    if args.timeline:
        print()
        print(render_timeline(report))
    if args.trace is not None:
        with open(args.trace, "w", encoding="utf-8") as handle:
            handle.write(chrome_trace(observability.recorder))
        print(f"trace written to {args.trace}", file=sys.stderr)
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.difftest import AXES, comparisons_for, get_scenario, run_comparison

    scenario_names = (
        ("traffic", "pam", "threshold")
        if args.scenario == "all"
        else (args.scenario,)
    )
    axes = AXES if args.axis == "all" else (args.axis,)
    failures = 0
    checks = 0
    for name in scenario_names:
        scenario = get_scenario(name)
        events = scenario.make_events(args.seed, args.scale)
        print(
            f"[{name}] {scenario.description}: {len(events)} events "
            f"(seed={args.seed}, scale={args.scale})"
        )
        for axis in axes:
            for comparison in comparisons_for(scenario, axis):
                checks += 1
                result = run_comparison(
                    scenario,
                    comparison,
                    events,
                    shrink=not args.no_shrink,
                    inject_divergence=args.inject_divergence,
                )
                status = "ok" if result.passed else "DIVERGED"
                print(f"  {axis:10s} {comparison.label:24s} {status}")
                if not result.passed:
                    failures += 1
                    indent = "    "
                    print(indent + result.divergence.describe().replace(
                        "\n", "\n" + indent))
                    if result.minimized is not None:
                        print(
                            f"{indent}minimized failing stream "
                            f"({len(result.minimized)} of "
                            f"{result.events_run} events):"
                        )
                        for event in result.minimized:
                            print(f"{indent}  {event!r}")
    verdict = "diverged" if failures else "agreed"
    print(f"{checks} comparisons, {failures} diverged -> {verdict}")
    return 1 if failures else 0


class _Shutdown(Exception):
    """SIGTERM/SIGINT during ``serve`` — triggers the graceful drain."""


def _serve_type_registry(scenario_name: str) -> dict:
    if scenario_name == "traffic":
        from repro.linearroad.schema import type_registry

        return type_registry()
    if scenario_name == "pam":
        from repro.pam.schema import type_registry

        return type_registry()
    from repro.difftest.scenarios import DIFF_READING

    return {DIFF_READING.name: DIFF_READING}


def _parse_hostport(value: str) -> tuple[str, int]:
    host, sep, port = value.rpartition(":")
    if not sep or not port.isdigit():
        raise CaesarError(f"expected HOST:PORT, got {value!r}")
    return host or "127.0.0.1", int(port)


def _serve_network(args: argparse.Namespace, engine, types: dict) -> int:
    """``repro serve --listen/--http``: network front ends, no stdin loop.

    Runs until SIGTERM/SIGINT or an inline ``{"op": "stop"}``, then
    drains gracefully and (with ``--summary``) reports to stderr.
    Bound addresses are announced on stderr as ``listening on H:P`` /
    ``http on H:P`` so callers can bind to port 0 and discover.
    """
    import signal
    import threading

    from repro.net import HttpFrontEnd, NetServer, TypeResolver
    from repro.runtime.service import EngineService

    resolver = TypeResolver(types)
    emit_sinks: list = []

    def emit(event):
        for sink in emit_sinks:
            sink(event)

    service = EngineService(
        engine,
        max_delay=args.max_delay,
        queue_size=args.queue_size,
        on_emit=emit,
    )
    server = None
    front = None

    def on_signal(signum, frame):  # pragma: no cover - signal timing
        raise _Shutdown()

    # handlers go in before the bound addresses are announced: a client
    # that reads the announcement may send SIGTERM immediately, and the
    # default handler would kill the process instead of draining
    previous = {
        sig: signal.signal(sig, on_signal)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        try:
            if args.listen:
                host, port = _parse_hostport(args.listen)
                server = NetServer(
                    service,
                    host=host,
                    port=port,
                    types=resolver,
                    read_timeout=args.read_timeout or None,
                )
                emit_sinks.append(server.emit)
                bound = server.start()
                print(f"listening on {bound[0]}:{bound[1]}", file=sys.stderr)
            else:
                # http-only: no subscription channel, emissions go to
                # stdout exactly like the stdin mode
                import json as _json

                def stdout_emit(event):
                    sys.stdout.write(_json.dumps({
                        "type": event.type_name,
                        "time": event.timestamp,
                        "payload": dict(event.payload),
                    }, default=str) + "\n")
                    sys.stdout.flush()

                emit_sinks.append(stdout_emit)
            if args.http:
                host, port = _parse_hostport(args.http)
                front = HttpFrontEnd(
                    service,
                    host=host,
                    port=port,
                    resolve_type=resolver,
                    sequencer=(
                        server.sequencer if server is not None else None
                    ),
                )
                bound = front.start()
                print(f"http on {bound[0]}:{bound[1]}", file=sys.stderr)
            sys.stderr.flush()
            stopper = (
                server.stopped if server is not None else threading.Event()
            )
            stopper.wait()
            print("stop requested, draining", file=sys.stderr)
        except _Shutdown:
            print("signal received, draining", file=sys.stderr)
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        if front is not None:
            front.shutdown()
        if server is not None:
            report = server.shutdown(drain=True)
        else:
            report = service.stop()
        engine.close()
    if args.summary:
        print(report.summary(), file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import json
    import signal

    from repro.api import EngineConfig, create_engine
    from repro.difftest.scenarios import get_scenario
    from repro.events.event import Event
    from repro.events.types import EventType
    from repro.language import parse_query
    from repro.runtime.service import EngineService

    scenario = get_scenario(args.scenario)
    engine = create_engine(
        scenario.build_model(),
        EngineConfig(
            backend=args.backend,
            partition_by=scenario.partition_by,
            retention=scenario.retention,
        ),
    )
    types = dict(_serve_type_registry(args.scenario))
    if args.listen or args.http:
        return _serve_network(args, engine, types)

    def resolve_type(name: str) -> EventType:
        event_type = types.get(name)
        if event_type is None:
            event_type = EventType(name)
            types[name] = event_type
        return event_type

    out = sys.stdout

    def emit(event: Event) -> None:
        out.write(json.dumps({
            "type": event.type_name,
            "time": event.timestamp,
            "payload": dict(event.payload),
        }, default=str) + "\n")
        out.flush()

    service = EngineService(
        engine,
        max_delay=args.max_delay,
        queue_size=args.queue_size,
        on_emit=emit,
    )

    def on_signal(signum, frame):  # pragma: no cover - signal timing
        raise _Shutdown()

    previous = {
        sig: signal.signal(sig, on_signal)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        for line in sys.stdin:
            line = line.strip()
            if not line:
                continue
            message = json.loads(line)
            if "op" in message:
                op = message["op"]
                if op == "deploy":
                    query = parse_query(
                        message["query"],
                        name=message.get("name", "deployed"),
                        types=types,
                    )
                    watermark = service.deploy_query(query)
                    print(
                        f"deployed {query.name!r} at watermark {watermark}",
                        file=sys.stderr,
                    )
                elif op == "retire":
                    watermark = service.retire_query(message["name"])
                    print(
                        f"retired {message['name']!r} at watermark "
                        f"{watermark}",
                        file=sys.stderr,
                    )
                elif op == "stop":
                    break
                else:
                    print(f"unknown op {op!r}", file=sys.stderr)
                continue
            service.submit(Event(
                resolve_type(message["type"]),
                message["time"],
                dict(message.get("payload", {})),
            ))
    except _Shutdown:
        print("signal received, draining", file=sys.stderr)
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        report = service.stop()
        engine.close()
    if args.summary:
        print(report.summary(), file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "describe-traffic":
            return _cmd_describe_traffic()
        if args.command == "describe-pam":
            return _cmd_describe_pam()
        if args.command == "dot-traffic":
            return _cmd_dot_traffic()
        if args.command == "dot-pam":
            return _cmd_dot_pam()
        if args.command == "run-traffic":
            return _cmd_run_traffic(args)
        if args.command == "run-pam":
            return _cmd_run_pam(args)
        if args.command == "validate-traffic":
            return _cmd_validate_traffic(args)
        if args.command == "parse":
            return _cmd_parse(args)
        if args.command == "stats":
            return _cmd_stats(args)
        if args.command == "diff":
            return _cmd_diff(args)
        if args.command == "serve":
            return _cmd_serve(args)
    except CaesarError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 2  # pragma: no cover - argparse enforces the command set


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
