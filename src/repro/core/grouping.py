"""Context window grouping (Section 5.3, Listing 1).

Overlapping user-defined context windows are split at their bounds into
finer-granularity, non-overlapping *grouped* windows; the workload of each
grouped window is the union of the workloads of the original windows
covering it, with duplicate queries removed.  Non-overlapping windows pass
through unchanged.

The algorithm sorts windows by start bound — even though absolute bounds are
unknown at compile time, the *order* of bounds of overlapping windows can be
determined (from predicate subsumption, :mod:`repro.core.predicates`), so
:class:`~repro.core.windows.WindowSpec` carries comparable bound keys.

Complexity: ``O(n log n * m)`` for ``n`` windows and ``m`` predicates
compared per window pair, as stated in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.queries import EventQuery
from repro.core.windows import WindowSpec
from repro.errors import OptimizerError
from repro.events.timebase import TimePoint


@dataclass(frozen=True)
class GroupedWindow:
    """A non-overlapping window produced by the grouping algorithm.

    ``source_names`` records which original user-defined windows cover this
    grouped window — the runtime's context history uses it to decide across
    which grouped windows a query's partial matches must be preserved
    (Section 6.2, "Context Processing").
    """

    start: TimePoint
    end: TimePoint
    queries: tuple[EventQuery, ...]
    source_names: tuple[str, ...]

    @property
    def length(self) -> TimePoint:
        return self.end - self.start

    def covers(self, t: TimePoint) -> bool:
        return self.start <= t < self.end

    def __repr__(self) -> str:
        return (
            f"<GroupedWindow [{self.start}, {self.end}) "
            f"sources={self.source_names} queries={len(self.queries)}>"
        )


def _dedup_queries(queries: Iterable[EventQuery]) -> tuple[EventQuery, ...]:
    """Drop duplicate queries by work signature, keeping first occurrence
    (Listing 1, lines 20-22)."""
    seen = set()
    kept: list[EventQuery] = []
    for query in queries:
        signature = query.signature()
        if signature in seen:
            continue
        seen.add(signature)
        kept.append(query)
    return tuple(kept)


def _merge_identical(specs: list[WindowSpec]) -> list[WindowSpec]:
    """Merge windows with identical bounds, combining their workloads
    (Listing 1, line 6).

    Provenance travels in the merged spec's ``sources`` tuple — *not* in
    its display name — so original window names survive verbatim however
    they are spelled (a name containing ``"+"`` used to corrupt
    :func:`grouped_windows_for_source` attribution when merged names were
    re-split on the separator).
    """
    by_bounds: dict[tuple[TimePoint, TimePoint], WindowSpec] = {}
    order: list[tuple[TimePoint, TimePoint]] = []
    for spec in specs:
        key = (spec.start, spec.end)
        if key in by_bounds:
            existing = by_bounds[key]
            by_bounds[key] = WindowSpec(
                name=f"{existing.name}+{spec.name}",
                start=spec.start,
                end=spec.end,
                queries=existing.queries + spec.queries,
                predicates=existing.predicates + spec.predicates,
                sources=existing.source_names + spec.source_names,
            )
        else:
            by_bounds[key] = spec
            order.append(key)
    return [by_bounds[key] for key in order]


def group_context_windows(
    specs: Sequence[WindowSpec],
) -> list[GroupedWindow]:
    """Listing 1: split-and-group overlapping context windows.

    Returns grouped windows sorted by start bound.  Post-conditions (tested
    property-based in ``tests/core/test_grouping.py``):

    * grouped windows never overlap;
    * their union covers exactly the union of the input windows;
    * the workload of a grouped window equals the deduplicated union of the
      workloads of the input windows covering it.
    """
    if not specs:
        return []
    names = [s.name for s in specs]
    if len(names) != len(set(names)):
        duplicates = sorted({n for n in names if names.count(n) > 1})
        raise OptimizerError(f"duplicate window spec names: {duplicates}")

    # Line 4: windows that overlap no other window remain unchanged.
    overlapping: list[WindowSpec] = []
    grouped: list[GroupedWindow] = []
    for spec in specs:
        if any(spec.overlaps(other) for other in specs if other is not spec):
            overlapping.append(spec)
        else:
            grouped.append(
                GroupedWindow(
                    start=spec.start,
                    end=spec.end,
                    queries=_dedup_queries(spec.queries),
                    source_names=(spec.name,),
                )
            )

    # Line 5: sort by start bound; line 6: merge identical windows.
    overlapping.sort(key=lambda s: (s.start, s.end))
    overlapping = _merge_identical(overlapping)

    # Lines 8-19: sweep the window bounds; each interval between two
    # subsequent bounds becomes one grouped window carrying the queries of
    # all original windows active during that interval.  The sweep keeps an
    # *active set* updated at each bound (specs entering at their start,
    # leaving at their end) instead of rescanning every spec per interval,
    # so the pass is ``O(bounds + windows)`` rather than
    # ``O(bounds × windows)``.  ``active`` is keyed by the spec's position
    # in the (start, end)-sorted ``overlapping`` list: insertions happen in
    # ascending index order, so iterating the dict reproduces exactly the
    # spec order the former rescan produced.
    bounds = sorted({s.start for s in overlapping} | {s.end for s in overlapping})
    entering: dict[TimePoint, list[int]] = {}
    leaving: dict[TimePoint, list[int]] = {}
    for index, spec in enumerate(overlapping):
        entering.setdefault(spec.start, []).append(index)
        leaving.setdefault(spec.end, []).append(index)
    active: dict[int, WindowSpec] = {}
    for previous, nxt in zip(bounds, bounds[1:]):
        for index in leaving.get(previous, ()):
            active.pop(index, None)
        for index in entering.get(previous, ()):
            active[index] = overlapping[index]
        if not active:
            continue
        queries = [q for spec in active.values() for q in spec.queries]
        grouped.append(
            GroupedWindow(
                start=previous,
                end=nxt,
                queries=_dedup_queries(queries),
                source_names=tuple(
                    name
                    for spec in active.values()
                    for name in spec.source_names
                ),
            )
        )

    grouped.sort(key=lambda w: (w.start, w.end))
    return grouped


def grouped_windows_for_source(
    grouped: Sequence[GroupedWindow], source_name: str
) -> list[GroupedWindow]:
    """The grouped windows a given original window was split into.

    The runtime keeps a query's partial matches alive across exactly these
    windows (Section 6.2): when the last of them ends, the partial results
    expire.
    """
    return [w for w in grouped if source_name in w.source_names]


def total_covered_length(grouped: Sequence[GroupedWindow]) -> TimePoint:
    """Total stream length covered by the (non-overlapping) grouped windows."""
    return sum(w.length for w in grouped)
