"""Model visualization: Figure-1-style transition diagrams.

The paper's companion tool is a visual editor for the CAESAR model (its
evaluation is explicitly future work, Section 1 footnote); what downstream
users actually need day-to-day is the reverse direction — rendering an
existing model for inspection.  This module renders a
:class:`~repro.core.model.CaesarModel` as:

* :func:`to_dot` — a Graphviz digraph (render with ``dot -Tsvg``), contexts
  as nodes (default context doubly circled), one edge per deriving query
  labelled with its action and WHERE condition;
* :func:`to_text` — a plain-text adjacency summary for terminals and logs.
"""

from __future__ import annotations

from repro.core.model import CaesarModel
from repro.core.queries import QueryAction

_EDGE_STYLES = {
    QueryAction.INITIATE: "solid",
    QueryAction.SWITCH: "bold",
    QueryAction.TERMINATE: "dashed",
}


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _edge_label(query) -> str:
    label = query.action.value
    if query.where is not None:
        label += f"\\nif {_escape(str(query.where))}"
    return label


def to_dot(model: CaesarModel, *, name: str = "caesar") -> str:
    """Render the model's transition network as a Graphviz digraph.

    TERMINATE edges point back to the default context when terminating the
    plan's own context would leave no user context open — mirroring how
    Figure 1 draws termination arrows leaving the context boxes.
    """
    lines = [f"digraph {name} {{", "  rankdir=LR;", "  node [shape=ellipse];"]
    for context_name in model.context_names:
        attributes = [f'label="{_escape(context_name)}"']
        if context_name == model.default_context:
            attributes.append("peripheries=2")
        workload = len(model.context(context_name).processing_queries)
        if workload:
            attributes[0] = (
                f'label="{_escape(context_name)}\\n({workload} queries)"'
            )
        lines.append(f"  \"{context_name}\" [{', '.join(attributes)}];")
    for edge in model.transitions():
        style = _EDGE_STYLES[edge.kind]
        query = next(q for q in model.queries() if q.name == edge.query_name)
        source = edge.from_context
        if edge.kind is QueryAction.TERMINATE:
            # terminating a context conceptually returns toward the default
            # (the engine restores it when no user context remains)
            target = model.default_context
        else:
            target = edge.to_context
        lines.append(
            f'  "{source}" -> "{target}" '
            f'[label="{_edge_label(query)}", style={style}];'
        )
    lines.append("}")
    return "\n".join(lines)


def to_text(model: CaesarModel) -> str:
    """A terminal-friendly transition summary (textual Figure 1)."""
    lines = [f"CAESAR model — default context: {model.default_context}"]
    for context_name in model.context_names:
        context = model.context(context_name)
        marker = " (default)" if context_name == model.default_context else ""
        lines.append(f"[{context_name}]{marker}")
        for query in context.processing_queries:
            assert query.derive_type is not None
            lines.append(f"  • derives {query.derive_type.name} ({query.name})")
        for query in context.deriving_queries:
            condition = f" if {query.where}" if query.where is not None else ""
            lines.append(
                f"  → {query.action.value} {query.target_context}"
                f"{condition} ({query.name})"
            )
    return "\n".join(lines)
