"""Predicate subsumption for context window relationships (Definition 2).

The bounds of context windows are unknown at compile time, but the
*predicates* of the deriving queries can be analyzed to decide whether
windows are guaranteed to overlap (Figure 7: ``w_{c1}`` initiated when
``X > 10``, ``w_{c2}`` when ``X > 20`` — every ``c2`` window starts inside a
``c1`` window).  CAESAR "employs established approaches for predicate
subsumption [14]"; we implement the threshold fragment those approaches
cover, which suffices for the deriving predicates in the paper's figures and
the Linear Road workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OptimizerError

_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
_VALID_OPS = frozenset({"<", "<=", ">", ">=", "="})


@dataclass(frozen=True)
class ThresholdPredicate:
    """A predicate of the form ``attribute op constant``."""

    attribute: str
    op: str
    value: float

    def __post_init__(self) -> None:
        if self.op not in _VALID_OPS:
            raise OptimizerError(
                f"unsupported threshold operator {self.op!r}; "
                f"expected one of {sorted(_VALID_OPS)}"
            )

    def satisfied_by(self, value: float) -> bool:
        if self.op == "<":
            return value < self.value
        if self.op == "<=":
            return value <= self.value
        if self.op == ">":
            return value > self.value
        if self.op == ">=":
            return value >= self.value
        return value == self.value

    def __str__(self) -> str:
        return f"{self.attribute} {self.op} {self.value}"


def implies(p: ThresholdPredicate, q: ThresholdPredicate) -> bool:
    """True if every value satisfying ``p`` satisfies ``q`` (``p ⇒ q``).

    Predicates over different attributes never imply one another.  Equality
    implies any comparison the constant satisfies.
    """
    if p.attribute != q.attribute:
        return False
    if p.op == "=":
        return q.satisfied_by(p.value)
    if q.op == "=":
        # A one-sided range implies equality only never (ranges are infinite).
        return False
    greater_p = p.op in (">", ">=")
    greater_q = q.op in (">", ">=")
    if greater_p != greater_q:
        return False
    if greater_p:
        # p: X > a (or >=) implies q: X > b (or >=) iff a is at least b,
        # with strictness bookkeeping at equality of the constants.
        if p.value > q.value:
            return True
        if p.value == q.value:
            return not (p.op == ">=" and q.op == ">")
        return False
    if p.value < q.value:
        return True
    if p.value == q.value:
        return not (p.op == "<=" and q.op == "<")
    return False


def conjunction_implies(
    ps: tuple[ThresholdPredicate, ...], qs: tuple[ThresholdPredicate, ...]
) -> bool:
    """``p1 ∧ ... ∧ pn ⇒ q1 ∧ ... ∧ qm`` for threshold conjunctions.

    Sound (never claims an implication that does not hold) and complete for
    conjunctions of single-attribute thresholds without cross-attribute
    arithmetic: each ``q`` must be implied by some single ``p``.
    """
    return all(any(implies(p, q) for p in ps) for q in qs)


def specs_guaranteed_overlap_by_predicates(a, b) -> bool:
    """Definition 2 via subsumption: does ``a``'s initiation imply ``b``'s?

    ``a`` and ``b`` are :class:`~repro.core.windows.WindowSpec` objects whose
    ``predicates`` carry the initiating conditions of their deriving queries.
    If ``a``'s initiation predicate implies ``b``'s, then whenever a window
    of type ``a`` starts, a window of type ``b`` holds — the windows are
    guaranteed to overlap (Figure 7's ``X > 20 ⇒ X > 10`` example).
    """
    if not a.predicates or not b.predicates:
        return False
    return conjunction_implies(tuple(a.predicates), tuple(b.predicates))
