"""Context-aware event query descriptors (Definition 3).

A query descriptor is the logical form of one CAESAR event query: which
clauses it carries (INITIATE/SWITCH/TERMINATE CONTEXT, DERIVE, PATTERN,
WHERE, CONTEXT) and which contexts it belongs to.  Descriptors are what the
model, the grouping algorithm and the optimizer manipulate; the planner
(:mod:`repro.language.compiler` and :mod:`repro.optimizer`) turns them into
operator pipelines per Table 1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence

from repro.algebra.aggregate import MatchAggregate
from repro.algebra.expressions import Expr
from repro.algebra.pattern import PatternSpec
from repro.errors import ModelError
from repro.events.types import EventType


class QueryAction(enum.Enum):
    """What a query does when its pattern matches (Definition 3)."""

    #: Context deriving: open a new context window (may overlap others).
    INITIATE = "initiate"
    #: Context deriving: terminate the current window, open a new one.
    SWITCH = "switch"
    #: Context deriving: close a context window.
    TERMINATE = "terminate"
    #: Context processing: derive a complex event.
    DERIVE = "derive"


#: Actions performed by context *deriving* queries.
DERIVING_ACTIONS = frozenset(
    {QueryAction.INITIATE, QueryAction.SWITCH, QueryAction.TERMINATE}
)


@dataclass(frozen=True)
class EventQuery:
    """One context-aware event query.

    Parameters
    ----------
    name:
        Unique identifier for the query within its model.
    action:
        What the query does on a match (:class:`QueryAction`).
    pattern:
        The PATTERN clause (required for every query).
    contexts:
        The CONTEXT clause: names of the contexts the query belongs to.  The
        same query may be appropriate in several contexts (Section 3.3);
        deriving queries are evaluated within these contexts.
    where:
        Optional WHERE predicate.
    target_context:
        For deriving queries: the context to initiate/switch-to/terminate.
    derive_type / derive_items:
        For processing queries: the DERIVE clause's output event type and its
        ``(attribute_name, expression)`` argument list.
    derive_aggregates:
        For aggregating processing queries: the DERIVE clause's
        :class:`~repro.algebra.aggregate.MatchAggregate` columns, one per
        output attribute, computed over the pattern's matches.  Mutually
        exclusive with ``derive_items`` — a DERIVE clause either projects
        per-match expressions or aggregates over all matches.
    """

    name: str
    action: QueryAction
    pattern: PatternSpec
    contexts: tuple[str, ...] = ()
    where: Expr | None = None
    target_context: str | None = None
    derive_type: EventType | None = None
    derive_items: tuple[tuple[str, Expr], ...] = ()
    derive_aggregates: tuple[MatchAggregate, ...] = ()

    def __post_init__(self) -> None:
        if self.derive_aggregates and self.derive_items:
            raise ModelError(
                f"query {self.name!r}: DERIVE cannot mix per-match "
                "expressions and aggregates"
            )
        if self.action in DERIVING_ACTIONS:
            if not self.target_context:
                raise ModelError(
                    f"query {self.name!r}: {self.action.value} requires a "
                    "target context"
                )
            if self.derive_type is not None:
                raise ModelError(
                    f"query {self.name!r}: a context deriving query cannot "
                    "also carry a DERIVE clause"
                )
            if self.derive_aggregates:
                raise ModelError(
                    f"query {self.name!r}: a context deriving query cannot "
                    "carry aggregates"
                )
        else:
            if self.derive_type is None:
                raise ModelError(
                    f"query {self.name!r}: DERIVE requires an output event type"
                )
            if self.target_context is not None:
                raise ModelError(
                    f"query {self.name!r}: a context processing query cannot "
                    "target a context"
                )

    @property
    def is_deriving(self) -> bool:
        """True for INITIATE / SWITCH / TERMINATE CONTEXT queries."""
        return self.action in DERIVING_ACTIONS

    @property
    def is_processing(self) -> bool:
        """True for DERIVE queries."""
        return not self.is_deriving

    @property
    def is_aggregating(self) -> bool:
        """True for DERIVE queries whose clause aggregates over matches."""
        return bool(self.derive_aggregates)

    def with_contexts(self, contexts: Sequence[str]) -> "EventQuery":
        """The same query re-targeted at a different CONTEXT clause.

        Used in phase 1 of plan generation, where contexts implied by the
        model become mandatory clauses (Section 4.2), and by the grouping
        algorithm when re-associating workloads with grouped windows.
        """
        return EventQuery(
            name=self.name,
            action=self.action,
            pattern=self.pattern,
            contexts=tuple(contexts),
            where=self.where,
            target_context=self.target_context,
            derive_type=self.derive_type,
            derive_items=self.derive_items,
            derive_aggregates=self.derive_aggregates,
        )

    def signature(self) -> tuple:
        """Identity of the query's *work*, ignoring its CONTEXT clause.

        Two queries with equal signatures perform identical computation, so
        the grouping algorithm deduplicates on this key (Listing 1, lines
        20-22) and the sharing optimizer executes one instance for all of
        them.
        """
        return (
            self.action,
            str(self.pattern),
            str(self.where) if self.where is not None else None,
            self.target_context,
            self.derive_type.name if self.derive_type else None,
            tuple((name, str(expr)) for name, expr in self.derive_items),
            tuple(
                (aggregate.name, str(aggregate))
                for aggregate in self.derive_aggregates
            ),
        )

    def __str__(self) -> str:
        if self.is_deriving:
            head = f"{self.action.value.upper()} CONTEXT {self.target_context}"
        else:
            if self.derive_aggregates:
                args = ", ".join(str(a) for a in self.derive_aggregates)
            else:
                args = ", ".join(str(expr) for _, expr in self.derive_items)
            assert self.derive_type is not None
            head = f"DERIVE {self.derive_type.name}({args})"
        clauses = [head, f"PATTERN {self.pattern}"]
        if self.where is not None:
            clauses.append(f"WHERE {self.where}")
        if self.contexts:
            clauses.append(f"CONTEXT {', '.join(self.contexts)}")
        return " ".join(clauses)
