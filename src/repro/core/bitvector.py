"""Context bit vector (Section 6.2, "Context Derivation").

For each stream partition the runtime keeps one bit per context type plus a
timestamp.  Entries are sorted alphabetically by context name so lookup is a
constant-time index into a fixed layout; the vector is the only piece of
shared state the context deriving queries write and the router reads.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import UnknownContextError
from repro.events.timebase import TimePoint


class ContextBitVector:
    """A fixed-layout bit vector over a set of context type names.

    The bit layout is frozen at construction (``W.size = |C|``, constant for
    an application).  Mutations update ``W.time``; since events arrive
    in-order, only the most recent version is kept (Section 6.2).
    """

    __slots__ = ("_names", "_index", "_bits", "time")

    def __init__(self, context_names: Iterable[str]):
        self._names = tuple(sorted(set(context_names)))
        self._index = {name: i for i, name in enumerate(self._names)}
        self._bits = 0
        self.time: TimePoint = 0

    @property
    def size(self) -> int:
        """Number of context types tracked (``|C|``)."""
        return len(self._names)

    @property
    def names(self) -> tuple[str, ...]:
        """Context names in bit order (alphabetical)."""
        return self._names

    @property
    def value(self) -> int:
        """The raw bit pattern (bit ``i`` is ``names[i]``)."""
        return self._bits

    def _bit(self, name: str) -> int:
        index = self._index.get(name)
        if index is None:
            raise UnknownContextError(name)
        return 1 << index

    def set(self, name: str, time: TimePoint) -> bool:
        """Set the bit for ``name``; returns True if it was previously 0."""
        bit = self._bit(name)
        was_clear = not self._bits & bit
        self._bits |= bit
        self.time = time
        return was_clear

    def clear(self, name: str, time: TimePoint) -> bool:
        """Clear the bit for ``name``; returns True if it was previously 1."""
        bit = self._bit(name)
        was_set = bool(self._bits & bit)
        self._bits &= ~bit
        self.time = time
        return was_set

    def register(self, name: str) -> bool:
        """Extend the layout with a new context name (online deployment).

        The alphabetical bit order is re-derived, so existing names may move
        to new indices; their set/clear state is carried over by name.
        Returns True if the layout actually grew (False: already present).
        """
        if name in self._index:
            return False
        active = [n for n in self._names if self.test(n)]
        self._names = tuple(sorted(self._names + (name,)))
        self._index = {n: i for i, n in enumerate(self._names)}
        self._bits = 0
        for n in active:
            self._bits |= 1 << self._index[n]
        return True

    def test(self, name: str) -> bool:
        """Constant-time lookup: does the context window currently hold?"""
        return bool(self._bits & self._bit(name))

    def active(self) -> tuple[str, ...]:
        """All context names whose bit is set, in bit order."""
        return tuple(name for name in self._names if self.test(name))

    def count_active(self) -> int:
        return bin(self._bits).count("1")

    def clear_all(self, time: TimePoint) -> None:
        self._bits = 0
        self.time = time

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __repr__(self) -> str:
        pattern = "".join("1" if self.test(n) else "0" for n in self._names)
        return f"<ContextBitVector t={self.time} {pattern} {self._names}>"
