"""Symbolic window bounds from predicate subsumption (Definition 2).

Listing 1 sorts context windows by start bound, yet "the exact start time
of context windows is not known at compile time" — only "the *order* of
their beginning can be determined for overlapping context windows" by
analyzing the deriving queries' predicates (Section 5.3, Figure 7).

This module performs that analysis for threshold predicates over a
monotone driving quantity (Figure 7's ``X``): if window ``b``'s initiation
condition implies window ``a``'s (``X > 20 ⇒ X > 10``), then whenever ``b``
starts, ``a`` has already started — so ``start_a ≤ start_b``.  Dually for
termination conditions (``X < 30 ⇒ X < 40`` means ``a`` terminates no later
than ``b``).  The inferred partial orders are embedded into integer bound
keys that :func:`~repro.core.grouping.group_context_windows` can consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.predicates import ThresholdPredicate, conjunction_implies
from repro.core.queries import EventQuery
from repro.core.windows import WindowSpec
from repro.errors import OptimizerError


@dataclass(frozen=True)
class SymbolicWindow:
    """A window whose bounds are known only through its deriving predicates."""

    name: str
    initiate: tuple[ThresholdPredicate, ...]
    terminate: tuple[ThresholdPredicate, ...]
    queries: tuple[EventQuery, ...] = ()


def _layer_by_implication(
    windows: Sequence[SymbolicWindow],
    *,
    earlier_than,
) -> dict[str, int]:
    """Longest-path layering of the ``earlier_than`` partial order.

    ``earlier_than(a, b)`` is True when ``a``'s bound provably precedes
    (or coincides with the start of) ``b``'s.  Returns a layer index per
    window name, with provably-earlier windows on strictly smaller layers
    whenever the order is strict.
    """
    names = [w.name for w in windows]
    strictly_before: dict[str, set[str]] = {name: set() for name in names}
    for a in windows:
        for b in windows:
            if a.name == b.name:
                continue
            if earlier_than(a, b) and not earlier_than(b, a):
                strictly_before[b.name].add(a.name)

    layers: dict[str, int] = {}

    def layer(name: str, visiting: tuple[str, ...] = ()) -> int:
        if name in layers:
            return layers[name]
        if name in visiting:
            raise OptimizerError(
                f"cyclic predicate implication involving window {name!r}"
            )
        predecessors = strictly_before[name]
        value = 0
        for predecessor in predecessors:
            value = max(value, layer(predecessor, visiting + (name,)) + 1)
        layers[name] = value
        return value

    for name in names:
        layer(name)
    return layers


def _start_precedes(a: SymbolicWindow, b: SymbolicWindow) -> bool:
    """``a`` starts no later than ``b``: b's initiation implies a's.

    When the driving quantity reaches the point that initiates ``b``, the
    (weaker) condition initiating ``a`` already held — Figure 7's
    ``X > 20 ⇒ X > 10``.
    """
    return conjunction_implies(b.initiate, a.initiate)


def _end_precedes(a: SymbolicWindow, b: SymbolicWindow) -> bool:
    """``a`` ends no later than ``b``: a's termination implies b's.

    When the driving quantity reaches the point that terminates ``a``
    (``X < 30``), the weaker condition terminating ``b`` (``X < 40``) holds
    as well — so ``b`` cannot have ended strictly earlier than ``a``.
    """
    return conjunction_implies(a.terminate, b.terminate)


def infer_window_specs(
    windows: Sequence[SymbolicWindow],
) -> list[WindowSpec]:
    """Turn symbolic windows into :class:`WindowSpec` with consistent bounds.

    The produced integer bounds respect every provable ordering:

    * ``start_a ≤ start_b`` whenever ``b``'s initiation implies ``a``'s;
    * ``end_a ≤ end_b`` whenever ``a``'s termination implies ``b``'s;
    * every window's start precedes every window's end by construction, so
      all windows pairwise overlap — which is the situation this analysis
      targets (non-overlapping windows need no grouping, Listing 1 line 4).

    The result feeds directly into
    :func:`~repro.core.grouping.group_context_windows`.
    """
    if not windows:
        return []
    names = [w.name for w in windows]
    if len(names) != len(set(names)):
        raise OptimizerError("duplicate symbolic window names")

    start_layers = _layer_by_implication(windows, earlier_than=_start_precedes)
    end_layers = _layer_by_implication(windows, earlier_than=_end_precedes)
    max_start_layer = max(start_layers.values())

    specs = []
    for window in windows:
        start = start_layers[window.name]
        end = max_start_layer + 1 + end_layers[window.name]
        specs.append(
            WindowSpec(
                name=window.name,
                start=start,
                end=end,
                queries=window.queries,
                predicates=window.initiate,
            )
        )
    return specs
