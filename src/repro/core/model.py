"""The CAESAR model (Definitions 1 and 4).

A CAESAR model is a tuple ``(I, O, C, c_d)``: unbounded input and output
event streams, a finite set of context types, and a default context type
that holds when no other context does (e.g. at system startup).  Each
context type carries a workload of context deriving queries ``Q_d^c`` and
context processing queries ``Q_p^c``.

Unlike a classical automaton, the model has no final contexts — it is
designed for context-aware event query *execution*, not language
recognition.  Its translation into an executable plan (Section 4.2) lives in
:mod:`repro.optimizer.planner`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.core.queries import EventQuery, QueryAction
from repro.errors import ModelError, UnknownContextError


@dataclass
class ContextType:
    """A context type: a name and its query workload (Definition 1)."""

    name: str
    deriving_queries: list[EventQuery] = field(default_factory=list)
    processing_queries: list[EventQuery] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise ModelError(f"invalid context type name: {self.name!r}")

    @property
    def workload(self) -> list[EventQuery]:
        """All queries appropriate in this context (deriving first)."""
        return self.deriving_queries + self.processing_queries

    def __repr__(self) -> str:
        return (
            f"<ContextType {self.name!r} "
            f"deriving={len(self.deriving_queries)} "
            f"processing={len(self.processing_queries)}>"
        )


@dataclass(frozen=True)
class ContextTransition:
    """An edge of the model's transition network (as drawn in Figure 1)."""

    from_context: str
    to_context: str
    kind: QueryAction
    query_name: str


class CaesarModel:
    """A CAESAR model ``(I, O, C, c_d)`` (Definition 4).

    Build one by declaring contexts and attaching queries::

        model = CaesarModel(default_context="clear")
        model.add_context("congestion")
        model.add_query(initiate_congestion_query)   # CONTEXT clear
        model.add_query(toll_query)                  # CONTEXT congestion

    A query is attached to every context named in its CONTEXT clause;
    deriving queries additionally name a target context which must exist.
    """

    def __init__(self, default_context: str = "default"):
        self._contexts: dict[str, ContextType] = {}
        self.default_context = default_context
        self.add_context(default_context)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_context(self, name: str) -> ContextType:
        """Declare a context type; returns the (possibly existing) type."""
        if name not in self._contexts:
            self._contexts[name] = ContextType(name)
        return self._contexts[name]

    def add_query(self, query: EventQuery) -> None:
        """Attach a query to every context in its CONTEXT clause.

        Queries without an explicit CONTEXT clause belong to the default
        context (the model implies it; phase 1 of plan generation makes it
        mandatory — Section 4.2).
        """
        contexts = query.contexts or (self.default_context,)
        if query.is_deriving:
            assert query.target_context is not None
            if query.target_context not in self._contexts:
                raise UnknownContextError(query.target_context)
        for context_name in contexts:
            context = self._contexts.get(context_name)
            if context is None:
                raise UnknownContextError(context_name)
            if any(q.name == query.name for q in context.workload):
                raise ModelError(
                    f"context {context_name!r} already has a query named "
                    f"{query.name!r}"
                )
            if query.is_deriving:
                context.deriving_queries.append(query)
            else:
                context.processing_queries.append(query)

    def remove_query(self, name: str) -> tuple[str, ...]:
        """Detach a query from every context holding it (online retirement).

        Returns the names of the contexts the query was attached to, so a
        live engine knows which plan groups to rebuild.  Unknown names
        raise :class:`~repro.errors.ModelError`.
        """
        affected: list[str] = []
        for context in self._contexts.values():
            before = len(context.workload)
            context.deriving_queries = [
                q for q in context.deriving_queries if q.name != name
            ]
            context.processing_queries = [
                q for q in context.processing_queries if q.name != name
            ]
            if len(context.workload) != before:
                affected.append(context.name)
        if not affected:
            raise ModelError(f"no query named {name!r} in the model")
        return tuple(affected)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    @property
    def context_names(self) -> tuple[str, ...]:
        return tuple(self._contexts)

    def context(self, name: str) -> ContextType:
        context = self._contexts.get(name)
        if context is None:
            raise UnknownContextError(name)
        return context

    def __contains__(self, name: str) -> bool:
        return name in self._contexts

    def queries(self) -> Iterator[EventQuery]:
        """All distinct queries of the model (by name, first occurrence)."""
        seen: set[str] = set()
        for context in self._contexts.values():
            for query in context.workload:
                if query.name not in seen:
                    seen.add(query.name)
                    yield query

    def transitions(self) -> list[ContextTransition]:
        """The transition network: edges of the Figure-1 style diagram."""
        edges: list[ContextTransition] = []
        for context in self._contexts.values():
            for query in context.deriving_queries:
                assert query.target_context is not None
                edges.append(
                    ContextTransition(
                        from_context=context.name,
                        to_context=query.target_context,
                        kind=query.action,
                        query_name=query.name,
                    )
                )
        return edges

    # ------------------------------------------------------------------
    # phase 1 of plan generation (Section 4.2)
    # ------------------------------------------------------------------

    def to_query_set(self) -> list[EventQuery]:
        """Translate the model into a machine-readable query set.

        Contexts implied by the model become mandatory CONTEXT clauses: the
        returned queries all carry an explicit, complete ``contexts`` tuple
        listing every context they are evaluated in.
        """
        memberships: dict[str, list[str]] = {}
        by_name: dict[str, EventQuery] = {}
        for context in self._contexts.values():
            for query in context.workload:
                memberships.setdefault(query.name, []).append(context.name)
                by_name.setdefault(query.name, query)
        return [
            by_name[name].with_contexts(tuple(contexts))
            for name, contexts in memberships.items()
        ]

    def validate(self) -> None:
        """Check well-formedness beyond what construction enforces.

        * The default context exists (guaranteed by the constructor).
        * Every SWITCH query's target differs from all contexts it belongs
          to only when intended — we merely require targets to exist, which
          :meth:`add_query` enforced.
        * Every non-default context is reachable from the default context
          through the transition network (otherwise its workload is dead
          code, which is almost certainly a specification mistake).
        """
        reachable = {self.default_context}
        frontier = [self.default_context]
        edges = self.transitions()
        while frontier:
            current = frontier.pop()
            for edge in edges:
                if edge.from_context == current and edge.to_context not in reachable:
                    reachable.add(edge.to_context)
                    frontier.append(edge.to_context)
        unreachable = set(self._contexts) - reachable
        if unreachable:
            raise ModelError(
                f"contexts unreachable from the default context "
                f"{self.default_context!r}: {sorted(unreachable)}"
            )

    def describe(self) -> str:
        """Human-readable model summary (textual stand-in for Figure 1)."""
        lines = [f"CaesarModel (default context: {self.default_context})"]
        for context in self._contexts.values():
            lines.append(f"  context {context.name}:")
            for query in context.deriving_queries:
                lines.append(f"    [deriving]   {query}")
            for query in context.processing_queries:
                lines.append(f"    [processing] {query}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<CaesarModel contexts={list(self._contexts)} "
            f"default={self.default_context!r}>"
        )
