"""CAESAR core: the context-aware model (Section 3) and its machinery.

This package holds the paper's primary abstractions: context types, context
windows and their relationships, the context bit vector, context-aware event
query descriptors, predicate subsumption for overlap inference, and the
context window grouping algorithm (Listing 1).
"""

from repro.core.bitvector import ContextBitVector
from repro.core.model import CaesarModel, ContextType
from repro.core.queries import EventQuery, QueryAction
from repro.core.windows import (
    ContextWindow,
    ContextWindowStore,
    WindowSpec,
    windows_contained,
    windows_guaranteed_overlap,
)
from repro.core.grouping import GroupedWindow, group_context_windows

__all__ = [
    "CaesarModel",
    "ContextBitVector",
    "ContextType",
    "ContextWindow",
    "ContextWindowStore",
    "EventQuery",
    "GroupedWindow",
    "QueryAction",
    "WindowSpec",
    "group_context_windows",
    "windows_contained",
    "windows_guaranteed_overlap",
]
