"""Context windows (Definitions 1-2) and the runtime window store.

A *context window* ``w_c`` is the duration ``(t_i, t_t]`` of an application
context: initiated when a deriving query matches, terminated when another
deriving query matches.  Its duration is unknown at detection time and
potentially unbounded — which is what distinguishes it from fixed-length
tumbling/sliding windows and from events themselves (Section 3.1).

Two representations live here:

* :class:`ContextWindow` — a concrete (possibly still open) window observed
  at runtime.
* :class:`WindowSpec` — a compile-time description of a window used by the
  grouping algorithm (Listing 1) and the benchmarks: bounds plus the query
  workload associated with the window.

:class:`ContextWindowStore` is the runtime store: the context bit vector,
the set of open windows, and the log of closed windows.  It implements the
``CI_c``/``CT_c`` semantics of Section 4.1 including default-context
restoration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.core.bitvector import ContextBitVector
from repro.errors import ModelError, UnknownContextError
from repro.events.timebase import TimePoint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.predicates import ThresholdPredicate
    from repro.core.queries import EventQuery


@dataclass
class ContextWindow:
    """A concrete context window ``w_c`` with occupancy ``[start, end)``.

    ``end is None`` while the window is still open.  ``start`` is the time
    point at which an initiating query matched; ``end`` the time point at
    which a terminating query matched (Definition 1).

    The paper writes window durations as ``(t_i, t_t]``; this repository
    uses the equivalent half-open convention ``[t_i, t_t)`` shifted one
    scheduling step left, because the time-driven scheduler completes
    context *derivation* for time ``t`` before context *processing* at
    ``t``: a context initiated at ``t`` is already in force for the batch
    at ``t``, and a context terminated at ``t`` is already out of force at
    ``t``.  Both conventions make consecutive windows partition the
    timeline without gap or double occupancy; see
    ``docs/architecture.md`` § 9.1.
    """

    context_name: str
    start: TimePoint
    end: TimePoint | None = None

    @property
    def is_open(self) -> bool:
        return self.end is None

    def holds_at(self, t: TimePoint) -> bool:
        """True if the window holds at time ``t`` (occupancy ``[start, end)``).

        The initiating time point itself belongs to the window so that the
        very batch that raises a context is processed within it — the
        benchmark's toll queries rely on this.  The terminating time point
        does *not*: the deriving phase at ``end`` clears the context bit
        before any processing at ``end`` runs, so the engine never executes
        a plan within a window at its own termination instant.  (Before
        this was fixed, ``holds_at`` claimed closed-end occupancy the
        router never actually implemented.)
        """
        if t < self.start:
            return False
        return self.end is None or t < self.end

    @property
    def duration(self) -> TimePoint | None:
        if self.end is None:
            return None
        return self.end - self.start

    def __repr__(self) -> str:
        end = "open" if self.end is None else self.end
        return f"<w_{self.context_name} [{self.start}, {end})>"


@dataclass(frozen=True)
class WindowSpec:
    """A compile-time context window description for grouping/benchmarks.

    ``start`` and ``end`` are *bound keys*: values whose relative order is
    known at compile time (Listing 1 only needs the ordering of window
    bounds, not their absolute values).  ``queries`` is the window's
    associated workload; ``predicates`` optionally carries the threshold
    predicates of the deriving queries so overlap can be inferred by
    predicate subsumption (Definition 2, Figure 7).
    """

    name: str
    start: TimePoint
    end: TimePoint
    queries: tuple["EventQuery", ...] = ()
    predicates: tuple["ThresholdPredicate", ...] = ()
    #: names of the original user windows this spec stands for.  Empty for
    #: a user-authored spec (the spec *is* the original window); populated
    #: by the grouping algorithm when identical-bound windows are merged.
    #: Carrying provenance as structured data — instead of encoding it into
    #: ``name`` with a separator — keeps attribution correct for user
    #: window names containing arbitrary characters (``"+"`` included).
    sources: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ModelError(
                f"window spec {self.name!r} needs start < end, got "
                f"[{self.start}, {self.end}]"
            )

    @property
    def source_names(self) -> tuple[str, ...]:
        """The original user window names this spec carries.

        A plain spec represents itself; a merged spec (identical bounds,
        Listing 1 line 6) represents every window merged into it.
        """
        return self.sources or (self.name,)

    def overlaps(self, other: "WindowSpec") -> bool:
        """True if the two specs' intervals share more than a point."""
        return self.start < other.end and other.start < self.end

    def covers(self, t: TimePoint) -> bool:
        """Half-open ``[start, end)`` coverage — the same occupancy
        convention as :meth:`ContextWindow.holds_at`."""
        return self.start <= t < self.end

    @property
    def length(self) -> TimePoint:
        return self.end - self.start


def windows_guaranteed_overlap(a: WindowSpec, b: WindowSpec) -> bool:
    """Definition 2: for each window of type ``a`` there is a window of type
    ``b`` with ``w_a.start ⊑ w_b`` — here decided from the specs' bounds."""
    return b.start <= a.start < b.end


def windows_contained(a: WindowSpec, b: WindowSpec) -> bool:
    """Definition 2 containment: ``a`` starts and ends within ``b``."""
    return b.start <= a.start and a.end <= b.end


class ContextWindowStore:
    """Runtime store of current context windows for one stream partition.

    Wraps the :class:`ContextBitVector` with actual window objects so the
    engine can report window durations, and implements the set semantics of
    ``CI_c`` / ``CT_c`` (Section 4.1):

    * initiation is idempotent and evicts the default window;
    * termination of the last user window restores the default window;
    * only one window of the same type holds at a time (Section 3.3).
    """

    def __init__(self, context_names: Iterable[str], default_context: str):
        names = set(context_names)
        names.add(default_context)
        self.default_context = default_context
        self.vector = ContextBitVector(names)
        self._open: dict[str, ContextWindow] = {}
        self.closed: list[ContextWindow] = []
        self._initiations = 0
        self._terminations = 0
        #: callbacks ``fn(kind, window)`` with kind "initiated"/"terminated";
        #: invoked synchronously on every real transition (not on no-ops)
        self._listeners: list = []
        self._restore_default(0)

    def register_context(self, name: str) -> bool:
        """Admit a new context type into the partition (online deployment).

        Extends the bit vector's layout; open windows and the default
        window are untouched.  Returns True if the type was actually new.
        """
        return self.vector.register(name)

    # ------------------------------------------------------------------
    # CI_c / CT_c semantics
    # ------------------------------------------------------------------

    def initiate(self, name: str, t: TimePoint) -> bool:
        """``CI_c``: open ``w_c`` unless already open; evict the default.

        Returns True if a new window was actually opened.
        """
        if name not in self.vector:
            raise UnknownContextError(name)
        if name in self._open:
            self.vector.time = t
            return False
        window = ContextWindow(name, t)
        self._open[name] = window
        self.vector.set(name, t)
        self._initiations += 1
        self._notify("initiated", window)
        if name != self.default_context and self.default_context in self._open:
            self._close(self.default_context, t)
        return True

    def terminate(self, name: str, t: TimePoint) -> bool:
        """``CT_c``: close ``w_c``; restore the default if none remain.

        Returns True if a window was actually closed.
        """
        if name not in self.vector:
            raise UnknownContextError(name)
        if name not in self._open:
            self.vector.time = t
            return False
        self._close(name, t)
        self._terminations += 1
        if not self._open:
            self._restore_default(t)
        return True

    def switch(self, from_name: str, to_name: str, t: TimePoint) -> None:
        """SWITCH CONTEXT: terminate ``from_name`` and initiate ``to_name``.

        The initiation happens first so the default window never flickers on
        during the switch (the two windows are consecutive, not overlapping).
        """
        self.initiate(to_name, t)
        self.terminate(from_name, t)

    def _close(self, name: str, t: TimePoint) -> None:
        window = self._open.pop(name)
        window.end = t
        self.closed.append(window)
        self.vector.clear(name, t)
        self._notify("terminated", window)

    def _restore_default(self, t: TimePoint) -> None:
        window = ContextWindow(self.default_context, t)
        self._open[self.default_context] = window
        self.vector.set(self.default_context, t)
        self._notify("initiated", window)

    # ------------------------------------------------------------------
    # transition listeners
    # ------------------------------------------------------------------

    def add_listener(self, listener) -> None:
        """Register ``fn(kind, window)`` for every initiation/termination.

        Listeners fire synchronously inside the deriving phase, so a
        reactive application can alert the instant a context opens rather
        than polling the bit vector.
        """
        self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        self._listeners.remove(listener)

    def _notify(self, kind: str, window: ContextWindow) -> None:
        for listener in self._listeners:
            listener(kind, window)

    # ------------------------------------------------------------------
    # lookups (used by CW_c and the router)
    # ------------------------------------------------------------------

    def is_active(self, name: str) -> bool:
        """Constant-time: does a window of type ``name`` currently hold?"""
        return self.vector.test(name)

    def active_contexts(self) -> tuple[str, ...]:
        return self.vector.active()

    def open_window(self, name: str) -> ContextWindow | None:
        return self._open.get(name)

    def all_windows(self) -> list[ContextWindow]:
        """Closed windows followed by the currently open ones."""
        return self.closed + list(self._open.values())

    @property
    def time(self) -> TimePoint:
        return self.vector.time

    @property
    def initiation_count(self) -> int:
        return self._initiations

    @property
    def termination_count(self) -> int:
        return self._terminations

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """A copy of the store's state for engine checkpointing.

        Listeners are deliberately not captured — they are wiring, not
        state, and must be re-registered by whoever restores.
        """
        return {
            "open": {
                name: (window.start, window.end)
                for name, window in self._open.items()
            },
            "closed": [
                (w.context_name, w.start, w.end) for w in self.closed
            ],
            "time": self.vector.time,
            "initiations": self._initiations,
            "terminations": self._terminations,
        }

    def restore(self, snapshot: dict) -> None:
        """Restore state captured by :meth:`snapshot`."""
        self._open = {
            name: ContextWindow(name, start, end)
            for name, (start, end) in snapshot["open"].items()
        }
        self.closed = [
            ContextWindow(name, start, end)
            for name, start, end in snapshot["closed"]
        ]
        self.vector.clear_all(snapshot["time"])
        for name in self._open:
            self.vector.set(name, snapshot["time"])
        self._initiations = snapshot["initiations"]
        self._terminations = snapshot["terminations"]

    def __repr__(self) -> str:
        active = ", ".join(self.active_contexts())
        return f"<ContextWindowStore t={self.time} active=[{active}]>"
