"""CAESAR: Context-Aware Event Stream Analytics.

A full reproduction of *"Context-aware Event Stream Analytics"* (Poppe, Lei,
Rundensteiner, Dougherty — EDBT 2016): the CAESAR model with application
contexts as first-class citizens, the CAESAR algebra and its context window
operators, the optimizer (context window push-down, window grouping,
workload sharing), and the runtime infrastructure (context bit vector,
context-aware stream router, time-driven transaction scheduler).

Quickstart::

    from repro import CaesarModel, EngineConfig, create_engine, parse_query
    from repro.events import Event, EventStream, EventType

    report_type = EventType.define("Report", value="int", sec="int")
    model = CaesarModel(default_context="normal")
    model.add_context("alert")
    model.add_query(parse_query(
        "INITIATE CONTEXT alert PATTERN Report r WHERE r.value > 100 "
        "CONTEXT normal", name="raise_alert"))
    model.add_query(parse_query(
        "TERMINATE CONTEXT alert PATTERN Report r WHERE r.value <= 100 "
        "CONTEXT alert", name="clear_alert"))
    model.add_query(parse_query(
        "DERIVE Alarm(r.value, r.sec) PATTERN Report r CONTEXT alert",
        name="alarm"))

    engine = create_engine(model)            # or EngineConfig(backend=...)
    result = engine.run(stream)

See ``examples/`` for complete programs and ``DESIGN.md`` for the paper-to-
module map.
"""

from repro.core import (
    CaesarModel,
    ContextBitVector,
    ContextType,
    ContextWindow,
    ContextWindowStore,
    EventQuery,
    GroupedWindow,
    QueryAction,
    WindowSpec,
    group_context_windows,
)
from repro.api import EngineConfig, SupervisionConfig, create_engine
from repro.events import Event, EventStream, EventType, TimeInterval
from repro.language import parse_query
from repro.observability import (
    MetricsRegistry,
    Observability,
    TraceRecorder,
    chrome_trace,
    to_json_snapshot,
    to_prometheus,
)
from repro.optimizer.apply import OptimizationRules
from repro.optimizer.planner import build_query_plan
from repro.optimizer.pushdown import push_context_windows_down
from repro.optimizer.sharing import build_nonshared_workload, build_shared_workload
from repro.runtime import (
    CaesarEngine,
    ContextIndependentEngine,
    DeadLetterQueue,
    EngineReport,
    RecoveryManager,
    ScheduledWorkloadEngine,
    SheddingConfig,
    SupervisedEngine,
    win_ratio,
)

__version__ = "1.0.0"

__all__ = [
    "CaesarEngine",
    "CaesarModel",
    "ContextBitVector",
    "ContextIndependentEngine",
    "ContextType",
    "ContextWindow",
    "ContextWindowStore",
    "DeadLetterQueue",
    "EngineConfig",
    "EngineReport",
    "MetricsRegistry",
    "Observability",
    "OptimizationRules",
    "RecoveryManager",
    "SheddingConfig",
    "SupervisedEngine",
    "SupervisionConfig",
    "TraceRecorder",
    "Event",
    "EventQuery",
    "EventStream",
    "EventType",
    "GroupedWindow",
    "QueryAction",
    "ScheduledWorkloadEngine",
    "TimeInterval",
    "WindowSpec",
    "build_nonshared_workload",
    "build_query_plan",
    "build_shared_workload",
    "chrome_trace",
    "create_engine",
    "group_context_windows",
    "parse_query",
    "push_context_windows_down",
    "to_json_snapshot",
    "to_prometheus",
    "win_ratio",
]
