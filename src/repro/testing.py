"""Testing toolkit for CAESAR applications.

Applications built on this library need to test their *models*: given this
stream, did the right contexts open at the right times, and were the right
events derived?  :func:`trace_model` runs a model over events and returns a
:class:`ModelTrace` with assertion-friendly accessors::

    trace = trace_model(model, events, partition_by=my_partitioner)
    trace.assert_context_active("congestion", at=450, partition=(0, 0, 3))
    trace.assert_derived("TollNotification", count=12)
    assert trace.transitions(partition=(0, 0, 3))[:2] == [
        ("clear", "congestion"), ("congestion", "clear")]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.model import CaesarModel
from repro.core.windows import ContextWindow
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.events.timebase import TimePoint
from repro.runtime.engine import CaesarEngine, EngineReport
from repro.runtime.queues import Partitioner, single_partition


@dataclass
class ModelTrace:
    """The observable behaviour of one model run."""

    report: EngineReport
    default_context: str

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def windows(self, partition: object = None) -> list[ContextWindow]:
        return self.report.windows_by_partition.get(partition, [])

    def contexts_at(
        self, at: TimePoint, *, partition: object = None
    ) -> tuple[str, ...]:
        """Context names whose windows held at time ``at`` (``[start, end)``
        occupancy, so a context is not counted at its own termination
        instant)."""
        names = []
        for window in self.windows(partition):
            if window.start <= at and (window.end is None or at < window.end):
                names.append(window.context_name)
        return tuple(sorted(set(names)))

    def transitions(self, *, partition: object = None) -> list[tuple[str, str]]:
        """Context hand-offs in order: ``(from, to)`` for each window whose
        opening closed (or followed) another."""
        windows = sorted(self.windows(partition), key=lambda w: w.start)
        hops = []
        for previous, current in zip(windows, windows[1:]):
            hops.append((previous.context_name, current.context_name))
        return hops

    def derived(self, type_name: str) -> list[Event]:
        return [e for e in self.report.outputs if e.type_name == type_name]

    # ------------------------------------------------------------------
    # assertions
    # ------------------------------------------------------------------

    def assert_context_active(
        self, context: str, *, at: TimePoint, partition: object = None
    ) -> None:
        active = self.contexts_at(at, partition=partition)
        if context not in active:
            raise AssertionError(
                f"context {context!r} not active at t={at} "
                f"(partition {partition!r}; active: {active})"
            )

    def assert_context_inactive(
        self, context: str, *, at: TimePoint, partition: object = None
    ) -> None:
        active = self.contexts_at(at, partition=partition)
        if context in active:
            raise AssertionError(
                f"context {context!r} unexpectedly active at t={at} "
                f"(partition {partition!r})"
            )

    def assert_derived(
        self,
        type_name: str,
        *,
        count: int | None = None,
        at_least: int | None = None,
    ) -> None:
        actual = len(self.derived(type_name))
        if count is not None and actual != count:
            raise AssertionError(
                f"expected exactly {count} {type_name!r} events, got {actual}"
            )
        if at_least is not None and actual < at_least:
            raise AssertionError(
                f"expected at least {at_least} {type_name!r} events, "
                f"got {actual}"
            )
        if count is None and at_least is None and actual == 0:
            raise AssertionError(f"no {type_name!r} events were derived")

    def assert_nothing_derived(self, type_name: str) -> None:
        actual = len(self.derived(type_name))
        if actual:
            raise AssertionError(
                f"expected no {type_name!r} events, got {actual}"
            )


def trace_model(
    model: CaesarModel,
    events: Iterable[Event] | EventStream,
    *,
    partition_by: Partitioner = single_partition,
    retention: TimePoint = 300,
    optimize: bool = True,
) -> ModelTrace:
    """Run ``model`` over ``events`` and return its :class:`ModelTrace`."""
    stream = (
        events if isinstance(events, EventStream) else EventStream(events)
    )
    engine = CaesarEngine(
        model,
        optimize=optimize,
        partition_by=partition_by,
        retention=retention,
    )
    report = engine.run(stream)
    return ModelTrace(report=report, default_context=model.default_context)
