"""Testing toolkit for CAESAR applications.

Applications built on this library need to test their *models*: given this
stream, did the right contexts open at the right times, and were the right
events derived?  :func:`trace_model` runs a model over events and returns a
:class:`ModelTrace` with assertion-friendly accessors::

    trace = trace_model(model, events, partition_by=my_partitioner)
    trace.assert_context_active("congestion", at=450, partition=(0, 0, 3))
    trace.assert_derived("TollNotification", count=12)
    assert trace.transitions(partition=(0, 0, 3))[:2] == [
        ("clear", "congestion"), ("congestion", "clear")]

Deterministic fault injection
-----------------------------

Supervision machinery (circuit breakers, dead-letter queues, crash
recovery) must be testable without flaky randomness.  :func:`inject_plan_fault`
wraps the operator pipelines of a chosen plan so they raise on *chosen
stream timestamps and/or event types*::

    engine = SupervisedEngine(model, failure_threshold=1, cooldown=40)
    inject_plan_fault(engine, "alert", at_times={30, 40})   # raises at t=30, 40
    report = engine.run(stream)                              # keeps flowing

``crash=True`` raises :class:`InjectedCrashError` (a
:class:`~repro.errors.FatalEngineError`) instead, which escapes supervision
and aborts the run — the deterministic stand-in for a process crash in
recovery tests.  :class:`FaultInjector` provides the same triggering for a
single operator (e.g. an engine preprocessor).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.algebra.operators import ExecutionContext, Operator
from repro.algebra.plan import QueryPlan, clone_operator
from repro.core.model import CaesarModel
from repro.core.windows import ContextWindow
from repro.errors import CaesarError, FatalEngineError, RuntimeEngineError
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.events.timebase import TimePoint
from repro.runtime.engine import CaesarEngine, EngineReport
from repro.runtime.queues import Partitioner, single_partition


@dataclass
class ModelTrace:
    """The observable behaviour of one model run."""

    report: EngineReport
    default_context: str

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def windows(self, partition: object = None) -> list[ContextWindow]:
        return self.report.windows_by_partition.get(partition, [])

    def contexts_at(
        self, at: TimePoint, *, partition: object = None
    ) -> tuple[str, ...]:
        """Context names whose windows held at time ``at`` (``[start, end)``
        occupancy, so a context is not counted at its own termination
        instant)."""
        names = []
        for window in self.windows(partition):
            if window.start <= at and (window.end is None or at < window.end):
                names.append(window.context_name)
        return tuple(sorted(set(names)))

    def transitions(self, *, partition: object = None) -> list[tuple[str, str]]:
        """Context hand-offs in order: ``(from, to)`` for each window whose
        opening closed (or followed) another."""
        windows = sorted(self.windows(partition), key=lambda w: w.start)
        hops = []
        for previous, current in zip(windows, windows[1:]):
            hops.append((previous.context_name, current.context_name))
        return hops

    def derived(self, type_name: str) -> list[Event]:
        return [e for e in self.report.outputs if e.type_name == type_name]

    # ------------------------------------------------------------------
    # assertions
    # ------------------------------------------------------------------

    def assert_context_active(
        self, context: str, *, at: TimePoint, partition: object = None
    ) -> None:
        active = self.contexts_at(at, partition=partition)
        if context not in active:
            raise AssertionError(
                f"context {context!r} not active at t={at} "
                f"(partition {partition!r}; active: {active})"
            )

    def assert_context_inactive(
        self, context: str, *, at: TimePoint, partition: object = None
    ) -> None:
        active = self.contexts_at(at, partition=partition)
        if context in active:
            raise AssertionError(
                f"context {context!r} unexpectedly active at t={at} "
                f"(partition {partition!r})"
            )

    def assert_derived(
        self,
        type_name: str,
        *,
        count: int | None = None,
        at_least: int | None = None,
    ) -> None:
        actual = len(self.derived(type_name))
        if count is not None and actual != count:
            raise AssertionError(
                f"expected exactly {count} {type_name!r} events, got {actual}"
            )
        if at_least is not None and actual < at_least:
            raise AssertionError(
                f"expected at least {at_least} {type_name!r} events, "
                f"got {actual}"
            )
        if count is None and at_least is None and actual == 0:
            raise AssertionError(f"no {type_name!r} events were derived")

    def assert_nothing_derived(self, type_name: str) -> None:
        actual = len(self.derived(type_name))
        if actual:
            raise AssertionError(
                f"expected no {type_name!r} events, got {actual}"
            )


def trace_model(
    model: CaesarModel,
    events: Iterable[Event] | EventStream,
    *,
    partition_by: Partitioner = single_partition,
    retention: TimePoint = 300,
    optimize: bool = True,
) -> ModelTrace:
    """Run ``model`` over ``events`` and return its :class:`ModelTrace`."""
    stream = (
        events if isinstance(events, EventStream) else EventStream(events)
    )
    engine = CaesarEngine(
        model,
        optimize=optimize,
        partition_by=partition_by,
        retention=retention,
    )
    report = engine.run(stream)
    return ModelTrace(report=report, default_context=model.default_context)


# --------------------------------------------------------------------------
# Deterministic fault injection
# --------------------------------------------------------------------------


class InjectedFaultError(CaesarError):
    """A deterministic, injected plan/operator failure (isolatable)."""


class InjectedCrashError(FatalEngineError):
    """A deterministic, injected crash: escapes supervision, aborts the run."""


@dataclass(frozen=True)
class FaultSpec:
    """When to raise: chosen stream timestamps and/or event types.

    Empty ``at_times`` means "at every timestamp"; empty ``event_types``
    means "regardless of the batch contents".  With ``event_types`` set the
    fault only fires when a matching event is present, so pure time
    advances never trigger it.
    """

    at_times: frozenset = field(default_factory=frozenset)
    event_types: frozenset = field(default_factory=frozenset)
    message: str = "injected fault"
    crash: bool = False

    def triggers(self, events: list[Event], now: TimePoint) -> bool:
        if self.at_times and now not in self.at_times:
            return False
        if self.event_types:
            return any(e.type_name in self.event_types for e in events)
        return True

    def fire(self, now: TimePoint) -> None:
        error = InjectedCrashError if self.crash else InjectedFaultError
        raise error(f"{self.message} (t={now})")


class FaultInjector(Operator):
    """Wraps a single operator; raises per the spec, else delegates.

    Shares the inner operator's stats object, so cost accounting sees the
    inner operator's numbers unchanged.  Usable anywhere an operator is —
    notably as an engine preprocessor.
    """

    def __init__(self, inner: Operator, fault: FaultSpec):
        super().__init__(f"FAULT[{inner.name}]")
        self.inner = inner
        self.fault = fault
        self.stats = inner.stats

    def process(self, events: list[Event], ctx: ExecutionContext) -> list[Event]:
        if self.fault.triggers(events, ctx.now):
            self.fault.fire(ctx.now)
        return self.inner.process(events, ctx)

    def on_time_advance(self, now: TimePoint, ctx: ExecutionContext) -> list[Event]:
        if self.fault.triggers([], now):
            self.fault.fire(now)
        return self.inner.on_time_advance(now, ctx)

    def suspends_pipeline(self, ctx: ExecutionContext) -> bool:
        return self.inner.suspends_pipeline(ctx)

    def reset_state(self) -> None:
        self.inner.reset_state()

    def expire_state_before(self, t: TimePoint) -> int:
        return self.inner.expire_state_before(t)

    def snapshot_state(self):
        return self.inner.snapshot_state()

    def restore_state(self, snapshot) -> None:
        self.inner.restore_state(snapshot)

    def state_size(self) -> int:
        inner_size = getattr(self.inner, "state_size", None)
        return inner_size() if callable(inner_size) else 0

    def clone(self) -> "FaultInjector":
        return FaultInjector(clone_operator(self.inner), self.fault)


class FaultyQueryPlan(QueryPlan):
    """A query plan whose pipeline raises per a :class:`FaultSpec`.

    Clone-safe: per-partition plan instantiation preserves the fault, so
    injection into an engine's plan *templates* reaches every partition.
    """

    def __init__(self, operators, *, name, context_name, fault: FaultSpec):
        super().__init__(operators, name=name, context_name=context_name)
        self.fault = fault

    @classmethod
    def wrap(cls, plan: QueryPlan, fault: FaultSpec) -> "FaultyQueryPlan":
        return cls(
            plan.operators,
            name=plan.name,
            context_name=plan.context_name,
            fault=fault,
        )

    def execute(self, events: list[Event], ctx: ExecutionContext) -> list[Event]:
        if self.fault.triggers(events, ctx.now):
            self.fault.fire(ctx.now)
        return super().execute(events, ctx)

    def advance_time(self, now: TimePoint, ctx: ExecutionContext) -> list[Event]:
        if self.fault.triggers([], now):
            self.fault.fire(now)
        return super().advance_time(now, ctx)

    def clone(self, *, name: str | None = None) -> "FaultyQueryPlan":
        return FaultyQueryPlan(
            [clone_operator(op) for op in self.operators],
            name=name or self.name,
            context_name=self.context_name,
            fault=self.fault,
        )


def inject_plan_fault(
    engine: CaesarEngine,
    context: str,
    *,
    phase: str = "processing",
    plan_name: str | None = None,
    at_times: Iterable[TimePoint] = (),
    event_types: Iterable[str] = (),
    crash: bool = False,
    message: str = "injected fault",
) -> FaultSpec:
    """Make a plan of ``context`` raise deterministically.

    Wraps the matching individual plan(s) inside the engine's combined-plan
    template for ``(phase, context)``, so every partition instantiated
    afterwards carries the fault.  Must be called before the engine
    processes events (templates are cloned per partition lazily).

    Returns the installed :class:`FaultSpec`.
    """
    if engine._partitions:
        raise RuntimeEngineError(
            "inject_plan_fault must run before the engine processes events "
            "(per-partition plans are already instantiated)"
        )
    if phase not in ("deriving", "processing"):
        raise ValueError(f"phase must be 'deriving' or 'processing', got {phase!r}")
    templates = (
        engine._processing_templates
        if phase == "processing"
        else engine._deriving_templates
    )
    combined = templates.get(context)
    if combined is None:
        raise RuntimeEngineError(
            f"no {phase} plan for context {context!r} "
            f"(have: {sorted(templates)})"
        )
    fault = FaultSpec(
        at_times=frozenset(at_times),
        event_types=frozenset(event_types),
        message=message,
        crash=crash,
    )
    # plan names inside a combined plan carry an "@context" suffix;
    # accept either the decorated or the bare query name
    matches = (
        lambda plan: plan_name is None
        or plan.name == plan_name
        or plan.name == f"{plan_name}@{context}"
    )
    wrapped = 0
    for index, plan in enumerate(combined.plans):
        if matches(plan):
            combined.plans[index] = FaultyQueryPlan.wrap(plan, fault)
            wrapped += 1
    if not wrapped:
        raise RuntimeEngineError(
            f"no plan named {plan_name!r} in the {phase} plan of "
            f"context {context!r}"
        )
    return fault
