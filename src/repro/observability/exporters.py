"""Metric exporters: Prometheus text format, JSON snapshots, human stats.

Three consumers, three formats:

* :func:`to_prometheus` — the Prometheus text exposition format (v0.0.4),
  suitable for a scrape endpoint or a textfile-collector drop;
* :func:`to_json_snapshot` — a JSON-serializable snapshot (metrics plus
  trace accounting), the payload handed to periodic snapshot hooks;
* :func:`render_stats` — the aligned human table behind ``repro stats``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.observability.registry import (
    Histogram,
    Instrument,
    MetricsRegistry,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observability.hub import Observability


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def to_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format.

    Instruments sharing a name (label variants) are grouped under one
    ``# HELP`` / ``# TYPE`` header; histograms expand to cumulative
    ``_bucket{le=...}`` series plus ``_sum`` and ``_count``.
    """
    by_name: dict[str, list[Instrument]] = {}
    for instrument in registry.instruments():
        by_name.setdefault(instrument.name, []).append(instrument)

    lines: list[str] = []
    for name in sorted(by_name):
        group = sorted(by_name[name], key=lambda i: i.labels)
        first = group[0]
        if first.help:
            lines.append(f"# HELP {name} {first.help}")
        lines.append(f"# TYPE {name} {first.kind}")
        for instrument in group:
            if isinstance(instrument, Histogram):
                base_labels = list(instrument.labels)
                for le, cumulative in instrument.cumulative_buckets():
                    pairs = base_labels + [("le", le)]
                    inner = ",".join(f'{k}="{v}"' for k, v in pairs)
                    lines.append(f"{name}_bucket{{{inner}}} {cumulative}")
                suffix = instrument.label_suffix()
                lines.append(
                    f"{name}_sum{suffix} {_format_value(instrument.sum)}"
                )
                lines.append(f"{name}_count{suffix} {instrument.count}")
            else:
                lines.append(
                    f"{name}{instrument.label_suffix()} "
                    f"{_format_value(instrument.snapshot_value())}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def to_json_snapshot(
    source: "MetricsRegistry | Observability",
    *,
    deterministic_only: bool = False,
) -> dict:
    """A JSON-serializable snapshot of a registry or a whole facade."""
    from repro.observability.hub import Observability

    if isinstance(source, Observability):
        return source.snapshot(deterministic_only=deterministic_only)
    return {
        "metrics": source.snapshot(deterministic_only=deterministic_only)
    }


def render_stats(registry: MetricsRegistry, *, title: str = "instruments") -> str:
    """An aligned human-readable instrument table (``repro stats``)."""
    instruments = sorted(
        registry.instruments(), key=lambda i: (i.name, i.labels)
    )
    if not instruments:
        return f"{title}: (observability disabled — no instruments)"
    rows: list[tuple[str, str, str]] = []
    for instrument in instruments:
        label = instrument.name + instrument.label_suffix()
        if isinstance(instrument, Histogram):
            value = (
                f"count={instrument.count} sum={instrument.sum:.6g} "
                f"mean={instrument.mean:.6g}"
            )
        else:
            value = _format_value(instrument.snapshot_value())
        rows.append((label, instrument.kind, value))
    name_width = max(len(r[0]) for r in rows)
    kind_width = max(len(r[1]) for r in rows)
    lines = [f"== {title} =="]
    for label, kind, value in rows:
        lines.append(f"{label:<{name_width}}  {kind:<{kind_width}}  {value}")
    return "\n".join(lines)
