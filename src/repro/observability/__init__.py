"""Runtime-wide observability: metrics registry, trace spans, exporters.

See :mod:`repro.observability.hub` for the engine-facing facade and
``docs/observability.md`` for the instrument catalog.
"""

from repro.observability.exporters import (
    render_stats,
    to_json_snapshot,
    to_prometheus,
)
from repro.observability.hub import (
    EngineInstruments,
    NULL_OBSERVABILITY,
    NullObservability,
    Observability,
    OBSERVABILITY_ENV_VAR,
    resolve_observability,
)
from repro.observability.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    SIZE_BUCKETS,
    TIME_BUCKETS,
)
from repro.observability.tracing import TraceRecorder, chrome_trace

__all__ = [
    "Counter",
    "EngineInstruments",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBSERVABILITY",
    "NULL_REGISTRY",
    "NullObservability",
    "NullRegistry",
    "Observability",
    "OBSERVABILITY_ENV_VAR",
    "SIZE_BUCKETS",
    "TIME_BUCKETS",
    "TraceRecorder",
    "chrome_trace",
    "render_stats",
    "resolve_observability",
    "to_json_snapshot",
    "to_prometheus",
]
