"""Structured trace spans with a ring-buffer recorder.

A *span* is one timed unit of engine work — a stream batch, a transaction,
one plan evaluation — recorded with its wall duration, category and
structured arguments (stream time, partition, context).  Spans live in a
bounded ring buffer (:class:`TraceRecorder`), so tracing a long run costs
constant memory: the newest ``capacity`` spans are retained and the
monotonic :attr:`TraceRecorder.recorded_total` keeps the loss honest.

The export target is the Chrome trace-event format (`chrome://tracing`,
Perfetto, speedscope): :func:`chrome_trace` renders the retained spans as
complete events (``"ph": "X"``) with microsecond timestamps relative to
the recorder's origin.  Spans recorded inside forked shard workers carry
the worker's pid/tid, so an 8-partition run fans out visually into its
worker lanes.

Like the metrics registry, the recorder supports the snapshot-delta-absorb
protocol (:meth:`baseline` / :meth:`since` / :meth:`absorb`) used to merge
worker-local spans into the parent recorder at end of run.
"""

from __future__ import annotations

import json
import os
import threading
import time as _time
from collections import deque
from contextlib import contextmanager


class TraceRecorder:
    """Bounded recorder of trace spans (newest ``capacity`` retained)."""

    def __init__(self, capacity: int = 8192):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._spans: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        #: wall-clock time at recorder creation (trace epoch, seconds)
        self.wall_origin = _time.time()
        self._perf_origin = _time.perf_counter()
        #: total spans ever recorded (monotonic; eviction does not subtract)
        self.recorded_total = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def now_us(self) -> float:
        """Microseconds since the recorder's origin."""
        return (_time.perf_counter() - self._perf_origin) * 1e6

    def record(
        self,
        name: str,
        *,
        cat: str = "engine",
        ts: float,
        dur: float,
        args: dict | None = None,
    ) -> dict:
        """Record one complete span (timestamps in µs since origin)."""
        span = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": ts,
            "dur": dur,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "args": args or {},
        }
        with self._lock:
            self._spans.append(span)
            self.recorded_total += 1
        return span

    @contextmanager
    def span(self, name: str, cat: str = "engine", **args):
        """Context manager timing one unit of work::

            with recorder.span("transaction", t=42, partition="seg-3"):
                ...
        """
        started = self.now_us()
        try:
            yield
        finally:
            self.record(
                name, cat=cat, ts=started, dur=self.now_us() - started,
                args=args,
            )

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def spans(self) -> list[dict]:
        """The retained spans, oldest first."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    @property
    def dropped(self) -> int:
        """Spans evicted by the ring bound."""
        return self.recorded_total - len(self._spans)

    # ------------------------------------------------------------------
    # worker fan-in
    # ------------------------------------------------------------------

    def baseline(self) -> int:
        """Fork-time marker; pair with :meth:`since`."""
        return self.recorded_total

    def since(self, baseline: int) -> list[dict]:
        """Spans recorded after ``baseline`` that are still retained."""
        with self._lock:
            new = self.recorded_total - baseline
            if new <= 0:
                return []
            retained = list(self._spans)
        return retained[-new:] if new < len(retained) else retained

    def absorb(self, spans: list[dict]) -> None:
        """Merge spans recorded by a worker (parent side of the fan-in)."""
        with self._lock:
            for span in spans:
                self._spans.append(span)
                self.recorded_total += 1


def chrome_trace(recorder: "TraceRecorder | list[dict]", *, indent=None) -> str:
    """Render spans as a Chrome trace-event JSON document.

    Load the result in ``chrome://tracing`` / Perfetto; accepts either a
    recorder or a plain span list (e.g. a filtered selection).
    """
    spans = recorder.spans() if isinstance(recorder, TraceRecorder) else recorder
    document = {
        "traceEvents": spans,
        "displayTimeUnit": "ms",
    }
    if isinstance(recorder, TraceRecorder):
        document["otherData"] = {
            "wall_origin": recorder.wall_origin,
            "recorded_total": recorder.recorded_total,
            "dropped": recorder.dropped,
        }
    return json.dumps(document, indent=indent, default=str)
