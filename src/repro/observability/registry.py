"""Metrics registry: counters, gauges and fixed-bucket histograms.

The registry is the storage half of the observability subsystem
(`docs/observability.md`).  Design constraints, in order:

1. **Hot-path cheapness.**  Instruments are *preregistered handles*: the
   engine resolves each instrument once (at construction) and the run loop
   performs a plain method call per update — no name lookup, no label
   hashing, no allocation.  A mutation is one lock acquisition plus one
   float add, and all engine updates happen at *batch* granularity, never
   per event.
2. **A no-op mode.**  :class:`NullRegistry` hands out shared null
   instruments whose mutators do nothing, so instrumented code needs no
   ``if enabled`` branches; disabling observability degrades every update
   to an empty method call.
3. **Deterministic fan-in.**  Worker processes of the sharded execution
   backends accumulate into forked registry copies; :meth:`MetricsRegistry.
   baseline` / :meth:`delta` / :meth:`merge_delta` implement the same
   snapshot-delta-absorb protocol the supervision state uses, so counters
   and histograms are byte-identical across serial, thread and process
   backends.  Gauges are point-in-time values refreshed by the parent and
   are deliberately excluded from fan-in.

Instruments carry a ``deterministic`` flag: counters of discrete facts
(batches, cost units, reclamations) are reproducible run-to-run, while
wall-clock timing histograms are not.  ``snapshot(deterministic_only=True)``
is the projection the cross-backend parity tests compare byte-for-byte.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Iterable, Mapping

#: Default buckets for durations in seconds (1 µs .. 10 s).
TIME_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 10.0,
)

#: Default buckets for sizes/counts (1 .. 10 000).
SIZE_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000,
)

LabelPairs = tuple[tuple[str, str], ...]


def _normalize_labels(labels: Mapping[str, str] | None) -> LabelPairs:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Instrument:
    """Base class: a named, optionally labelled time series."""

    kind = "untyped"

    __slots__ = ("name", "help", "labels", "deterministic", "_lock")

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: LabelPairs = (),
        *,
        deterministic: bool = True,
    ):
        self.name = name
        self.help = help
        self.labels = labels
        self.deterministic = deterministic
        self._lock = threading.Lock()

    @property
    def key(self) -> tuple[str, LabelPairs]:
        return (self.name, self.labels)

    def label_suffix(self) -> str:
        if not self.labels:
            return ""
        inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in self.labels)
        return "{" + inner + "}"

    def snapshot_value(self):
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}{self.label_suffix()}>"


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


class Counter(Instrument):
    """Monotonically increasing count (events, cost units, reclamations)."""

    kind = "counter"

    __slots__ = ("value",)

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self.value += amount

    def snapshot_value(self) -> float:
        return self.value


class Gauge(Instrument):
    """Point-in-time value (queue depth, open windows, DLQ occupancy)."""

    kind = "gauge"

    __slots__ = ("value",)

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def snapshot_value(self) -> float:
        return self.value


class Histogram(Instrument):
    """Fixed-bucket histogram (batch latency, per-plan evaluation time).

    Buckets are *upper bounds* in ascending order; an implicit ``+Inf``
    bucket catches the overflow, exactly the Prometheus model.  Bucket
    boundaries are fixed at registration, so observation is a binary
    search plus one integer increment — no dynamic rebucketing ever.
    """

    kind = "histogram"

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: LabelPairs = (),
        *,
        buckets: Iterable[float] = TIME_BUCKETS,
        deterministic: bool = False,
    ):
        super().__init__(name, help, labels, deterministic=deterministic)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds):
            raise ValueError(f"bucket bounds must be ascending, got {bounds}")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot: +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def cumulative_buckets(self) -> list[tuple[str, int]]:
        """``(le, cumulative_count)`` pairs ending with ``+Inf``."""
        pairs: list[tuple[str, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            pairs.append((format_bound(bound), running))
        pairs.append(("+Inf", running + self.counts[-1]))
        return pairs

    def snapshot_value(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "buckets": {le: c for le, c in self.cumulative_buckets()},
        }


def format_bound(bound: float) -> str:
    """Prometheus-style bound rendering (integral bounds without ``.0``)."""
    if bound == int(bound):
        return str(int(bound))
    return repr(bound)


class MetricsRegistry:
    """Instrument factory and store with get-or-create semantics.

    ``counter``/``gauge``/``histogram`` return the existing instrument when
    called twice with the same name and labels (asserting the kind
    matches), so independent components may share an instrument handle —
    e.g. every partition's garbage collector increments the same
    reclamation counter.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[tuple[str, LabelPairs], Instrument] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def _get_or_create(self, factory, name, help, labels, **kwargs):
        key = (name, _normalize_labels(labels))
        with self._lock:
            existing = self._instruments.get(key)
            if existing is not None:
                expected = factory.kind
                if existing.kind != expected:
                    raise ValueError(
                        f"instrument {name!r} already registered as "
                        f"{existing.kind}, cannot re-register as {expected}"
                    )
                return existing
            instrument = factory(name, help, key[1], **kwargs)
            self._instruments[key] = instrument
            return instrument

    def counter(
        self,
        name: str,
        help: str = "",
        *,
        labels: Mapping[str, str] | None = None,
        deterministic: bool = True,
    ) -> Counter:
        return self._get_or_create(
            Counter, name, help, labels, deterministic=deterministic
        )

    def gauge(
        self,
        name: str,
        help: str = "",
        *,
        labels: Mapping[str, str] | None = None,
        deterministic: bool = False,
    ) -> Gauge:
        return self._get_or_create(
            Gauge, name, help, labels, deterministic=deterministic
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        *,
        labels: Mapping[str, str] | None = None,
        buckets: Iterable[float] = TIME_BUCKETS,
        deterministic: bool = False,
    ) -> Histogram:
        return self._get_or_create(
            Histogram,
            name,
            help,
            labels,
            buckets=buckets,
            deterministic=deterministic,
        )

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def instruments(self) -> list[Instrument]:
        with self._lock:
            return list(self._instruments.values())

    def get(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> Instrument | None:
        return self._instruments.get((name, _normalize_labels(labels)))

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self, *, deterministic_only: bool = False) -> dict:
        """``{"name{labels}": value}`` for counters/gauges, dicts for
        histograms.  With ``deterministic_only`` the snapshot is the
        reproducible projection the cross-backend parity contract covers."""
        result: dict[str, object] = {}
        for instrument in self.instruments():
            if deterministic_only and not instrument.deterministic:
                continue
            result[instrument.name + instrument.label_suffix()] = (
                instrument.snapshot_value()
            )
        return result

    # ------------------------------------------------------------------
    # worker fan-in (snapshot → delta → absorb)
    # ------------------------------------------------------------------

    def baseline(self) -> dict:
        """Raw values at fork time; pair with :meth:`delta`."""
        base: dict[tuple[str, LabelPairs], object] = {}
        for instrument in self.instruments():
            if instrument.kind == "counter":
                base[instrument.key] = instrument.value
            elif instrument.kind == "histogram":
                base[instrument.key] = (
                    list(instrument.counts),
                    instrument.sum,
                    instrument.count,
                )
        return base

    def delta(self, baseline: dict | None) -> dict:
        """What this registry accumulated beyond ``baseline`` (picklable).

        Gauges are excluded: they are point-in-time values the parent
        refreshes from fanned-in state, not accumulations.
        """
        baseline = baseline or {}
        counters: dict = {}
        histograms: dict = {}
        for instrument in self.instruments():
            if instrument.kind == "counter":
                before = baseline.get(instrument.key, 0.0)
                change = instrument.value - before
                if change:
                    counters[instrument.key] = (
                        change,
                        instrument.help,
                        instrument.deterministic,
                    )
            elif instrument.kind == "histogram":
                before_counts, before_sum, before_count = baseline.get(
                    instrument.key, ([0] * len(instrument.counts), 0.0, 0)
                )
                count_change = instrument.count - before_count
                if count_change:
                    histograms[instrument.key] = (
                        [
                            now - past
                            for now, past in zip(
                                instrument.counts, before_counts
                            )
                        ],
                        instrument.sum - before_sum,
                        count_change,
                        instrument.bounds,
                        instrument.help,
                        instrument.deterministic,
                    )
        return {"counters": counters, "histograms": histograms}

    def merge_delta(self, delta: dict | None) -> None:
        """Absorb a worker's :meth:`delta` (parent side of the fan-in)."""
        if not delta:
            return
        for (name, labels), (change, help, deterministic) in delta[
            "counters"
        ].items():
            counter = self.counter(
                name, help, labels=dict(labels), deterministic=deterministic
            )
            counter.inc(change)
        for (name, labels), (
            counts,
            sum_change,
            count_change,
            bounds,
            help,
            deterministic,
        ) in delta["histograms"].items():
            histogram = self.histogram(
                name,
                help,
                labels=dict(labels),
                buckets=bounds,
                deterministic=deterministic,
            )
            with histogram._lock:
                for index, change in enumerate(counts):
                    histogram.counts[index] += change
                histogram.sum += sum_change
                histogram.count += count_change


class _NullInstrument:
    """Shared do-nothing instrument; satisfies every mutator interface."""

    __slots__ = ()

    kind = "null"
    name = "<null>"
    help = ""
    labels: LabelPairs = ()
    deterministic = True
    value = 0.0
    sum = 0.0
    count = 0
    mean = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def snapshot_value(self) -> float:
        return 0.0


NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """The disabled registry: hands out shared no-op instruments.

    Instrumented code keeps calling ``counter(...)``/``inc()`` untouched;
    everything collapses to empty method calls and ``snapshot()`` is empty.
    """

    enabled = False

    def _get_or_create(self, factory, name, help, labels, **kwargs):
        return NULL_INSTRUMENT

    def instruments(self) -> list[Instrument]:
        return []

    def snapshot(self, *, deterministic_only: bool = False) -> dict:
        return {}

    def baseline(self) -> dict:
        return {}

    def delta(self, baseline: dict | None) -> dict:
        return {"counters": {}, "histograms": {}}

    def merge_delta(self, delta: dict | None) -> None:
        pass


#: Shared disabled registry (stateless, safe to share between engines).
NULL_REGISTRY = NullRegistry()
