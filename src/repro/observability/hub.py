"""The observability facade wired into every engine.

One :class:`Observability` object bundles the three concerns an engine
needs at runtime:

* a :class:`~repro.observability.registry.MetricsRegistry` (or the shared
  no-op registry when metrics are off);
* an optional :class:`~repro.observability.tracing.TraceRecorder` for
  structured spans (``tracing=True``);
* periodic snapshot hooks: every ``snapshot_interval`` batches the engine
  refreshes its gauges and the facade hands a JSON snapshot to each
  ``on_snapshot`` callback — how long runs get scraped mid-flight.

Three intensity levels, cheapest first:

``metrics`` (the default)
    Batch-granularity counters, gauges and latency histograms updated from
    the scheduler thread only.  Cheap enough to stay on by default.
``detailed``
    Adds per-plan wall-time histograms and per-operator cost attribution —
    shard workers time each plan evaluation.
``tracing``
    Adds trace spans (batch / transaction / plan) into the ring recorder.

The engine default is governed by the ``CAESAR_OBSERVABILITY`` environment
variable: unset means metrics-on; ``off`` disables everything (the no-op
registry); ``detailed`` / ``trace`` escalate.  Explicit constructor
arguments always win over the environment.

Worker fan-in mirrors the supervision state protocol: forked shard workers
snapshot a baseline at startup, ship deltas home at end of run, and the
parent absorbs them — deterministic counters end up byte-identical across
the serial, thread and process backends.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable

from repro.observability.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    SIZE_BUCKETS,
    TIME_BUCKETS,
)
from repro.observability.tracing import TraceRecorder

#: Environment variable consulted when an engine is built without an
#: explicit observability spec: ``off`` | ``on`` | ``detailed`` | ``trace``.
OBSERVABILITY_ENV_VAR = "CAESAR_OBSERVABILITY"

_OFF_VALUES = frozenset({"off", "0", "false", "none", "disabled"})
_ON_VALUES = frozenset({"", "on", "1", "true", "metrics", "default"})


class _NullSpan:
    """Reusable no-op context manager for disabled tracing."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


_NULL_SPAN = _NullSpan()


class Observability:
    """Metrics + tracing + snapshot hooks behind one engine-facing handle."""

    def __init__(
        self,
        *,
        metrics: bool = True,
        detailed: bool = False,
        tracing: bool = False,
        trace_capacity: int = 8192,
        snapshot_interval: int | None = None,
        on_snapshot: Callable[[dict], object]
        | Iterable[Callable[[dict], object]]
        | None = None,
        registry: MetricsRegistry | None = None,
        recorder: TraceRecorder | None = None,
    ):
        if snapshot_interval is not None and snapshot_interval <= 0:
            raise ValueError(
                f"snapshot_interval must be positive, got {snapshot_interval}"
            )
        if registry is not None:
            self.registry = registry
        else:
            self.registry = MetricsRegistry() if metrics else NULL_REGISTRY
        self.tracing = tracing
        self.detailed = detailed
        if recorder is not None:
            self.recorder = recorder
        else:
            self.recorder = TraceRecorder(trace_capacity) if tracing else None
        self.snapshot_interval = snapshot_interval
        if on_snapshot is None:
            hooks: list[Callable[[dict], object]] = []
        elif callable(on_snapshot):
            hooks = [on_snapshot]
        else:
            hooks = list(on_snapshot)
        self.on_snapshot = hooks
        self.snapshots_emitted = 0

    @property
    def enabled(self) -> bool:
        """True when the metrics registry records anything at all."""
        return self.registry.enabled

    # ------------------------------------------------------------------
    # tracing
    # ------------------------------------------------------------------

    def span(self, name: str, cat: str = "engine", **args):
        """A timed span context manager; free no-op when tracing is off."""
        if self.tracing and self.recorder is not None:
            return self.recorder.span(name, cat, **args)
        return _NULL_SPAN

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------

    def snapshot(self, *, deterministic_only: bool = False) -> dict:
        """A JSON-serializable view of everything observed so far."""
        result: dict = {
            "metrics": self.registry.snapshot(
                deterministic_only=deterministic_only
            ),
        }
        if self.recorder is not None:
            result["trace"] = {
                "recorded": self.recorder.recorded_total,
                "retained": len(self.recorder),
                "dropped": self.recorder.dropped,
            }
        return result

    def snapshot_due(self, batches: int) -> bool:
        """Is a periodic snapshot due after ``batches`` processed batches?"""
        return (
            self.enabled
            and self.snapshot_interval is not None
            and batches > 0
            and batches % self.snapshot_interval == 0
        )

    def emit_snapshot(self, now=None) -> dict:
        """Build a snapshot and hand it to every registered hook."""
        snapshot = self.snapshot()
        if now is not None:
            snapshot["stream_time"] = now
        self.snapshots_emitted += 1
        for hook in self.on_snapshot:
            hook(snapshot)
        return snapshot

    # ------------------------------------------------------------------
    # worker fan-in (process backend)
    # ------------------------------------------------------------------

    def worker_baseline(self) -> dict | None:
        """Fork-time snapshot a shard worker measures its deltas against."""
        if not self.enabled and self.recorder is None:
            return None
        return {
            "metrics": self.registry.baseline(),
            "spans": (
                self.recorder.baseline() if self.recorder is not None else 0
            ),
        }

    def worker_summary(self, baseline: dict | None) -> dict | None:
        """What this (worker-side) facade accumulated beyond ``baseline``."""
        if not self.enabled and self.recorder is None:
            return None
        baseline = baseline or {}
        return {
            "metrics": self.registry.delta(baseline.get("metrics")),
            "spans": (
                self.recorder.since(baseline.get("spans", 0))
                if self.recorder is not None
                else []
            ),
        }

    def absorb_worker(self, summary: dict | None) -> None:
        """Merge a worker's summary into this (parent-side) facade."""
        if not summary:
            return
        self.registry.merge_delta(summary.get("metrics"))
        spans = summary.get("spans")
        if spans and self.recorder is not None:
            self.recorder.absorb(spans)


class NullObservability(Observability):
    """Fully disabled observability: no registry state, no spans, no hooks."""

    def __init__(self):
        super().__init__(metrics=False, registry=NULL_REGISTRY)

    def span(self, name: str, cat: str = "engine", **args):
        return _NULL_SPAN

    def snapshot_due(self, batches: int) -> bool:
        return False

    def worker_baseline(self) -> dict | None:
        return None

    def worker_summary(self, baseline: dict | None) -> dict | None:
        return None

    def absorb_worker(self, summary: dict | None) -> None:
        pass


#: Shared disabled facade (stateless; safe to share between engines).
NULL_OBSERVABILITY = NullObservability()


def resolve_observability(
    spec: "Observability | str | bool | None",
) -> Observability:
    """Turn an observability spec into a facade instance.

    ``None`` consults the ``CAESAR_OBSERVABILITY`` environment variable
    (unset ⇒ metrics on); booleans toggle between default metrics and the
    shared no-op facade; strings name an intensity level (``off`` | ``on``
    | ``detailed`` | ``trace``); instances pass through.  Every resolved
    enabled facade is a *fresh* instance — engines never share registries
    unless the caller passes one explicitly.
    """
    if isinstance(spec, Observability):
        return spec
    if spec is False:
        return NULL_OBSERVABILITY
    if spec is True:
        return Observability()
    if spec is None:
        spec = os.environ.get(OBSERVABILITY_ENV_VAR, "")
    mode = str(spec).strip().lower()
    if mode in _OFF_VALUES:
        return NULL_OBSERVABILITY
    if mode in _ON_VALUES:
        return Observability()
    if mode == "detailed":
        return Observability(detailed=True)
    if mode in ("trace", "tracing", "full"):
        return Observability(detailed=True, tracing=True)
    raise ValueError(
        f"unknown observability mode {spec!r}; choose one of "
        f"'off', 'on', 'detailed', 'trace' "
        f"(or set {OBSERVABILITY_ENV_VAR} accordingly)"
    )


class EngineInstruments:
    """Preregistered instrument handles for the engine hot loop.

    Resolved once at engine construction so the run loop never performs a
    registry lookup; with a disabled registry every handle is the shared
    null instrument and updates are empty method calls.

    Counters are *deterministic* — pure functions of the stream, fanned in
    byte-identically across execution backends.  The batch service/latency
    histograms are not, even under the ``seconds_per_cost_unit`` model:
    parallel backends associate per-shard cost sums differently, so modeled
    service times can differ in the last float ulp.  Timings therefore stay
    out of the ``snapshot(deterministic_only=True)`` parity projection.
    """

    __slots__ = (
        "batches",
        "events",
        "outputs",
        "transactions",
        "empty_timestamps",
        "batch_service",
        "batch_latency",
        "cost_units",
        "suppressed",
        "routed",
        "uninterested",
        "history_discards",
        "gc_reclaimed",
        "gc_runs",
        "partitions",
        "queue_depth",
        "open_windows",
        "windows_total",
        "snapshots",
        "transport_bytes_out",
        "transport_bytes_in",
        "batches_shm",
        "batches_pickled",
    )

    def __init__(self, registry: MetricsRegistry):
        counter = registry.counter
        gauge = registry.gauge
        histogram = registry.histogram
        self.batches: Counter = counter(
            "caesar_batches_total", "Stream batches processed"
        )
        self.events: Counter = counter(
            "caesar_events_total", "Input events processed"
        )
        self.outputs: Counter = counter(
            "caesar_outputs_total", "Complex events derived"
        )
        self.transactions: Counter = counter(
            "caesar_transactions_total", "Stream transactions executed"
        )
        self.empty_timestamps: Counter = counter(
            "caesar_empty_timestamps_total",
            "Timestamps scheduled with no distributable events",
        )
        self.batch_service: Histogram = histogram(
            "caesar_batch_service_seconds",
            "Service time per batch (wall or cost-modeled)",
            buckets=TIME_BUCKETS,
        )
        self.batch_latency: Histogram = histogram(
            "caesar_batch_latency_seconds",
            "Event-time batch latency under the queueing model",
            buckets=TIME_BUCKETS,
        )
        self.cost_units: Counter = counter(
            "caesar_cost_units_total", "Operator cost units spent"
        )
        self.suppressed: Counter = counter(
            "caesar_batches_suppressed_total",
            "Plan dispatches suppressed by context suspension",
        )
        self.routed: Counter = counter(
            "caesar_batches_routed_total", "Plan dispatches executed"
        )
        self.uninterested: Counter = counter(
            "caesar_batches_uninterested_total",
            "Plan dispatches skipped by interest-set routing",
        )
        self.history_discards: Counter = counter(
            "caesar_history_discards_total",
            "Partial matches discarded on context termination",
        )
        self.gc_reclaimed: Counter = counter(
            "caesar_gc_reclaimed_total",
            "State items reclaimed by the garbage collector",
        )
        self.gc_runs: Counter = counter(
            "caesar_gc_runs_total", "Garbage collection runs"
        )
        self.partitions: Gauge = gauge(
            "caesar_partitions", "Stream partitions observed"
        )
        self.queue_depth: Gauge = gauge(
            "caesar_queue_depth",
            "Events pending in partition queues after batch admission",
        )
        self.open_windows: Gauge = gauge(
            "caesar_open_windows", "Currently open context windows"
        )
        self.windows_total: Gauge = gauge(
            "caesar_context_windows", "Context windows observed (open+closed)"
        )
        self.snapshots: Counter = counter(
            "caesar_snapshots_total", "Periodic observability snapshots emitted"
        )
        # Transport diagnostics: how events moved between processes, not
        # what the run computed.  Byte counts depend on pickle protocol
        # details and ring geometry, so like the timing histograms they
        # are non-deterministic and stay out of the parity projection.
        self.transport_bytes_out: Counter = counter(
            "caesar_transport_bytes_out_total",
            "Bytes shipped to shard workers (shm frames + pipe messages)",
            deterministic=False,
        )
        self.transport_bytes_in: Counter = counter(
            "caesar_transport_bytes_in_total",
            "Bytes shipped back from shard workers",
            deterministic=False,
        )
        self.batches_shm: Counter = counter(
            "caesar_batches_shm_total",
            "Event batches placed in a shared-memory ring",
            deterministic=False,
        )
        self.batches_pickled: Counter = counter(
            "caesar_batches_pickled_fallback_total",
            "Event batches that fell back to pipe pickling",
            deterministic=False,
        )
