"""Executing one configuration of a differential pair.

:class:`RunSpec` is a frozen description of *how* to run a scenario's
stream — which optimizer rules, context-aware or baseline, which backend,
whether to checkpoint/restore mid-stream, whether to jitter arrival order
through a reorder buffer.  :func:`execute` turns
``(scenario, spec, events)`` into a :class:`~repro.difftest.canonical.CanonicalResult`
via the public :func:`~repro.api.create_engine` path, so the harness
exercises exactly the configuration surface applications use.

Everything is a pure function of its inputs: same scenario + spec + events
→ same canonical result.  That property is what makes ddmin shrinking
(:mod:`repro.difftest.shrink`) sound.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass

from repro.algebra.plan import _spec_types as pattern_input_types
from repro.api import EngineConfig, create_engine
from repro.difftest.canonical import (
    CanonicalResult,
    Divergence,
    canonicalize,
    first_divergence,
)
from repro.difftest.scenarios import Scenario
from repro.errors import CaesarError
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.optimizer.apply import OptimizationRules
from repro.optimizer.sharing import (
    build_nonshared_workload,
    build_shared_workload,
)
from repro.runtime.checkpoint import capture_checkpoint, restore_checkpoint
from repro.runtime.reorder import ReorderBuffer
from repro.runtime.shedding import SheddingConfig, event_value_key

#: The shedding configuration every ``shed`` run uses.  A tight latency
#: target against a modest cost rate, so the controller builds real
#: pressure on the difftest streams; ``record_decisions`` keeps the shed
#: identity set the protected-subset projection filters by.
DIFF_SHED_CONFIG = SheddingConfig(
    latency_target=1.0,
    cost_rate=5.0,
    seed=1299827,
    record_decisions=True,
)

_NAMED_RULES = {
    "default": OptimizationRules.default(),
    "none": OptimizationRules.none(),
    "full": OptimizationRules.all(),
}


def resolve_rules(spec: "str | bool | OptimizationRules") -> OptimizationRules:
    """Accept named rule sets, bools, or explicit rule objects."""
    if isinstance(spec, str):
        try:
            return _NAMED_RULES[spec]
        except KeyError:
            raise ValueError(
                f"unknown optimize spec {spec!r} (have: {sorted(_NAMED_RULES)})"
            ) from None
    return OptimizationRules.from_spec(spec)


@dataclass(frozen=True)
class RunSpec:
    """One side of a differential comparison.

    ``optimize`` names a rule set ("default" / "none" / "full"), or is a
    bool or :class:`OptimizationRules`.  ``checkpoint_at`` is a fraction of
    the stream at which to capture a checkpoint, rebuild a fresh engine,
    restore, and replay the suffix (aligned down to a stream-transaction
    boundary — checkpoints are taken between transactions).  ``jitter``
    displaces each event's *arrival* by up to that many time units and
    recovers order through ``ReorderBuffer(max_delay=jitter)``.
    ``workload`` switches to the scheduled workload engine over the
    scenario's user-window schedule ("shared" groups windows, "nonshared"
    runs one plan per (window, query)); its contract is derivation-set
    equality, so those runs are canonicalized with ``dedup``.
    ``drop_index`` silently drops one input event — the deliberate fault
    used to prove the harness detects and shrinks divergences.  ``shed``
    runs the engine under :data:`DIFF_SHED_CONFIG` admission control; the
    decision digest and shed counters join the canonical counters, so two
    shed runs agree only when their decision streams are byte-identical.
    ``ingest`` chooses the ingestion surface: one-shot ``run()`` (default),
    chunked :class:`~repro.runtime.session.EngineSession` feeding, or
    continuous :class:`~repro.runtime.service.EngineService` submission —
    the ``service`` axis's chunk-boundary invariant.  ``deploy`` adds a
    mid-stream online query deployment (``"online"``, requires a session
    or service ingest) or builds the reference for it (``"reference"``: a
    prefix run on the base model, checkpoint, restore into a from-scratch
    engine whose model has the scenario's deploy query, suffix run — the
    engine that had the query from its activation watermark onward);
    ``deploy_at`` is the deployment point as a stream fraction.
    ``aggregation`` selects how aggregating DERIVE queries evaluate
    (``"online"`` summary propagation vs the ``"materialize"`` oracle);
    workload runs pass it to the workload builders, so the shared side's
    aggregate-state fusion is exercised under ``"online"``.
    """

    label: str
    optimize: object = "default"
    context_aware: bool = True
    backend: str = "serial"
    checkpoint_at: float | None = None
    jitter: int = 0
    jitter_seed: int = 17
    workload: str | None = None  # None | "shared" | "nonshared"
    drop_index: int | None = None
    shed: bool = False
    ingest: str = "run"  # "run" | "session" | "service"
    deploy: str | None = None  # None | "online" | "reference"
    deploy_at: float = 0.5
    aggregation: str = "online"  # "online" | "materialize"

    def __post_init__(self):
        resolve_rules(self.optimize)  # validate eagerly
        if self.aggregation not in ("online", "materialize"):
            raise ValueError(
                f"aggregation must be 'online' or 'materialize', "
                f"got {self.aggregation!r}"
            )
        if self.workload not in (None, "shared", "nonshared"):
            raise ValueError(
                f"workload must be None, 'shared' or 'nonshared', "
                f"got {self.workload!r}"
            )
        if self.checkpoint_at is not None and not 0 < self.checkpoint_at < 1:
            raise ValueError("checkpoint_at must be a fraction in (0, 1)")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")
        if self.ingest not in ("run", "session", "service"):
            raise ValueError(
                f"ingest must be 'run', 'session' or 'service', "
                f"got {self.ingest!r}"
            )
        if self.deploy not in (None, "online", "reference"):
            raise ValueError(
                f"deploy must be None, 'online' or 'reference', "
                f"got {self.deploy!r}"
            )
        if self.deploy == "online" and self.ingest == "run":
            raise ValueError(
                "deploy='online' needs a live ingestion surface "
                "(ingest='session' or 'service')"
            )
        if not 0 < self.deploy_at < 1:
            raise ValueError("deploy_at must be a fraction in (0, 1)")


class HarnessError(CaesarError):
    """The harness itself was mis-used (not a divergence)."""


# ---------------------------------------------------------------------------
# input transformations
# ---------------------------------------------------------------------------


def _drop(events: list[Event], index: int) -> list[Event]:
    if not events:
        return events
    index %= len(events)
    return [e for i, e in enumerate(events) if i != index]


def _jittered(events: list[Event], jitter: int, seed: int) -> list[Event]:
    """Simulate out-of-order arrival bounded by ``jitter``, then recover.

    Each event's arrival time is its timestamp plus a uniform displacement
    in ``[0, jitter]``; the displaced arrival order feeds a
    :class:`ReorderBuffer` with ``max_delay=jitter``.  The bound guarantees
    no event is ever late (for any event ``e`` and earlier arrival ``f``:
    ``t_f <= t_e + jitter``, so the watermark never passes ``t_e``), hence
    recovery is lossless and the engine must see an equivalent stream.
    Simultaneous events are normalized back to generation order afterwards
    — a batch is a *set* in the model, but float aggregation makes
    within-batch order observable, and that is not what this axis tests.
    """
    rng = random.Random(seed)
    arrival = sorted(
        events,
        key=lambda e: (e.timestamp + rng.randint(0, jitter), e.event_id),
    )
    buffer = ReorderBuffer(max_delay=jitter)
    released = list(buffer.feed(arrival))
    released.extend(buffer.flush())
    if buffer.late_events or len(released) != len(events):
        raise HarnessError(
            "jittered replay lost events: the displacement bound and the "
            "reorder delay bound must be equal"
        )
    released.sort(key=lambda e: (e.timestamp, e.event_id))
    return released


def prepare_events(spec: RunSpec, events: list[Event]) -> list[Event]:
    """Apply the spec's input transformations (drop, then jitter)."""
    prepared = list(events)
    if spec.drop_index is not None:
        prepared = _drop(prepared, spec.drop_index)
    if spec.jitter:
        prepared = _jittered(prepared, spec.jitter, spec.jitter_seed)
    return prepared


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------


def _engine_config(scenario: Scenario, spec: RunSpec) -> EngineConfig:
    return EngineConfig(
        context_aware=spec.context_aware,
        optimize=resolve_rules(spec.optimize),
        backend=spec.backend,
        partition_by=scenario.partition_by,
        retention=scenario.retention,
        aggregation=spec.aggregation,
        shedding=DIFF_SHED_CONFIG if spec.shed else False,
    )


def _transaction_boundary(events: list[Event], fraction: float) -> int:
    """The split index nearest ``fraction``, aligned up so a timestamp's
    batch is never cut in half (checkpoints sit between transactions)."""
    cut = max(1, min(len(events) - 1, int(len(events) * fraction)))
    while cut < len(events) and (
        events[cut].timestamp == events[cut - 1].timestamp
    ):
        cut += 1
    return cut


def _execute_workload(
    scenario: Scenario, spec: RunSpec, events: list[Event]
) -> CanonicalResult:
    if scenario.window_specs is None:
        raise HarnessError(
            f"scenario {scenario.name!r} defines no window schedule for "
            "workload runs"
        )
    builder = (
        build_shared_workload
        if spec.workload == "shared"
        else build_nonshared_workload
    )
    workload = builder(
        list(scenario.window_specs()),
        retention=scenario.retention,
        aggregation=spec.aggregation,
    )
    engine = create_engine(
        workload, EngineConfig(context_aware=spec.context_aware)
    )
    report = engine.run(EventStream(events))
    # derivation-*set* equality: multiplicity belongs to the non-shared
    # side by construction (one derivation per covering window)
    return canonicalize(report, dedup=True, compare_windows=False)


def _fold_shed(result: CanonicalResult, report, spec: RunSpec) -> CanonicalResult:
    """Fold the decision stream into the canon: two shed runs agree only
    when every per-event decision matched, byte for byte."""
    if not spec.shed:
        return result
    return dataclasses.replace(
        result,
        counters=result.counters
        + (
            ("shed:digest", report.shed_decision_digest),
            ("shed:events", report.shed_events),
            ("shed:protected", report.protected_events),
        ),
    )


def _execute_ingest(
    scenario: Scenario, spec: RunSpec, events: list[Event]
) -> CanonicalResult:
    """Feed the stream through a session or service instead of ``run()``.

    Session ingestion splits the stream into chunks at transaction
    boundaries and feeds each with a separate ``feed()`` call; service
    ingestion submits events one at a time through the bounded queue and
    the feeder thread.  A ``deploy='online'`` spec deploys the scenario's
    query after the ``deploy_at`` boundary has committed.  Either way the
    canonical result must be byte-identical to the one-shot run.
    """
    from repro.runtime.service import EngineService
    from repro.runtime.session import EngineSession

    engine = create_engine(scenario.build_model(), _engine_config(scenario, spec))
    deploy_cut = (
        _transaction_boundary(events, spec.deploy_at)
        if spec.deploy == "online"
        else None
    )
    if spec.ingest == "session":
        session = EngineSession(engine)
        if deploy_cut is None:
            cuts = sorted({
                _transaction_boundary(events, f) for f in (0.33, 0.66)
            }) if len(events) > 3 else []
            start = 0
            for cut in cuts + [len(events)]:
                session.feed(events[start:cut])
                start = cut
        else:
            session.feed(events[:deploy_cut])
            engine.deploy_query(scenario.deploy_query())
            session.feed(events[deploy_cut:])
        report = session.close()
    else:
        service = EngineService(engine, queue_size=64)
        try:
            if deploy_cut is None:
                service.extend(events)
            else:
                service.extend(events[:deploy_cut])
                service.deploy_query(scenario.deploy_query())
                service.extend(events[deploy_cut:])
        finally:
            report = service.stop()
    engine.close()
    return _fold_shed(canonicalize(report), report, spec)


def _execute_deploy_reference(
    scenario: Scenario, spec: RunSpec, events: list[Event]
) -> CanonicalResult:
    """The from-scratch engine that had the deploy query from its
    activation watermark onward: prefix on the base model, checkpoint,
    restore into an engine whose model includes the query, suffix run."""
    config = _engine_config(scenario, spec)
    cut = _transaction_boundary(events, spec.deploy_at)
    first = create_engine(scenario.build_model(), config)
    prefix_report = first.run(EventStream(events[:cut]))
    checkpoint = capture_checkpoint(first)
    upgraded = scenario.build_model()
    upgraded.add_query(scenario.deploy_query())
    second = create_engine(upgraded, config)
    restore_checkpoint(second, checkpoint)
    suffix_report = second.run(EventStream(events[cut:]))
    return canonicalize(
        suffix_report,
        extra_outputs=prefix_report.outputs,
        extra_events_processed=prefix_report.events_processed,
    )


def execute(
    scenario: Scenario, spec: RunSpec, events: list[Event]
) -> CanonicalResult:
    """Run ``events`` under ``spec`` and return the canonical result."""
    prepared = prepare_events(spec, events)
    if spec.workload is not None:
        return _execute_workload(scenario, spec, prepared)
    if spec.deploy == "reference":
        return _execute_deploy_reference(scenario, spec, prepared)
    if spec.ingest != "run":
        return _execute_ingest(scenario, spec, prepared)
    config = _engine_config(scenario, spec)
    if spec.checkpoint_at is None:
        engine = create_engine(scenario.build_model(), config)
        report = engine.run(EventStream(prepared))
        return _fold_shed(canonicalize(report), report, spec)
    cut = _transaction_boundary(prepared, spec.checkpoint_at)
    prefix, suffix = prepared[:cut], prepared[cut:]
    first = create_engine(scenario.build_model(), config)
    prefix_report = first.run(EventStream(prefix))
    checkpoint = capture_checkpoint(first)
    second = create_engine(scenario.build_model(), config)
    restore_checkpoint(second, checkpoint)
    suffix_report = second.run(EventStream(suffix))
    return canonicalize(
        suffix_report,
        extra_outputs=prefix_report.outputs,
        extra_events_processed=prefix_report.events_processed,
    )


@dataclass(frozen=True)
class DiffResult:
    """Outcome of one differential comparison (possibly after shrinking)."""

    scenario: str
    axis: str
    label: str
    divergence: Divergence | None
    events_run: int
    minimized: tuple[Event, ...] | None = None

    @property
    def passed(self) -> bool:
        return self.divergence is None


def _lineage_touches(event: Event, shed_keys: set) -> bool:
    """Whether any event in ``event``'s lineage was shed in the on-run.

    Lineage is walked by value identity (:func:`event_value_key`) because
    ``event_id`` is process-unique and the two runs construct distinct
    event objects for the same stream.
    """
    stack = [event]
    while stack:
        node = stack.pop()
        if event_value_key(node) in shed_keys:
            return True
        stack.extend(node.derived_from)
    return False


def _shed_protected_divergence(
    scenario: Scenario,
    left: RunSpec,
    right: RunSpec,
    events: list[Event],
) -> Divergence | None:
    """Diff a shed-off run against a shed-on run on the protected subset.

    The shed-on engine is run first so its shedder can report exactly
    which input events it dropped; derived events whose lineage touches a
    shed input are then projected out of *both* reports (the off-run may
    legitimately derive from events the on-run never saw).  Online
    aggregate outputs carry no per-match lineage (``derived_from=()`` by
    design — lineage would be combinatorial), so aggregate-query output
    types whose *input* types intersect the shed types are projected out
    of both reports wholesale.  Everything else — protected-derived
    outputs, context windows, events processed — must agree exactly.
    """
    on_config = _engine_config(scenario, right)
    on_engine = create_engine(
        scenario.build_model(), on_config
    )
    on_events = prepare_events(right, events)
    on_report = on_engine.run(EventStream(on_events))
    shed_keys = set(on_engine.shedder.shed_event_keys)
    shed_types = {
        e.type_name for e in on_events if event_value_key(e) in shed_keys
    }
    excluded_types = _aggregate_types_touching(scenario, shed_types)
    off_engine = create_engine(
        scenario.build_model(), _engine_config(scenario, left)
    )
    off_report = off_engine.run(EventStream(prepare_events(left, events)))

    def projected(report):
        kept = [
            e
            for e in report.outputs
            if e.type_name not in excluded_types
            and not _lineage_touches(e, shed_keys)
        ]
        return canonicalize(dataclasses.replace(report, outputs=kept))

    return first_divergence(projected(off_report), projected(on_report))


def _aggregate_types_touching(
    scenario: Scenario, shed_types: set[str]
) -> frozenset[str]:
    """Output types of aggregating queries whose patterns consume a shed
    type.  A shed input changes such a query's aggregate values without
    leaving a lineage trace, so its whole output type is incomparable."""
    if not shed_types:
        return frozenset()
    excluded = set()
    for query in scenario.build_model().to_query_set():
        if not query.derive_aggregates or query.derive_type is None:
            continue
        if pattern_input_types(query.pattern) & shed_types:
            excluded.add(query.derive_type.name)
    return frozenset(excluded)


def run_pair(
    scenario: Scenario,
    left: RunSpec,
    right: RunSpec,
    events: list[Event],
) -> Divergence | None:
    """Run both sides on the same events and diff the canonical results."""
    if right.shed and not left.shed:
        return _shed_protected_divergence(scenario, left, right, events)
    return first_divergence(
        execute(scenario, left, events), execute(scenario, right, events)
    )
