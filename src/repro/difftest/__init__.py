"""Differential correctness harness (``repro diff``).

The repository accumulates pairs of execution paths that are *supposed* to
be equivalent: optimized vs unoptimized plans, context-aware routing vs the
context-independent baseline, serial vs sharded backends, a straight
run vs checkpoint/restore-mid-stream, in-order arrival vs jittered arrival
recovered through a :class:`~repro.runtime.reorder.ReorderBuffer`.  Each
equivalence is a metamorphic test oracle — no hand-written expected output
needed, just "these two configurations must agree".

This package runs generated workloads through those pairs and diffs the
*canonical results* (derived-event streams, context windows, deterministic
counters).  On divergence it reports the first differing element and
ddmin-shrinks the input stream to a minimal failing reproduction.

Three entry points:

* ``python -m repro diff --scenario traffic --axis all`` (CLI);
* the :mod:`tests.difftest` property suite (pytest + hypothesis);
* ``make difftest`` (CI).

See ``docs/difftest.md`` for the full tour.
"""

from repro.difftest.axes import (
    AXES,
    Comparison,
    comparisons_for,
    run_axis,
    run_comparison,
)
from repro.difftest.canonical import (
    CanonicalResult,
    Divergence,
    canonical_event,
    canonicalize,
    first_divergence,
)
from repro.difftest.harness import DiffResult, RunSpec, execute, run_pair
from repro.difftest.scenarios import (
    SCENARIOS,
    Scenario,
    get_scenario,
    pam_scenario,
    threshold_scenario,
    traffic_scenario,
)
from repro.difftest.shrink import ddmin

__all__ = [
    "AXES",
    "CanonicalResult",
    "Comparison",
    "DiffResult",
    "Divergence",
    "RunSpec",
    "SCENARIOS",
    "Scenario",
    "canonical_event",
    "canonicalize",
    "comparisons_for",
    "ddmin",
    "execute",
    "first_divergence",
    "get_scenario",
    "pam_scenario",
    "run_axis",
    "run_comparison",
    "run_pair",
    "threshold_scenario",
    "traffic_scenario",
]
