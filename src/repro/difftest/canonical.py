"""Canonical run results and their comparison.

Two engine runs "agree" when their observable semantics match, not when
their reports are bit-identical — wall-clock, cost accounting and routing
counters legitimately differ across configurations (lower cost is the whole
point of the optimizer).  :func:`canonicalize` projects an
:class:`~repro.runtime.engine.EngineReport` onto the parts every equivalent
configuration must reproduce exactly:

* the derived-event stream, as order-independent canonical tuples (the
  engines emit outputs in deterministic order, but *which* deterministic
  order depends on partition interleaving, so the canon is sorted);
* the context windows per partition (same contexts open and close at the
  same times on the same partitions);
* deterministic counters: events processed and derived-output counts by
  type.

:func:`first_divergence` diffs two canonical results and names the first
differing element, which is what the shrinker minimizes against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.events.event import Event
from repro.runtime.engine import EngineReport

#: A derived event reduced to its visible value: occurrence interval,
#: type and payload.  ``derived_from`` lineage and ``event_id`` identity
#: are deliberately excluded — they vary across equivalent executions.
CanonicalEvent = tuple


def canonical_event(event: Event) -> CanonicalEvent:
    """The order-independent identity of one (derived) event."""
    return (
        event.start_time,
        event.timestamp,
        event.type_name,
        tuple(sorted((k, repr(v)) for k, v in event.payload.items())),
    )


def _canonical_windows(report: EngineReport) -> tuple:
    rows = []
    for partition, windows in report.windows_by_partition.items():
        for window in windows:
            rows.append(
                (repr(partition), window.context_name, window.start, window.end)
            )
    return tuple(
        sorted(rows, key=lambda row: (row[0], row[2], repr(row[3]), row[1]))
    )


@dataclass(frozen=True)
class CanonicalResult:
    """What two equivalent executions must agree on, and nothing else."""

    outputs: tuple  # sorted CanonicalEvent tuples
    windows: tuple  # sorted (partition, context, start, end) rows
    counters: tuple  # sorted (name, value) pairs

    @property
    def output_count(self) -> int:
        return len(self.outputs)


def canonicalize(
    report: EngineReport,
    *,
    extra_outputs: list[Event] | None = None,
    extra_events_processed: int = 0,
    dedup: bool = False,
    compare_windows: bool = True,
) -> CanonicalResult:
    """Project a report (plus optional prefix-run outputs) onto the canon.

    ``extra_outputs``/``extra_events_processed`` fold in a preceding
    partial run (the checkpoint axis runs a stream in two halves).
    ``dedup`` collapses output multiplicity — the sharing comparison's
    contract is set-equality of derivations, with multiplicity owned by the
    non-shared side (one copy per covering window).  ``compare_windows=False``
    drops the window component for engines that do not track context
    windows (the scheduled workload engine).
    """
    outputs = [canonical_event(e) for e in (extra_outputs or [])]
    outputs.extend(canonical_event(e) for e in report.outputs)
    if dedup:
        outputs = set(outputs)
    outputs = tuple(sorted(outputs))
    by_type: dict[str, int] = {}
    for entry in outputs:
        by_type[entry[2]] = by_type.get(entry[2], 0) + 1
    counters = (
        ("events_processed", report.events_processed + extra_events_processed),
        *sorted(("outputs:" + name, n) for name, n in by_type.items()),
    )
    return CanonicalResult(
        outputs=outputs,
        windows=_canonical_windows(report) if compare_windows else (),
        counters=counters,
    )


@dataclass(frozen=True)
class Divergence:
    """The first observed disagreement between two canonical results."""

    component: str  # "outputs" | "windows" | "counters"
    index: int
    left: object | None
    right: object | None

    def describe(self) -> str:
        return (
            f"first divergence in {self.component}[{self.index}]:\n"
            f"  left:  {self.left!r}\n"
            f"  right: {self.right!r}"
        )


def _first_sequence_divergence(
    component: str, left: tuple, right: tuple
) -> Divergence | None:
    for index, (a, b) in enumerate(zip(left, right)):
        if a != b:
            return Divergence(component, index, a, b)
    if len(left) != len(right):
        index = min(len(left), len(right))
        longer = left if len(left) > len(right) else right
        return Divergence(
            component,
            index,
            longer[index] if longer is left else None,
            longer[index] if longer is right else None,
        )
    return None


def first_divergence(
    left: CanonicalResult, right: CanonicalResult
) -> Divergence | None:
    """The first differing element between two results, or ``None``.

    Outputs are checked first (the user-visible contract), then windows,
    then counters — so a reported counter divergence really is
    counter-only.
    """
    for component in ("outputs", "windows", "counters"):
        found = _first_sequence_divergence(
            component, getattr(left, component), getattr(right, component)
        )
        if found is not None:
            return found
    return None
