"""Delta-debugging (ddmin) stream minimization.

When a differential pair diverges on a generated stream of thousands of
events, the raw reproduction is useless for debugging.  :func:`ddmin`
implements Zeller's classic algorithm over the event list: repeatedly try
removing chunks (then complements of chunks) while the failure predicate
still holds, halving granularity until the result is 1-minimal — removing
any single remaining event makes the divergence disappear.

Event subsets preserve relative order, so any subset of a
timestamp-ordered stream is itself a valid stream.  The predicate must be
deterministic (it re-runs both sides of the comparison), which
:mod:`repro.difftest.harness` guarantees.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

Item = TypeVar("Item")


def ddmin(
    items: Sequence[Item],
    is_failing: Callable[[list[Item]], bool],
    *,
    max_tests: int = 2000,
) -> list[Item]:
    """Minimize ``items`` while ``is_failing`` holds.

    ``is_failing`` receives a candidate sublist (in original order) and
    returns True when the divergence still reproduces.  ``max_tests``
    bounds predicate invocations; on exhaustion the best-so-far reduction
    is returned (still failing, possibly not 1-minimal).

    Raises ``ValueError`` if the full input does not fail — minimizing a
    passing input means the caller's predicate is broken.
    """
    current = list(items)
    if not is_failing(current):
        raise ValueError("ddmin requires a failing input to minimize")
    tests = 1
    granularity = 2
    while len(current) >= 2 and tests < max_tests:
        chunk = max(1, len(current) // granularity)
        subsets = [
            current[start : start + chunk]
            for start in range(0, len(current), chunk)
        ]
        reduced = False
        # try each subset alone, then each complement
        for candidate in subsets:
            if tests >= max_tests:
                break
            tests += 1
            if len(candidate) < len(current) and is_failing(candidate):
                current = candidate
                granularity = 2
                reduced = True
                break
        if reduced:
            continue
        if granularity > 2:
            for index in range(len(subsets)):
                if tests >= max_tests:
                    break
                complement = [
                    item
                    for i, subset in enumerate(subsets)
                    if i != index
                    for item in subset
                ]
                if len(complement) == len(current):
                    continue
                tests += 1
                if is_failing(complement):
                    current = complement
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
        if reduced:
            continue
        if granularity >= len(current):
            break  # 1-minimal
        granularity = min(len(current), granularity * 2)
    return current
