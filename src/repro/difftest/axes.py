"""The eight differential axes and their comparison pairs.

Each axis names an equivalence the engine stack promises:

``optimizer``
    Unoptimized plans vs the default push-down vs the full rewrite
    pipeline, plus (where the scenario carries a user-window schedule)
    non-shared vs shared workload execution — grouping on/off.
``context``
    Context-aware routing/suspension vs the context-independent baseline.
``backend``
    Serial execution vs the thread- and process-sharded backends.
``checkpoint``
    One straight run vs checkpoint mid-stream, restore into a fresh
    engine, replay the suffix.
``reorder``
    In-order arrival vs arrival jittered within a bound and recovered
    through a :class:`~repro.runtime.reorder.ReorderBuffer`.
``shed``
    Load shedding off vs on, compared on the protected subset (derived
    events whose lineage avoids every shed input must be identical), plus
    shed runs across backends, whose decision digests must be
    byte-identical — same seed, same stream, same decisions everywhere.
``aggregate``
    Incremental (online) SEQ aggregation vs the materialize-then-fold
    oracle, compared byte-identically across the serial, thread and
    process backends; scenarios carrying a user-window schedule also
    compare non-shared vs shared execution of aggregate queries that
    fuse into one propagation pass.
``service``
    One-shot ``run()`` vs chunked ``EngineSession.feed()`` vs continuous
    ``EngineService`` ingestion — the chunk-boundary invariant: no partial
    match or context state is ever lost between feeds.  Scenarios with a
    deploy query additionally compare a mid-stream online deployment
    against a from-scratch engine that had the query from its activation
    watermark onward.

:func:`run_comparison` executes one pair, and on divergence ddmin-shrinks
the stream to a minimal failing reproduction.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass

from repro.difftest.harness import DiffResult, RunSpec, run_pair
from repro.difftest.scenarios import Scenario
from repro.difftest.shrink import ddmin
from repro.events.event import Event
from repro.events.types import EventType

AXES = (
    "optimizer", "context", "backend", "checkpoint", "reorder", "shed",
    "aggregate", "service",
)

_BASELINE = RunSpec(label="baseline")


@dataclass(frozen=True)
class Comparison:
    """One must-agree pair within an axis."""

    axis: str
    label: str
    left: RunSpec
    right: RunSpec


def _process_backend_available() -> bool:
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


def comparisons_for(scenario: Scenario, axis: str) -> list[Comparison]:
    """The comparison pairs of ``axis`` applicable to ``scenario``."""
    if axis == "optimizer":
        pairs = [
            Comparison(
                axis, "none-vs-pushdown",
                RunSpec(label="optimize:none", optimize="none"),
                RunSpec(label="optimize:default", optimize="default"),
            ),
            Comparison(
                axis, "none-vs-full",
                RunSpec(label="optimize:none", optimize="none"),
                RunSpec(label="optimize:full", optimize="full"),
            ),
        ]
        if scenario.window_specs is not None:
            pairs.append(Comparison(
                axis, "nonshared-vs-shared",
                RunSpec(label="workload:nonshared", workload="nonshared"),
                RunSpec(label="workload:shared", workload="shared"),
            ))
        return pairs
    if axis == "context":
        return [Comparison(
            axis, "aware-vs-independent",
            _BASELINE,
            RunSpec(label="context-independent", context_aware=False),
        )]
    if axis == "backend":
        pairs = [Comparison(
            axis, "serial-vs-thread",
            _BASELINE,
            RunSpec(label="backend:thread", backend="thread"),
        )]
        if _process_backend_available():
            pairs.append(Comparison(
                axis, "serial-vs-process",
                _BASELINE,
                RunSpec(label="backend:process", backend="process"),
            ))
        return pairs
    if axis == "checkpoint":
        return [Comparison(
            axis, "straight-vs-restored",
            _BASELINE,
            RunSpec(label="checkpoint@0.5", checkpoint_at=0.5),
        )]
    if axis == "reorder":
        jitter = int(scenario.reorder_jitter)
        return [Comparison(
            axis, "inorder-vs-jittered",
            _BASELINE,
            RunSpec(label=f"jitter:{jitter}", jitter=jitter),
        )]
    if axis == "shed":
        shed_serial = RunSpec(label="shed:serial", shed=True)
        pairs = [
            Comparison(
                axis, "off-vs-on-protected",
                _BASELINE,
                RunSpec(label="shed:on", shed=True),
            ),
            Comparison(
                axis, "shed-serial-vs-thread",
                shed_serial,
                RunSpec(label="shed:thread", backend="thread", shed=True),
            ),
        ]
        if _process_backend_available():
            pairs.append(Comparison(
                axis, "shed-serial-vs-process",
                shed_serial,
                RunSpec(label="shed:process", backend="process", shed=True),
            ))
        return pairs
    if axis == "aggregate":
        online_serial = RunSpec(label="aggregate:online")
        pairs = [
            Comparison(
                axis, "online-vs-materialize",
                RunSpec(
                    label="aggregate:materialize", aggregation="materialize"
                ),
                online_serial,
            ),
            Comparison(
                axis, "aggregate-serial-vs-thread",
                online_serial,
                RunSpec(label="aggregate:thread", backend="thread"),
            ),
        ]
        if _process_backend_available():
            pairs.append(Comparison(
                axis, "aggregate-serial-vs-process",
                online_serial,
                RunSpec(label="aggregate:process", backend="process"),
            ))
        if scenario.window_specs is not None:
            pairs.append(Comparison(
                axis, "aggregate-nonshared-vs-shared",
                RunSpec(
                    label="aggregate:workload-nonshared",
                    workload="nonshared",
                ),
                RunSpec(
                    label="aggregate:workload-shared", workload="shared"
                ),
            ))
            pairs.append(Comparison(
                axis, "aggregate-materialize-vs-shared-online",
                RunSpec(
                    label="aggregate:workload-materialize",
                    workload="nonshared",
                    aggregation="materialize",
                ),
                RunSpec(
                    label="aggregate:workload-shared-online",
                    workload="shared",
                ),
            ))
        return pairs
    if axis == "service":
        pairs = [
            Comparison(
                axis, "run-vs-session",
                _BASELINE,
                RunSpec(label="ingest:session", ingest="session"),
            ),
            Comparison(
                axis, "run-vs-service",
                _BASELINE,
                RunSpec(label="ingest:service", ingest="service"),
            ),
        ]
        if scenario.deploy_query is not None:
            reference = RunSpec(label="deploy:reference", deploy="reference")
            pairs.append(Comparison(
                axis, "deploy-online-vs-reference",
                reference,
                RunSpec(
                    label="deploy:online",
                    ingest="session",
                    deploy="online",
                ),
            ))
            pairs.append(Comparison(
                axis, "deploy-service-vs-reference",
                reference,
                RunSpec(
                    label="deploy:service-online",
                    ingest="service",
                    deploy="online",
                ),
            ))
        return pairs
    raise ValueError(f"unknown axis {axis!r} (have: {AXES})")


def run_comparison(
    scenario: Scenario,
    comparison: Comparison,
    events: list[Event],
    *,
    shrink: bool = True,
    inject_divergence: bool = False,
    max_shrink_tests: int = 200,
) -> DiffResult:
    """Execute one comparison; shrink the stream if it diverges.

    ``inject_divergence`` drops one event from the right side's input —
    the self-test proving the harness detects, reports and minimizes a
    real disagreement (and that ``repro diff`` exits non-zero on one).
    """
    right = comparison.right
    if inject_divergence:
        right = dataclasses.replace(
            right,
            label=right.label + "+dropped-event",
            drop_index=len(events) // 2,
        )
    divergence = run_pair(scenario, comparison.left, right, events)
    minimized = None
    if divergence is not None and shrink and len(events) > 1:
        failing = ddmin(
            events,
            lambda subset: run_pair(scenario, comparison.left, right, subset)
            is not None,
            max_tests=max_shrink_tests,
        )
        minimized = tuple(failing)
        # re-diff the minimized stream so the reported first divergence
        # matches the reproduction we hand the user
        divergence = run_pair(scenario, comparison.left, right, minimized)
    return DiffResult(
        scenario=scenario.name,
        axis=comparison.axis,
        label=comparison.label,
        divergence=divergence,
        events_run=len(events),
        minimized=minimized,
    )


#: Ballast for the ``shed`` axis: a type no scenario model consumes, so
#: the admission ladder classifies it cold and actually sheds under
#: pressure.  The scenarios' own streams are (correctly) dominated by
#: protected types — without ballast the axis would only ever prove the
#: trivial "nothing sheddable" case.
_NOISE_TYPE = EventType.define("OverloadNoise", n="int")


def with_overload_noise(events: list[Event], seed: int) -> list[Event]:
    """Interleave deterministic cold-telemetry events into a stream."""
    rng = random.Random(seed)
    noisy = list(events)
    for t in sorted({e.timestamp for e in events}):
        for _ in range(3):
            noisy.append(Event(_NOISE_TYPE, t, {"n": rng.randint(0, 999)}))
    noisy.sort(key=lambda e: (e.timestamp, e.event_id))
    return noisy


def run_axis(
    scenario: Scenario,
    axis: str,
    *,
    seed: int = 7,
    scale: float = 1.0,
    shrink: bool = True,
    inject_divergence: bool = False,
) -> list[DiffResult]:
    """Run every comparison of ``axis`` on a freshly generated stream."""
    events = scenario.make_events(seed, scale)
    if axis == "shed":
        events = with_overload_noise(events, seed)
    return [
        run_comparison(
            scenario,
            comparison,
            events,
            shrink=shrink,
            inject_divergence=inject_divergence,
        )
        for comparison in comparisons_for(scenario, axis)
    ]
