"""Workload scenarios for the differential harness.

A :class:`Scenario` bundles everything one differential comparison needs:
a model factory, a seeded stream generator, the partitioner and retention
the application would use, and (optionally) a user-window schedule for the
workload-sharing comparison.  Three scenarios ship:

* ``traffic`` — the Linear Road reproduction (segment-partitioned,
  congestion/accident contexts, toll + accident-warning derivations);
* ``pam`` — physical activity monitoring (subject-partitioned heart-rate
  bands);
* ``threshold`` — a small synthetic alert/critical model whose streams are
  cheap enough for hypothesis-driven property tests, with an overlapping
  window schedule for the sharing (grouping on/off) comparison.

``make_events(seed, scale)`` is deterministic in ``seed``; ``scale``
multiplies run length so the CLI can trade coverage for time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.algebra.expressions import attr
from repro.algebra.pattern import EventMatch
from repro.core.model import CaesarModel
from repro.core.queries import EventQuery, QueryAction
from repro.core.windows import WindowSpec
from repro.events.event import Event
from repro.events.timebase import TimePoint
from repro.events.types import EventType
from repro.language import parse_query
from repro.runtime.queues import Partitioner, single_partition


@dataclass(frozen=True)
class Scenario:
    """One differential workload: model + stream + engine settings."""

    name: str
    description: str
    build_model: Callable[[], CaesarModel]
    make_events: Callable[[int, float], list[Event]]
    partition_by: Partitioner = single_partition
    retention: TimePoint = 300
    #: max timestamp displacement for the reorder axis (and the reorder
    #: buffer's delay bound — arrival jittered by at most d is fully
    #: recoverable with ``max_delay=d``)
    reorder_jitter: TimePoint = 30
    #: overlapping user windows for the sharing comparison (grouping
    #: on/off); ``None`` skips that comparison for the scenario
    window_specs: Callable[[], Sequence[WindowSpec]] | None = None
    #: a processing query deployed mid-stream by the ``service`` axis's
    #: online-deployment comparison; ``None`` skips that comparison
    deploy_query: Callable[[], EventQuery] | None = None


# ---------------------------------------------------------------------------
# traffic (Linear Road)
# ---------------------------------------------------------------------------


def traffic_scenario(*, segments: int = 3, minutes: int = 6) -> Scenario:
    """The Linear Road scenario at a configurable (small) scale."""
    from repro.linearroad.queries import (
        build_traffic_model,
        segment_partitioner,
    )

    def make_events(seed: int, scale: float) -> list[Event]:
        from repro.linearroad.generator import (
            LinearRoadConfig,
            generate_stream,
            paper_timeline_schedules,
        )

        config = paper_timeline_schedules(
            LinearRoadConfig(
                num_roads=1,
                segments_per_road=segments,
                duration_minutes=max(2, round(minutes * scale)),
                seed=seed,
            )
        )
        return list(generate_stream(config))

    def deploy_query() -> EventQuery:
        from repro.linearroad.schema import type_registry

        return parse_query(
            "DERIVE CongestionPing(p.vid, p.sec, p.seg) "
            "PATTERN PositionReport p CONTEXT congestion",
            name="congestion_ping",
            types=type_registry(),
        )

    return Scenario(
        name="traffic",
        description=f"Linear Road, 1 road x {segments} segments",
        build_model=build_traffic_model,
        make_events=make_events,
        partition_by=segment_partitioner,
        retention=120,
        reorder_jitter=30,
        deploy_query=deploy_query,
    )


# ---------------------------------------------------------------------------
# pam (physical activity monitoring)
# ---------------------------------------------------------------------------


def pam_scenario(*, subjects: int = 3, minutes: int = 8) -> Scenario:
    """The PAM scenario at a configurable (small) scale."""
    from repro.pam.queries import build_pam_model, subject_partitioner

    def make_events(seed: int, scale: float) -> list[Event]:
        from repro.pam.generator import PamConfig, generate_pam_stream

        config = PamConfig(
            num_subjects=subjects,
            duration_minutes=max(2, round(minutes * scale)),
            seed=seed,
        )
        return list(generate_pam_stream(config))

    def deploy_query() -> EventQuery:
        from repro.pam.schema import type_registry

        return parse_query(
            "DERIVE ModeratePulse(r.subject, r.sec, r.heart_rate) "
            "PATTERN ActivityReport r WHERE r.heart_rate >= 100 "
            "CONTEXT moderate",
            name="moderate_pulse",
            types=type_registry(),
        )

    return Scenario(
        name="pam",
        description=f"activity monitoring, {subjects} subjects",
        build_model=build_pam_model,
        make_events=make_events,
        partition_by=subject_partitioner,
        retention=60,
        reorder_jitter=15,
        deploy_query=deploy_query,
    )


# ---------------------------------------------------------------------------
# threshold (synthetic, property-test sized)
# ---------------------------------------------------------------------------

DIFF_READING = EventType.define(
    "DiffReading", value="int", sec="int", zone="int"
)
DIFF_OUT = EventType.define("DiffOut", value="int", sec="int")


def _build_threshold_model() -> CaesarModel:
    model = CaesarModel(default_context="normal")
    model.add_context("alert")
    model.add_context("critical")
    model.add_query(parse_query(
        "INITIATE CONTEXT alert PATTERN DiffReading r "
        "WHERE r.value > 10 CONTEXT normal", name="raise_alert"))
    model.add_query(parse_query(
        "TERMINATE CONTEXT alert PATTERN DiffReading r "
        "WHERE r.value <= 10 CONTEXT alert", name="clear_alert"))
    model.add_query(parse_query(
        "INITIATE CONTEXT critical PATTERN DiffReading r "
        "WHERE r.value > 16 CONTEXT alert", name="raise_critical"))
    model.add_query(parse_query(
        "TERMINATE CONTEXT critical PATTERN DiffReading r "
        "WHERE r.value <= 16 CONTEXT critical", name="clear_critical"))
    model.add_query(parse_query(
        "DERIVE Alarm(r.value, r.sec) PATTERN DiffReading r CONTEXT alert",
        name="alarm"))
    model.add_query(parse_query(
        "DERIVE Page(r.value, r.sec) PATTERN DiffReading r CONTEXT critical",
        name="page"))
    model.add_query(parse_query(
        "DERIVE Pair(a.sec, b.sec) PATTERN SEQ(DiffReading a, DiffReading b) "
        "WHERE a.value = b.value CONTEXT alert", name="pairs"))
    # aggregating DERIVE: evaluated by summary propagation under
    # aggregation="online", by full match materialization otherwise —
    # the aggregate differential axis asserts the two agree.
    model.add_query(parse_query(
        "DERIVE PairStats(COUNT(*), SUM(a.value), MIN(b.value)) "
        "PATTERN SEQ(DiffReading a, DiffReading b) "
        "WHERE a.value > 8 AND b.value > 12 CONTEXT alert",
        name="pair_stats"))
    return model


def _zone_partitioner(event) -> object:
    return event.get("zone")


def _threshold_events(seed: int, scale: float) -> list[Event]:
    rng = random.Random(seed)
    steps = max(10, round(120 * scale))
    events = []
    for step in range(steps):
        t = step * 5
        for zone in (0, 1):
            # occasional gaps keep context histories non-trivial
            if rng.random() < 0.15:
                continue
            events.append(Event(DIFF_READING, t, {
                "value": rng.randint(0, 20),
                "sec": t,
                "zone": zone,
            }))
    return events


def _threshold_query(name: str, threshold: int) -> EventQuery:
    return EventQuery(
        name=name,
        action=QueryAction.DERIVE,
        pattern=EventMatch("DiffReading", "r"),
        where=attr("value", "r").gt(threshold),
        derive_type=DIFF_OUT,
        derive_items=(
            ("value", attr("value", "r")),
            ("sec", attr("sec", "r")),
        ),
    )


def _threshold_aggregate_queries() -> tuple[EventQuery, EventQuery]:
    """Two aggregates over the same SEQ pattern and predicate.

    They differ only in aggregate function and target, so the shared
    workload fuses them into a single propagation pass
    (:func:`~repro.optimizer.sharing.build_shared_workload`); the
    nonshared workload runs them separately.  The workload comparisons
    on the aggregate axis assert both routes agree.
    """
    q_count = parse_query(
        "DERIVE SurgeCount(COUNT(*)) "
        "PATTERN SEQ(DiffReading a, DiffReading b) "
        "WHERE a.value > 5 AND b.value > 11",
        name="surge_count")
    q_sum = parse_query(
        "DERIVE SurgeSum(SUM(b.value)) "
        "PATTERN SEQ(DiffReading a, DiffReading b) "
        "WHERE a.value > 5 AND b.value > 11",
        name="surge_sum")
    return q_count, q_sum


def _threshold_window_specs() -> list[WindowSpec]:
    """Overlapping and contained user windows exercising Listing 1:
    partial overlap, containment, and an identical-span merge.  The
    identical-span pair carries one aggregate query each, so the merged
    unit exercises aggregate-state fusion."""
    q_low = _threshold_query("low", 3)
    q_mid = _threshold_query("mid", 9)
    q_high = _threshold_query("high", 15)
    q_count, q_sum = _threshold_aggregate_queries()
    return [
        WindowSpec("morning", start=0, end=250, queries=(q_low, q_mid)),
        WindowSpec("rush", start=150, end=400, queries=(q_mid, q_high, q_count)),
        WindowSpec("incident", start=200, end=300, queries=(q_high,)),
        WindowSpec("audit", start=150, end=400, queries=(q_low, q_sum)),
    ]


def _threshold_deploy_query() -> EventQuery:
    return parse_query(
        "DERIVE Spike(r.value, r.sec) PATTERN DiffReading r "
        "WHERE r.value > 18 CONTEXT alert",
        name="spike",
    )


def threshold_scenario() -> Scenario:
    return Scenario(
        name="threshold",
        description="synthetic alert/critical thresholds, 2 zones",
        build_model=_build_threshold_model,
        make_events=_threshold_events,
        partition_by=_zone_partitioner,
        retention=100,
        reorder_jitter=20,
        window_specs=_threshold_window_specs,
        deploy_query=_threshold_deploy_query,
    )


SCENARIOS: dict[str, Callable[[], Scenario]] = {
    "traffic": traffic_scenario,
    "pam": pam_scenario,
    "threshold": threshold_scenario,
}


def get_scenario(name: str, **kwargs) -> Scenario:
    """Build a registered scenario by name (factory kwargs pass through)."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r} (have: {sorted(SCENARIOS)})"
        ) from None
    return factory(**kwargs)
