"""The PAM CAESAR model: activity-intensity contexts and their workloads.

Three contexts per subject — *rest* (default), *moderate* and *vigorous* —
derived from heart rate, with per-context analytics:

* vigorous — high-heart-rate alerts and intensity summaries (only relevant
  while the subject exercises);
* moderate — intensity summaries;
* rest — fall detection: a sudden ankle-acceleration spike followed by no
  movement is only alarming while the subject is supposed to be at rest.

The workload's structure matches the traffic model's (deriving queries on
the sensor stream, suspendable processing queries per context), which is why
the paper reports the same CAESAR win on both data sets (Figure 12(a)).
"""

from __future__ import annotations

from repro.core.model import CaesarModel
from repro.language import parse_query
from repro.linearroad.queries import replicate_workload
from repro.pam.schema import (
    REST_MAX_HR,
    VIGOROUS_MIN_HR,
    type_registry,
)

REST = "rest"
MODERATE = "moderate"
VIGOROUS = "vigorous"


def build_pam_model(
    *,
    rest_max_hr: float = REST_MAX_HR,
    vigorous_min_hr: float = VIGOROUS_MIN_HR,
) -> CaesarModel:
    """The physical-activity-monitoring CAESAR model."""
    types = type_registry()
    model = CaesarModel(default_context=REST)
    model.add_context(MODERATE)
    model.add_context(VIGOROUS)

    # ------------------------------------------------------------------
    # context deriving queries: heart-rate bands with switch transitions
    # ------------------------------------------------------------------

    model.add_query(
        parse_query(
            f"INITIATE CONTEXT {MODERATE} "
            "PATTERN ActivityReport r "
            f"WHERE r.heart_rate >= {rest_max_hr} "
            f"AND r.heart_rate < {vigorous_min_hr} "
            f"CONTEXT {REST}",
            name="enter_moderate",
            types=types,
        )
    )
    model.add_query(
        parse_query(
            f"SWITCH CONTEXT {VIGOROUS} "
            "PATTERN ActivityReport r "
            f"WHERE r.heart_rate >= {vigorous_min_hr} "
            f"CONTEXT {MODERATE}",
            name="moderate_to_vigorous",
            types=types,
        )
    )
    model.add_query(
        parse_query(
            f"INITIATE CONTEXT {VIGOROUS} "
            "PATTERN ActivityReport r "
            f"WHERE r.heart_rate >= {vigorous_min_hr} "
            f"CONTEXT {REST}",
            name="rest_to_vigorous",
            types=types,
        )
    )
    model.add_query(
        parse_query(
            f"SWITCH CONTEXT {MODERATE} "
            "PATTERN ActivityReport r "
            f"WHERE r.heart_rate < {vigorous_min_hr} "
            f"AND r.heart_rate >= {rest_max_hr} "
            f"CONTEXT {VIGOROUS}",
            name="vigorous_to_moderate",
            types=types,
        )
    )
    model.add_query(
        parse_query(
            f"TERMINATE CONTEXT {MODERATE} "
            "PATTERN ActivityReport r "
            f"WHERE r.heart_rate < {rest_max_hr} "
            f"CONTEXT {MODERATE}",
            name="moderate_to_rest",
            types=types,
        )
    )
    model.add_query(
        parse_query(
            f"TERMINATE CONTEXT {VIGOROUS} "
            "PATTERN ActivityReport r "
            f"WHERE r.heart_rate < {rest_max_hr} "
            f"CONTEXT {VIGOROUS}",
            name="vigorous_to_rest",
            types=types,
        )
    )

    # ------------------------------------------------------------------
    # context processing queries
    # ------------------------------------------------------------------

    model.add_query(
        parse_query(
            "DERIVE HighHeartRateAlert(r.subject, r.sec, r.heart_rate) "
            "PATTERN ActivityReport r "
            "WHERE r.heart_rate >= 170 "
            f"CONTEXT {VIGOROUS}",
            name="high_hr_alert",
            types=types,
        )
    )
    model.add_query(
        parse_query(
            "DERIVE IntensitySummary(r.subject, r.sec, r.heart_rate) "
            "PATTERN ActivityReport r "
            f"CONTEXT {MODERATE}, {VIGOROUS}",
            name="intensity_summary",
            types=types,
        )
    )
    # Fall detection while at rest: an ankle-acceleration spike with no
    # subsequent movement report within 15 seconds.
    model.add_query(
        parse_query(
            "DERIVE FallWarning(spike.subject, spike.sec) "
            "PATTERN SEQ(ActivityReport spike, NOT ActivityReport move) "
            "WHERE spike.ankle_acc >= 25 AND move.subject = spike.subject "
            "AND move.hand_acc >= 12 "
            "WITHIN 15 "
            f"CONTEXT {REST}",
            name="fall_warning",
            types=types,
        )
    )
    model.validate()
    return model


def replicate_pam_workload(
    model: CaesarModel,
    copies: int,
    *,
    contexts: tuple[str, ...] | None = (VIGOROUS, MODERATE),
) -> CaesarModel:
    """Replicate the suspendable PAM processing queries (Section 7.1)."""
    return replicate_workload(model, copies, contexts=contexts)


def subject_partitioner(event) -> object:
    """Partition key: the monitored subject (one context vector each)."""
    return event.get("subject")
