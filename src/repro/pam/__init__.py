"""Physical Activity Monitoring (PAM) substrate [26].

The paper's second evaluation data set is PAMAP2: physical activity
recordings (heart rate, IMUs on hand/chest/ankle) of 14 subjects over about
75 minutes, 1.6 GB.  The raw data set is not redistributable, so this
package generates a seeded synthetic equivalent with the same schema and —
what matters for CAESAR — the same *context structure*: subjects move
through activity episodes (lying, sitting, walking, running, cycling, ...)
of durations unknown in advance, and the engine derives those activity
contexts from the sensor stream and runs per-activity analytics.
"""

from repro.pam.schema import ACTIVITY_REPORT, ACTIVITIES, type_registry
from repro.pam.generator import PamConfig, generate_pam_stream
from repro.pam.queries import build_pam_model, replicate_pam_workload, subject_partitioner

__all__ = [
    "ACTIVITIES",
    "ACTIVITY_REPORT",
    "PamConfig",
    "build_pam_model",
    "generate_pam_stream",
    "replicate_pam_workload",
    "subject_partitioner",
    "type_registry",
]
