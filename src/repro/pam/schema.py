"""PAM event types, mirroring the PAMAP2 schema [26].

One ``ActivityReport`` per subject per second: heart rate (bpm) and the
magnitude of acceleration at the three IMU positions (hand, chest, ankle),
in m/s².  Derived alert/summary events are what the context processing
queries produce.
"""

from __future__ import annotations

from repro.events.types import EventType

#: Activity episodes the synthetic subjects move through (a subset of the
#: PAMAP2 protocol activities), with per-activity sensor statistics
#: ``(heart_rate_mean, hand_acc_mean, chest_acc_mean, ankle_acc_mean)``.
ACTIVITIES: dict[str, tuple[float, float, float, float]] = {
    "lying": (62.0, 9.8, 9.8, 9.8),
    "sitting": (70.0, 10.0, 9.9, 9.8),
    "standing": (78.0, 10.3, 10.0, 9.9),
    "walking": (100.0, 13.5, 11.0, 16.0),
    "cycling": (115.0, 12.0, 10.5, 14.0),
    "running": (155.0, 22.0, 16.0, 28.0),
}

#: Heart-rate thresholds separating the intensity contexts.
REST_MAX_HR = 85
VIGOROUS_MIN_HR = 130

ACTIVITY_REPORT = EventType.define(
    "ActivityReport",
    subject="int",
    sec="int",
    heart_rate="float",
    hand_acc="float",
    chest_acc="float",
    ankle_acc="float",
)

HIGH_HR_ALERT = EventType.define(
    "HighHeartRateAlert",
    subject="int",
    sec="int",
    heart_rate="float",
)

FALL_WARNING = EventType.define(
    "FallWarning",
    subject="int",
    sec="int",
)

INTENSITY_SUMMARY = EventType.define(
    "IntensitySummary",
    subject="int",
    sec="int",
    heart_rate="float",
)

ALL_TYPES = (ACTIVITY_REPORT, HIGH_HR_ALERT, FALL_WARNING, INTENSITY_SUMMARY)


def type_registry() -> dict[str, EventType]:
    """All PAM event types indexed by name."""
    return {event_type.name: event_type for event_type in ALL_TYPES}
