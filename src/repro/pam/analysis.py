"""PAM analysis helpers: activity/context distributions per subject.

The PAM analog of :mod:`repro.linearroad.analysis`: summarize how each
subject's time divides across the intensity contexts, how many alerts and
summaries each produced, and the per-minute event distribution — the kind
of characterization Figure 10 gives for Linear Road, applied to the
physical activity monitoring data set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.windows import ContextWindow
from repro.events.event import Event
from repro.events.timebase import TimePoint
from repro.runtime.engine import EngineReport


@dataclass
class SubjectSummary:
    """Per-subject breakdown of one monitored run."""

    subject: object
    seconds_by_context: dict[str, TimePoint] = field(default_factory=dict)
    outputs_by_type: dict[str, int] = field(default_factory=dict)
    transitions: int = 0

    @property
    def dominant_context(self) -> str | None:
        if not self.seconds_by_context:
            return None
        return max(self.seconds_by_context, key=self.seconds_by_context.get)

    def active_fraction(self, *, rest_context: str = "rest") -> float:
        """Fraction of monitored time spent outside the rest context."""
        total = sum(self.seconds_by_context.values())
        if total <= 0:
            return 0.0
        resting = self.seconds_by_context.get(rest_context, 0)
        return (total - resting) / total


def _window_seconds(
    windows: Iterable[ContextWindow], horizon: TimePoint
) -> dict[str, TimePoint]:
    seconds: dict[str, TimePoint] = {}
    for window in windows:
        end = window.end if window.end is not None else horizon
        length = max(0, end - window.start)
        seconds[window.context_name] = (
            seconds.get(window.context_name, 0) + length
        )
    return seconds


def summarize_subjects(
    report: EngineReport, *, horizon: TimePoint | None = None
) -> dict[object, SubjectSummary]:
    """Per-subject summaries from an engine report.

    ``horizon`` caps open windows (defaults to the latest window start/end
    observed anywhere in the report).
    """
    if horizon is None:
        horizon = 0
        for windows in report.windows_by_partition.values():
            for window in windows:
                horizon = max(horizon, window.start)
                if window.end is not None:
                    horizon = max(horizon, window.end)
    summaries: dict[object, SubjectSummary] = {}
    for subject, windows in report.windows_by_partition.items():
        summary = SubjectSummary(subject=subject)
        summary.seconds_by_context = _window_seconds(windows, horizon)
        summary.transitions = max(0, len(windows) - 1)
        summaries[subject] = summary
    for event in report.outputs:
        subject = event.get("subject")
        if subject in summaries:
            by_type = summaries[subject].outputs_by_type
            by_type[event.type_name] = by_type.get(event.type_name, 0) + 1
    return summaries


def intensity_minutes(
    events: Iterable[Event],
    *,
    rest_max_hr: float = 85,
    vigorous_min_hr: float = 130,
) -> dict[int, dict[str, int]]:
    """Per-minute report counts bucketed by heart-rate band.

    Returns ``{minute: {"rest": n, "moderate": n, "vigorous": n}}`` — the
    stream-side ground truth the derived contexts should track.
    """
    buckets: dict[int, dict[str, int]] = {}
    for event in events:
        if "heart_rate" not in event:
            continue
        minute = int(event.timestamp // 60)
        rate = event["heart_rate"]
        if rate < rest_max_hr:
            band = "rest"
        elif rate < vigorous_min_hr:
            band = "moderate"
        else:
            band = "vigorous"
        by_band = buckets.setdefault(
            minute, {"rest": 0, "moderate": 0, "vigorous": 0}
        )
        by_band[band] += 1
    return buckets
