"""Synthetic PAM stream generator.

Each subject follows a seeded random activity protocol: episodes of 1-6
minutes drawn from :data:`~repro.pam.schema.ACTIVITIES`, with sensor values
sampled around the activity's characteristic statistics (heart rate lags the
activity change by a short transient, which exercises the context deriving
queries' hysteresis).  One report per subject per ``report_interval``
seconds, all subjects interleaved in timestamp order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.events.event import Event
from repro.events.stream import EventStream
from repro.pam.schema import ACTIVITIES, ACTIVITY_REPORT


@dataclass
class PamConfig:
    """Configuration of a synthetic PAM run (defaults mirror PAMAP2 scale:
    14 subjects, 75 minutes — scaled down by default for test speed)."""

    num_subjects: int = 4
    duration_minutes: int = 15
    report_interval: int = 5  # seconds between reports per subject
    min_episode_seconds: int = 60
    max_episode_seconds: int = 360
    seed: int = 11

    @property
    def duration_seconds(self) -> int:
        return self.duration_minutes * 60


class _SubjectState:
    __slots__ = ("subject", "activity", "episode_end", "heart_rate")

    def __init__(self, subject: int, activity: str, episode_end: int):
        self.subject = subject
        self.activity = activity
        self.episode_end = episode_end
        self.heart_rate = ACTIVITIES[activity][0]


def generate_pam_stream(config: PamConfig) -> EventStream:
    """The full synthetic PAM stream, timestamp-ordered.

    Also usable as ground truth: each subject's activity timeline is
    re-derivable from the emitted heart-rate/acceleration values, which is
    exactly what the PAM CAESAR model does.
    """
    rng = random.Random(config.seed)
    activities = list(ACTIVITIES)
    subjects = [
        _SubjectState(
            subject=subject_id,
            activity=rng.choice(activities[:3]),  # start at a calm activity
            episode_end=rng.randint(
                config.min_episode_seconds, config.max_episode_seconds
            ),
        )
        for subject_id in range(1, config.num_subjects + 1)
    ]
    events = []
    for t in range(0, config.duration_seconds, config.report_interval):
        for state in subjects:
            if t >= state.episode_end:
                state.activity = rng.choice(activities)
                state.episode_end = t + rng.randint(
                    config.min_episode_seconds, config.max_episode_seconds
                )
            hr_target, hand, chest, ankle = ACTIVITIES[state.activity]
            # heart rate converges to the activity's mean with a short lag
            state.heart_rate += (hr_target - state.heart_rate) * 0.35
            events.append(
                Event(
                    ACTIVITY_REPORT,
                    t,
                    {
                        "subject": state.subject,
                        "sec": t,
                        "heart_rate": round(
                            state.heart_rate + rng.gauss(0.0, 2.0), 1
                        ),
                        "hand_acc": round(hand + rng.gauss(0.0, 0.8), 2),
                        "chest_acc": round(chest + rng.gauss(0.0, 0.5), 2),
                        "ankle_acc": round(ankle + rng.gauss(0.0, 1.0), 2),
                    },
                )
            )
    return EventStream(events, name="pam")
