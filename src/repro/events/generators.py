"""Synthetic stream builders.

Reusable seeded generators for tests, benchmarks and application
prototyping: constant-rate streams, linearly ramping rates (the Linear Road
shape), bursty on/off traffic and random-walk attribute values.  All are
deterministic per seed and emit timestamp-ordered events ready for
:class:`~repro.events.stream.EventStream`.
"""

from __future__ import annotations

import random
from typing import Callable, Iterator

from repro.events.event import Event
from repro.events.stream import EventStream
from repro.events.timebase import TimePoint
from repro.events.types import EventType

PayloadFactory = Callable[[TimePoint, random.Random], dict]


def _default_payload(t: TimePoint, rng: random.Random) -> dict:
    return {"value": rng.randint(0, 100), "sec": t}


def constant_rate_stream(
    event_type: EventType,
    *,
    duration: TimePoint,
    interval: TimePoint,
    events_per_tick: int = 1,
    payload: PayloadFactory = _default_payload,
    seed: int = 0,
) -> EventStream:
    """``events_per_tick`` events every ``interval`` time units."""
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    rng = random.Random(seed)

    def generate() -> Iterator[Event]:
        t: TimePoint = 0
        while t < duration:
            for _ in range(events_per_tick):
                yield Event(event_type, t, payload(t, rng))
            t += interval

    return EventStream(generate(), name="constant-rate")


def ramping_stream(
    event_type: EventType,
    *,
    duration: TimePoint,
    interval: TimePoint,
    start_events: int,
    end_events: int,
    payload: PayloadFactory = _default_payload,
    seed: int = 0,
) -> EventStream:
    """Per-tick event count ramping linearly from ``start`` to ``end``
    (the Figure 10(b) input-rate shape)."""
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    rng = random.Random(seed)

    def generate() -> Iterator[Event]:
        t: TimePoint = 0
        while t < duration:
            fraction = t / duration if duration else 0
            count = round(start_events + (end_events - start_events) * fraction)
            for _ in range(max(0, count)):
                yield Event(event_type, t, payload(t, rng))
            t += interval

    return EventStream(generate(), name="ramping")


def bursty_stream(
    event_type: EventType,
    *,
    duration: TimePoint,
    interval: TimePoint,
    quiet_events: int,
    burst_events: int,
    burst_every: TimePoint,
    burst_length: TimePoint,
    payload: PayloadFactory = _default_payload,
    seed: int = 0,
) -> EventStream:
    """Quiet background traffic with periodic bursts."""
    if interval <= 0 or burst_every <= 0:
        raise ValueError("interval and burst_every must be positive")
    rng = random.Random(seed)

    def generate() -> Iterator[Event]:
        t: TimePoint = 0
        while t < duration:
            in_burst = (t % burst_every) < burst_length
            count = burst_events if in_burst else quiet_events
            for _ in range(count):
                yield Event(event_type, t, payload(t, rng))
            t += interval

    return EventStream(generate(), name="bursty")


def random_walk_payload(
    attribute: str = "value",
    *,
    start: float = 50.0,
    step: float = 5.0,
    low: float = 0.0,
    high: float = 100.0,
) -> PayloadFactory:
    """A payload factory whose ``attribute`` follows a bounded random walk.

    Useful for threshold-transition models: the value drifts across the
    context thresholds rather than jumping randomly.
    """
    state = {"value": start}

    def factory(t: TimePoint, rng: random.Random) -> dict:
        state["value"] = min(
            high, max(low, state["value"] + rng.uniform(-step, step))
        )
        return {attribute: round(state["value"], 2), "sec": t}

    return factory
