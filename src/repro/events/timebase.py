"""Time domain of the CAESAR model (Section 2, "Preliminaries").

Time is a linearly ordered set of time points ``(T, <=)``; the paper takes
``T`` to be a subset of the non-negative rationals, but this library only
requires the ordering — negative time points (epoch offsets, clocks
rebased to a reference instant) are accepted everywhere, which matters for
the reorder buffer's lateness accounting.  We represent time points as
plain numbers (``int`` or ``float``); a :class:`TimeInterval` is a closed
interval ``[start, end]`` with ``start <= end``.  The occurrence time of a
*complex* event spans the occurrence times of all events it was derived
from, so intervals — not just points — are first-class here.

Note the two interval conventions living side by side: *occurrence times*
of events are closed intervals (an event derived from contributors at 10
and 20 occurred throughout ``[10, 20]``), whereas *context window
occupancy* is half-open ``[start, end)`` (see
:class:`repro.core.windows.ContextWindow` and ``docs/architecture.md``
§ 9.1).  They answer different questions and are deliberately distinct.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

TimePoint = Union[int, float]


@dataclass(frozen=True, slots=True)
class TimeInterval:
    """A closed time interval ``[start, end]`` with ``start <= end``.

    A single time point ``t`` is represented as the degenerate interval
    ``[t, t]`` (see :meth:`point`).
    """

    start: TimePoint
    end: TimePoint

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"interval end must not precede start: [{self.start}, {self.end}]"
            )

    @classmethod
    def point(cls, t: TimePoint) -> "TimeInterval":
        """The degenerate interval ``[t, t]`` representing a time point."""
        return cls(t, t)

    @property
    def is_point(self) -> bool:
        """True if this interval covers a single time point."""
        return self.start == self.end

    @property
    def duration(self) -> TimePoint:
        """Length of the interval (zero for a time point)."""
        return self.end - self.start

    def contains(self, t: TimePoint) -> bool:
        """True if time point ``t`` lies within this interval (``t ⊑ w``)."""
        return self.start <= t <= self.end

    def contains_interval(self, other: "TimeInterval") -> bool:
        """True if ``other`` lies entirely within this interval."""
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "TimeInterval") -> bool:
        """True if the two closed intervals share at least one time point."""
        return self.start <= other.end and other.start <= self.end

    def precedes(self, other: "TimeInterval") -> bool:
        """True if this interval ends strictly before ``other`` begins."""
        return self.end < other.start

    def span(self, other: "TimeInterval") -> "TimeInterval":
        """Smallest interval covering both operands."""
        return TimeInterval(min(self.start, other.start), max(self.end, other.end))

    def intersect(self, other: "TimeInterval") -> "TimeInterval | None":
        """Intersection of the two intervals, or ``None`` if disjoint."""
        if not self.overlaps(other):
            return None
        return TimeInterval(max(self.start, other.start), min(self.end, other.end))

    def __str__(self) -> str:
        return f"[{self.start}, {self.end}]"


def interval_contains(interval: TimeInterval, t: TimePoint) -> bool:
    """Module-level alias of :meth:`TimeInterval.contains` (``t ⊑ w``)."""
    return interval.contains(t)


def intervals_overlap(a: TimeInterval, b: TimeInterval) -> bool:
    """Module-level alias of :meth:`TimeInterval.overlaps`."""
    return a.overlaps(b)
