"""Event streams and batches (Section 2, "Event Stream"; Section 6.2).

An :class:`EventStream` is an in-order sequence of events.  The CAESAR
runtime routes *stream batches* — multiple subsequent events — rather than
single events, which is one of the ingredients making context-aware routing
lightweight (Section 6.2).  :class:`StreamBatch` groups events sharing a
timestamp window for that purpose.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Iterator, Sequence

from repro.errors import StreamOrderError
from repro.events.event import Event
from repro.events.timebase import TimePoint


class EventStream:
    """An append-only, timestamp-ordered sequence of events.

    The stream enforces the paper's in-order arrival assumption ("events
    arrive in-order by time stamps", Section 6.2): appending an event with a
    timestamp smaller than the last appended one raises
    :class:`StreamOrderError`.  Equal timestamps are allowed — simultaneous
    events form one stream transaction.
    """

    def __init__(self, events: Iterable[Event] = (), *, name: str = "stream"):
        self.name = name
        self._events: list[Event] = []
        self._last_time: TimePoint | None = None
        for event in events:
            self.append(event)

    def append(self, event: Event) -> None:
        """Append one event, enforcing timestamp order."""
        if self._last_time is not None and event.timestamp < self._last_time:
            raise StreamOrderError(
                f"stream {self.name!r}: event at t={event.timestamp} arrived "
                f"after t={self._last_time}"
            )
        self._events.append(event)
        self._last_time = event.timestamp

    def extend(self, events: Iterable[Event]) -> None:
        for event in events:
            self.append(event)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    @property
    def last_timestamp(self) -> TimePoint | None:
        """Timestamp of the most recently appended event, or None if empty."""
        return self._last_time

    def events_between(self, start: TimePoint, end: TimePoint) -> list[Event]:
        """Events with ``start <= timestamp <= end`` (linear scan)."""
        return [e for e in self._events if start <= e.timestamp <= end]

    def filter(self, predicate: Callable[[Event], bool]) -> "EventStream":
        """A new stream holding the events satisfying ``predicate``."""
        return EventStream(
            (e for e in self._events if predicate(e)), name=f"{self.name}|filtered"
        )

    def batches(self) -> Iterator["StreamBatch"]:
        """Group consecutive same-timestamp events into batches.

        One batch per distinct timestamp: this is the granularity at which
        the time-driven scheduler forms stream transactions (Section 6.2).
        """
        current: list[Event] = []
        for event in self._events:
            if current and event.timestamp != current[-1].timestamp:
                yield StreamBatch(current)
                current = []
            current.append(event)
        if current:
            yield StreamBatch(current)


class StreamBatch(Sequence[Event]):
    """A non-empty group of events sharing one timestamp."""

    __slots__ = ("_events", "timestamp")

    def __init__(self, events: Sequence[Event]):
        if not events:
            raise ValueError("a stream batch must contain at least one event")
        timestamp = events[0].timestamp
        for event in events[1:]:
            if event.timestamp != timestamp:
                raise StreamOrderError(
                    "all events in a batch must share one timestamp; got "
                    f"{timestamp} and {event.timestamp}"
                )
        self._events = tuple(events)
        self.timestamp = timestamp

    def __len__(self) -> int:
        return len(self._events)

    def __getitem__(self, index):  # type: ignore[override]
        return self._events[index]

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __repr__(self) -> str:
        return f"StreamBatch(t={self.timestamp}, n={len(self._events)})"


def merge_streams(*streams: EventStream, name: str = "merged") -> EventStream:
    """Merge timestamp-ordered streams into one ordered stream.

    Uses a k-way heap merge; ties are broken by the event's process-unique id
    so the merge is deterministic.
    """
    merged = heapq.merge(
        *streams, key=lambda event: (event.timestamp, event.event_id)
    )
    return EventStream(merged, name=name)
