"""Event substrate: typed events, interval timestamps, ordered streams.

This package implements the preliminaries of Section 2 of the paper: a time
domain of non-negative rationals, typed events with schemas, and in-order
event streams that the CAESAR operators consume.
"""

from repro.events.timebase import TimeInterval, interval_contains, intervals_overlap
from repro.events.types import AttributeSpec, EventSchema, EventType
from repro.events.event import Event
from repro.events.stream import EventStream, StreamBatch, merge_streams
from repro.events.batch import (
    COLUMNAR_ENV_VAR,
    BatchStats,
    ColumnarEvents,
    EventBatch,
    TypeDirectory,
    columnar_enabled,
)

__all__ = [
    "AttributeSpec",
    "BatchStats",
    "COLUMNAR_ENV_VAR",
    "ColumnarEvents",
    "Event",
    "EventBatch",
    "EventSchema",
    "EventStream",
    "EventType",
    "StreamBatch",
    "TimeInterval",
    "TypeDirectory",
    "columnar_enabled",
    "interval_contains",
    "intervals_overlap",
    "merge_streams",
]
