"""Event types and schemas (Section 2, "Event").

An event type is defined by a name and a schema: the set of attributes and
the domains of their values.  In the Linear Road benchmark, for example, a
``PositionReport`` has integer attributes ``vid``, ``speed``, ``xway``,
``lane``, ``dir``, ``seg`` and ``pos``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.errors import SchemaError

#: Attribute domains supported by schemas.  ``object`` accepts any value and
#: is used for derived attributes whose domain is application-defined.
_DOMAINS: dict[str, tuple[type, ...]] = {
    "int": (int,),
    "float": (int, float),
    "str": (str,),
    "bool": (bool,),
    "object": (object,),
}


@dataclass(frozen=True, slots=True)
class AttributeSpec:
    """A single attribute of an event schema: its name and value domain."""

    name: str
    domain: str = "object"

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid attribute name: {self.name!r}")
        if self.domain not in _DOMAINS:
            raise SchemaError(
                f"unknown domain {self.domain!r} for attribute {self.name!r}; "
                f"expected one of {sorted(_DOMAINS)}"
            )

    def accepts(self, value: Any) -> bool:
        """True if ``value`` belongs to this attribute's domain."""
        expected = _DOMAINS[self.domain]
        if self.domain == "int" and isinstance(value, bool):
            # bool is a subclass of int but is not an integer domain value.
            return False
        return isinstance(value, expected)


@dataclass(frozen=True)
class EventSchema:
    """An ordered collection of :class:`AttributeSpec` defining an event type."""

    attributes: tuple[AttributeSpec, ...] = ()

    def __post_init__(self) -> None:
        names = [a.name for a in self.attributes]
        if len(names) != len(set(names)):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate attribute names in schema: {dupes}")

    @classmethod
    def from_mapping(cls, spec: Mapping[str, str]) -> "EventSchema":
        """Build a schema from ``{attribute_name: domain}``."""
        return cls(tuple(AttributeSpec(name, dom) for name, dom in spec.items()))

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    def __contains__(self, name: str) -> bool:
        return any(a.name == name for a in self.attributes)

    def validate(
        self, payload: Mapping[str, Any], *, type_name: str | None = None
    ) -> None:
        """Raise :class:`SchemaError` unless ``payload`` conforms.

        Conformance means every schema attribute is present with a value in
        its domain; extra keys in the payload are rejected so that typos in
        producer code surface immediately.  ``type_name`` names the event
        type being validated in the message and in the error's structured
        fields (``event_type``, ``field``, ``expected``, ``actual``).
        """
        prefix = f"event type {type_name!r}: " if type_name else ""
        missing = [a.name for a in self.attributes if a.name not in payload]
        if missing:
            raise SchemaError(
                f"{prefix}missing attributes: {missing}",
                event_type=type_name,
                field=missing[0],
                expected=self._domain_of(missing[0]),
                actual="<absent>",
            )
        extra = sorted(set(payload) - set(self.attribute_names))
        if extra:
            raise SchemaError(
                f"{prefix}unexpected attributes: {extra}",
                event_type=type_name,
                field=extra[0],
                expected="<not in schema>",
                actual=type(payload[extra[0]]).__name__,
            )
        for attr in self.attributes:
            value = payload[attr.name]
            if not attr.accepts(value):
                raise SchemaError(
                    f"{prefix}attribute {attr.name!r} expects domain "
                    f"{attr.domain!r}, got {value!r} of type "
                    f"{type(value).__name__}",
                    event_type=type_name,
                    field=attr.name,
                    expected=attr.domain,
                    actual=type(value).__name__,
                )

    def _domain_of(self, attribute_name: str) -> str | None:
        for attr in self.attributes:
            if attr.name == attribute_name:
                return attr.domain
        return None


@dataclass(frozen=True)
class EventType:
    """A named event type with a schema (Section 2).

    Event types are compared and hashed by name: within one application a
    type name identifies a single schema, mirroring the paper's treatment of
    types like ``PositionReport`` and ``TollNotification``.
    """

    name: str
    schema: EventSchema = field(default_factory=EventSchema, compare=False)

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid event type name: {self.name!r}")

    @classmethod
    def define(cls, name: str, **attributes: str) -> "EventType":
        """Convenience constructor: ``EventType.define("Report", vid="int")``."""
        return cls(name, EventSchema.from_mapping(attributes))

    def __hash__(self) -> int:
        return hash(self.name)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, EventType):
            return self.name == other.name
        return NotImplemented

    def __str__(self) -> str:
        return self.name


def build_type_registry(types: Iterable[EventType]) -> dict[str, EventType]:
    """Index event types by name, rejecting duplicate names."""
    registry: dict[str, EventType] = {}
    for event_type in types:
        if event_type.name in registry:
            raise SchemaError(f"duplicate event type name: {event_type.name!r}")
        registry[event_type.name] = event_type
    return registry
