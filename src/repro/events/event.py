"""Events: simple and complex (Section 2, "Event" and "Event Stream").

A simple event carries a point timestamp assigned by its source.  A complex
event is derived from other events; its occurrence time is the interval
spanning all events it was derived from.  Both are represented by
:class:`Event`, whose ``time`` is always a :class:`TimeInterval` (degenerate
for simple events).
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Mapping

from repro.errors import SchemaError
from repro.events.timebase import TimeInterval, TimePoint
from repro.events.types import EventType

_EVENT_IDS = itertools.count()


class Event:
    """An immutable event of a given :class:`EventType`.

    Attributes are accessed with :meth:`get` or indexing (``event["vid"]``).
    Identity (``event_id``) is a process-unique sequence number used only for
    deterministic tie-breaking and debugging — equality is by value.
    """

    __slots__ = ("event_type", "time", "_payload", "event_id", "derived_from")

    def __init__(
        self,
        event_type: EventType,
        time: TimeInterval | TimePoint,
        payload: Mapping[str, Any] | None = None,
        *,
        derived_from: tuple["Event", ...] = (),
        validate: bool = False,
    ):
        if not isinstance(time, TimeInterval):
            time = TimeInterval.point(time)
        payload = dict(payload or {})
        if validate:
            event_type.schema.validate(payload, type_name=event_type.name)
        object.__setattr__(self, "event_type", event_type)
        object.__setattr__(self, "time", time)
        object.__setattr__(self, "_payload", payload)
        object.__setattr__(self, "event_id", next(_EVENT_IDS))
        object.__setattr__(self, "derived_from", tuple(derived_from))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Event instances are immutable")

    def __getstate__(self) -> dict[str, Any]:
        # Explicit pickle support: the immutability guard breaks the default
        # slots protocol (whose __setstate__ uses setattr).  ``event_id`` is
        # process-unique and deliberately not serialized.
        return {
            "event_type": self.event_type,
            "time": self.time,
            "payload": self._payload,
            "derived_from": self.derived_from,
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        object.__setattr__(self, "event_type", state["event_type"])
        object.__setattr__(self, "time", state["time"])
        object.__setattr__(self, "_payload", dict(state["payload"]))
        object.__setattr__(self, "event_id", next(_EVENT_IDS))
        object.__setattr__(self, "derived_from", tuple(state["derived_from"]))

    @property
    def type_name(self) -> str:
        """Name of this event's type (``e.type`` in the paper)."""
        return self.event_type.name

    @property
    def timestamp(self) -> TimePoint:
        """Occurrence time point: the *end* of the occurrence interval.

        For simple events this is the point timestamp; for complex events the
        derivation completes when the last contributing event occurs, which
        is the convention used by interval-based CEP semantics [23].
        """
        return self.time.end

    @property
    def start_time(self) -> TimePoint:
        """Beginning of the occurrence interval."""
        return self.time.start

    @property
    def is_complex(self) -> bool:
        """True if this event was derived from other events."""
        return bool(self.derived_from)

    @property
    def payload(self) -> dict[str, Any]:
        """A copy of the attribute payload."""
        return dict(self._payload)

    def get(self, attribute: str, default: Any = None) -> Any:
        return self._payload.get(attribute, default)

    def __getitem__(self, attribute: str) -> Any:
        try:
            return self._payload[attribute]
        except KeyError:
            raise SchemaError(
                f"event of type {self.type_name!r} has no attribute "
                f"{attribute!r}; available: {sorted(self._payload)}"
            ) from None

    def __contains__(self, attribute: str) -> bool:
        return attribute in self._payload

    def attributes(self) -> tuple[str, ...]:
        return tuple(self._payload)

    def restrict(self, attributes: Iterable[str], event_type: EventType) -> "Event":
        """Project this event to ``attributes`` and retag it (``PR_{A,E}``)."""
        kept = {a: self._payload[a] for a in attributes if a in self._payload}
        return Event(event_type, self.time, kept, derived_from=self.derived_from)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (
            self.event_type == other.event_type
            and self.time == other.time
            and self._payload == other._payload
        )

    def __hash__(self) -> int:
        return hash((self.event_type, self.time, tuple(sorted(self._payload.items()))))

    def __repr__(self) -> str:
        attrs = ", ".join(f"{k}={v!r}" for k, v in self._payload.items())
        return f"{self.type_name}@{self.time}({attrs})"


def rehydrate_event(
    event_type: EventType,
    time: TimeInterval,
    payload: dict[str, Any],
) -> Event:
    """Fast-path constructor for trusted, already-normalized inputs.

    Used by the columnar batch codec when materializing decoded events:
    ``time`` is a ready :class:`TimeInterval` and ``payload`` a freshly
    built dict the caller hands over, so the normalization and defensive
    copy of :meth:`Event.__init__` are skipped.  Semantically equivalent
    to unpickling: a fresh process-local ``event_id`` is assigned.
    """
    event = Event.__new__(Event)
    object.__setattr__(event, "event_type", event_type)
    object.__setattr__(event, "time", time)
    object.__setattr__(event, "_payload", payload)
    object.__setattr__(event, "event_id", next(_EVENT_IDS))
    object.__setattr__(event, "derived_from", ())
    return event


def derive_complex_event(
    event_type: EventType,
    contributors: Iterable[Event],
    payload: Mapping[str, Any],
) -> Event:
    """Build a complex event from its contributing events.

    The occurrence time is the span of all contributors' intervals, per the
    interval semantics the paper adopts from [23].
    """
    contributors = tuple(contributors)
    if not contributors:
        raise ValueError("a complex event needs at least one contributing event")
    time = contributors[0].time
    for event in contributors[1:]:
        time = time.span(event.time)
    return Event(event_type, time, payload, derived_from=contributors)
