"""Columnar event batches and the shared-memory wire codec.

The engine's hot path moves *batches* of events — all events of one
timestamp — between the scheduler, the routers and (for the process
backend) across process boundaries.  This module gives those batches a
columnar representation, the batch-oriented evaluation trick modern CER
engines use to keep per-event interpreter overhead off the critical path:

:class:`ColumnarEvents`
    A ``list`` of events carrying a lazily-built columnar *view*: per
    event type, the payload attributes as parallel value columns, plus the
    batch's type-name set (computed once instead of once per router).
    Being a plain ``list`` subclass it flows through every operator
    unchanged; operators that know about columns (:class:`~repro.algebra.
    relational_ops.Filter` via :meth:`~repro.algebra.expressions.Expr.
    compile_batch`) evaluate whole columns per segment instead of one
    binding dict per event.

:class:`EventBatch`
    The wire codec.  ``encode`` packs a batch into one contiguous buffer:
    a pickled header (layout, object lanes) followed by 8-byte-aligned raw
    ``int64``/``float64`` column buffers.  ``decode`` reads columns as
    zero-copy :class:`memoryview` casts straight out of the source buffer
    — typically a :mod:`multiprocessing.shared_memory` ring segment — so
    the only per-value work on the receiving side is rebuilding the event
    objects themselves, never a pickle round-trip of their payloads.

Regularity rules — what lands in typed columns vs the object lane:

* an event is **regular** if it is a plain :class:`Event` (no subclass),
  underived, with a point occurrence time, and its payload keys match the
  first-seen key tuple of its type; anything else (match events, complex
  events, interval times, heterogeneous payloads) rides the pickled
  **object lane** unchanged;
* a column is typed ``int64``/``float64`` only when *every* value is
  exactly ``int`` (within 64-bit range, ``bool`` excluded) or exactly
  ``float`` — mixed or exotic columns fall back to a pickled object
  column.  Exact-type checks keep decoded payloads bit-identical to the
  originals, which the backend-parity contract depends on.

The serial engine wraps each transaction's events in
:class:`ColumnarEvents` unless the ``CAESAR_COLUMNAR`` environment
variable disables it (``0``/``off``) — the switch the differential
harness uses to prove the columnar path changes nothing observable.
"""

from __future__ import annotations

import os
import pickle
import struct
from array import array
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.events.event import Event, rehydrate_event
from repro.events.timebase import TimeInterval
from repro.events.types import EventType

#: Environment variable gating the serial columnar fast path (``0`` /
#: ``off`` disables it; default on).  Read at engine construction.
COLUMNAR_ENV_VAR = "CAESAR_COLUMNAR"

_OFF_VALUES = frozenset({"0", "off", "false", "no", "none", "disabled"})


def columnar_enabled() -> bool:
    """Is the serial columnar fast path enabled (``CAESAR_COLUMNAR``)?"""
    value = os.environ.get(COLUMNAR_ENV_VAR, "")
    return value.strip().lower() not in _OFF_VALUES


# ---------------------------------------------------------------------------
# in-process columnar view
# ---------------------------------------------------------------------------


@dataclass
class TypeSegment:
    """The regular events of one type: positions plus payload columns."""

    event_type: EventType
    #: payload key order, fixed by the first event of the type in the batch
    keys: tuple[str, ...]
    #: original batch positions of the segment's events
    indices: list[int] = field(default_factory=list)
    #: attribute name → values, aligned with :attr:`indices`
    columns: dict[str, list] = field(default_factory=dict)
    #: point timestamps, aligned with :attr:`indices`
    times: list = field(default_factory=list)


@dataclass
class BatchView:
    """Columnar decomposition of one batch: typed segments + object lane."""

    n: int
    regular: list[TypeSegment]
    #: original positions of events that defied columnarization
    irregular: list[int]


def build_view(events: Sequence[Event]) -> BatchView:
    """Decompose a batch into per-type segments and the irregular lane."""
    segments: dict[EventType, TypeSegment] = {}
    irregular: list[int] = []
    for index, event in enumerate(events):
        if (
            type(event) is not Event
            or event.derived_from
            or not event.time.is_point
        ):
            irregular.append(index)
            continue
        payload = event._payload
        segment = segments.get(event.event_type)
        if segment is None:
            keys = tuple(payload)
            segment = TypeSegment(
                event.event_type, keys, columns={key: [] for key in keys}
            )
            segments[event.event_type] = segment
        elif tuple(payload) != segment.keys:
            irregular.append(index)
            continue
        segment.indices.append(index)
        segment.times.append(event.time.start)
        for key in segment.keys:
            segment.columns[key].append(payload[key])
    return BatchView(len(events), list(segments.values()), irregular)


class ColumnarEvents(list):
    """A list of events with a cached columnar view and type-name set.

    The view and type names are computed lazily and cached; the list must
    not be mutated afterwards (the engine never mutates transaction
    batches in place — it rebinds).
    """

    __slots__ = ("_view", "_type_names")

    def __init__(self, events: Sequence[Event] = ()):
        super().__init__(events)
        self._view: BatchView | None = None
        self._type_names: frozenset[str] | None = None

    @property
    def type_names(self) -> frozenset[str]:
        """The batch's event-type names, computed once per batch."""
        names = self._type_names
        if names is None:
            names = frozenset(event.type_name for event in self)
            self._type_names = names
        return names

    def view(self) -> BatchView:
        """The columnar decomposition, built on first use."""
        view = self._view
        if view is None:
            view = build_view(self)
            self._view = view
        return view

    def __reduce__(self):
        # Pickle as content only: cached views hold no wire-format state
        # worth shipping and are rebuilt lazily on the other side.
        return (ColumnarEvents, (list(self),))


# ---------------------------------------------------------------------------
# wire codec
# ---------------------------------------------------------------------------

_MAGIC = b"CAEB"
_PREFIX = struct.Struct("<4sI")  # magic, pickled-header length
_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1
_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


def _column_kind(values: list) -> str:
    """``'q'`` (int64) / ``'d'`` (float64) / ``'obj'`` for one column.

    Exact-type checks: ``bool`` is not an int column value, ``int`` never
    rides a float column — decoded values must compare *and* type-match
    the originals for backend parity.
    """
    first = type(values[0])
    if first is int:
        for value in values:
            if type(value) is not int or not (
                _INT64_MIN <= value <= _INT64_MAX
            ):
                return "obj"
        return "q"
    if first is float:
        for value in values:
            if type(value) is not float:
                return "obj"
        return "d"
    return "obj"


class TypeDirectory:
    """Shared event-type id assignment for one encoder/decoder link.

    The process backend keeps one directory per worker pipe: a type is
    pickled once, in the header of the first batch that carries it, and
    referenced by integer id afterwards.  Ids are assigned in commit
    order on the encoding side and registration order on the decoding
    side; because batches traverse the pipe FIFO and every committed
    batch is decoded, the two stay in lockstep.
    """

    __slots__ = ("_ids", "_types")

    def __init__(self):
        self._ids: dict[EventType, int] = {}
        self._types: list[EventType] = []

    def __len__(self) -> int:
        return len(self._types)

    def lookup(self, event_type: EventType) -> int | None:
        return self._ids.get(event_type)

    def add(self, event_type: EventType) -> int:
        type_id = len(self._types)
        self._types.append(event_type)
        self._ids[event_type] = type_id
        return type_id

    def get(self, type_id: int) -> EventType:
        return self._types[type_id]


@dataclass(frozen=True)
class BatchStats:
    """How one encoded batch split across the columnar and object lanes."""

    events: int
    columnar: int
    object_lane: int
    object_columns: int


class EventBatch:
    """One batch encoded for the wire.

    ``data`` is the contiguous buffer; ``new_types`` lists the event types
    the encoding assumed to be first-sighted on this link — the caller
    must :meth:`commit` them to the shared :class:`TypeDirectory` once the
    batch is actually shipped (and must *not* when it falls back to plain
    pickling, or the decoder's directory would drift).
    """

    __slots__ = ("data", "stats", "new_types", "_directory")

    def __init__(self, data, stats, new_types, directory):
        self.data = data
        self.stats = stats
        self.new_types = new_types
        self._directory = directory

    def commit(self) -> None:
        """Register this batch's first-seen types with the directory."""
        if self._directory is not None:
            for _type_id, event_type in self.new_types:
                self._directory.add(event_type)

    @classmethod
    def encode(
        cls,
        events: Sequence[Event],
        directory: TypeDirectory | None = None,
    ) -> "EventBatch":
        """Pack a batch: pickled header + aligned raw column buffers.

        Layout: ``<4s magic><u32 header length><pickled header><pad to
        8><int64/float64 buffers, each 8-aligned>``.  Object columns and
        irregular events travel inside the header pickle.
        """
        if isinstance(events, ColumnarEvents):
            view = events.view()
        else:
            view = build_view(events)

        raw_buffers: list[array] = []
        raw_offset = 0
        object_columns = 0

        def add_buffer(kind: str, values: list) -> tuple[int, int]:
            nonlocal raw_offset
            buffer = array(kind, values)
            offset = raw_offset
            raw_buffers.append(buffer)
            raw_offset += len(buffer) * 8
            return offset, len(values)

        new_types: list[tuple[int, EventType]] = []
        tentative: dict[EventType, int] = {}
        base = len(directory) if directory is not None else 0

        def type_id_of(event_type: EventType) -> int:
            type_id = (
                directory.lookup(event_type) if directory is not None else None
            )
            if type_id is None:
                type_id = tentative.get(event_type)
            if type_id is None:
                type_id = base + len(tentative)
                tentative[event_type] = type_id
                new_types.append((type_id, event_type))
            return type_id

        segments_meta = []
        columnar = 0
        for segment in view.regular:
            columnar += len(segment.indices)
            columns_meta = []
            for key in segment.keys:
                values = segment.columns[key]
                kind = _column_kind(values)
                if kind == "obj":
                    object_columns += 1
                    columns_meta.append((key, "obj", values))
                else:
                    columns_meta.append((key, kind, add_buffer(kind, values)))
            times = segment.times
            first = times[0]
            if all(t == first for t in times):
                time_meta = ("u", first)
            else:
                kind = _column_kind(times)
                if kind == "obj":
                    time_meta = ("obj", times)
                else:
                    time_meta = (kind, add_buffer(kind, times))
            segments_meta.append(
                (
                    type_id_of(segment.event_type),
                    len(segment.indices),
                    segment.keys,
                    add_buffer("q", segment.indices),
                    time_meta,
                    columns_meta,
                )
            )

        header = {
            "n": view.n,
            "new_types": new_types,
            "segments": segments_meta,
            "irregular": [(index, events[index]) for index in view.irregular],
        }
        header_bytes = pickle.dumps(header, protocol=_PICKLE_PROTOCOL)
        region_start = _aligned(_PREFIX.size + len(header_bytes))
        data = bytearray(region_start + raw_offset)
        _PREFIX.pack_into(data, 0, _MAGIC, len(header_bytes))
        data[_PREFIX.size : _PREFIX.size + len(header_bytes)] = header_bytes
        position = region_start
        for buffer in raw_buffers:
            nbytes = len(buffer) * 8
            data[position : position + nbytes] = buffer.tobytes()
            position += nbytes
        stats = BatchStats(
            events=view.n,
            columnar=columnar,
            object_lane=len(view.irregular),
            object_columns=object_columns,
        )
        return cls(bytes(data), stats, new_types, directory)

    @staticmethod
    def decode(
        buf, directory: TypeDirectory | None = None
    ) -> ColumnarEvents:
        """Rebuild the batch from an encoded buffer.

        ``buf`` is any bytes-like object — typically a memoryview into a
        shared-memory ring, read in place without an intermediate copy.
        Events come back equal to the originals (fresh ``event_id``\\ s, as
        with pickling) in their original order.
        """
        view = memoryview(buf)
        magic, header_length = _PREFIX.unpack_from(view, 0)
        if magic != _MAGIC:
            raise ValueError(f"not an encoded event batch (magic {magic!r})")
        header = pickle.loads(
            view[_PREFIX.size : _PREFIX.size + header_length]
        )
        if directory is None:
            directory = TypeDirectory()
        for _type_id, event_type in header["new_types"]:
            directory.add(event_type)
        region = _aligned(_PREFIX.size + header_length)

        def buffer_of(kind: str, descriptor: tuple[int, int]):
            offset, count = descriptor
            start = region + offset
            return view[start : start + count * 8].cast(kind)

        out: list = [None] * header["n"]
        for (
            type_id,
            count,
            keys,
            index_descriptor,
            time_meta,
            columns_meta,
        ) in header["segments"]:
            event_type = directory.get(type_id)
            indices = buffer_of("q", index_descriptor)
            time_kind = time_meta[0]
            if time_kind == "u":
                interval = TimeInterval.point(time_meta[1])
                times = None
            elif time_kind == "obj":
                times = time_meta[1]
            else:
                times = buffer_of(time_kind, time_meta[1])
            columns = [
                payload if kind == "obj" else buffer_of(kind, payload)
                for _key, kind, payload in columns_meta
            ]
            for row in range(count):
                payload = {
                    key: column[row] for key, column in zip(keys, columns)
                }
                if times is not None:
                    interval = TimeInterval.point(times[row])
                out[indices[row]] = rehydrate_event(
                    event_type, interval, payload
                )
        for index, event in header["irregular"]:
            out[index] = event
        return ColumnarEvents(out)


def _aligned(position: int) -> int:
    """Round up to the next 8-byte boundary."""
    return (position + 7) & ~7
