"""Linear Road output validation.

The original benchmark ships a validator that recomputes the expected
outputs from the raw input and diffs them against the system's responses;
an implementation only "passes" Linear Road if its answers are *correct*
within the latency constraint.  This module provides that check for the
reproduction's workload:

* :func:`expected_toll_vehicles` — recompute, directly from the input
  stream and the detected congestion windows, which (vehicle, time) pairs
  must receive a toll notification (the query-2 semantics: a report with no
  same-vehicle report 30 s earlier *within the window*, not on an exit
  lane);
* :func:`validate_report` — diff an engine report against the expectation
  and check the latency constraint, returning a :class:`ValidationResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.windows import ContextWindow
from repro.events.event import Event
from repro.linearroad.schema import (
    LATENCY_CONSTRAINT_SECONDS,
    REPORT_INTERVAL_SECONDS,
)
from repro.runtime.engine import EngineReport


@dataclass
class ValidationResult:
    """Outcome of validating one engine run."""

    expected_tolls: int
    produced_tolls: int
    missing: list[tuple] = field(default_factory=list)
    spurious: list[tuple] = field(default_factory=list)
    max_latency: float = 0.0
    latency_ok: bool = True

    @property
    def correct(self) -> bool:
        return not self.missing and not self.spurious

    @property
    def passed(self) -> bool:
        return self.correct and self.latency_ok

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return (
            f"[{status}] tolls expected={self.expected_tolls} "
            f"produced={self.produced_tolls} missing={len(self.missing)} "
            f"spurious={len(self.spurious)} "
            f"max_latency={self.max_latency:.3f}s "
            f"(constraint ok: {self.latency_ok})"
        )


def _congestion_windows(
    windows_by_partition: dict,
) -> dict[tuple, list[ContextWindow]]:
    result: dict[tuple, list[ContextWindow]] = {}
    for key, windows in windows_by_partition.items():
        result[key] = [w for w in windows if w.context_name == "congestion"]
    return result


def expected_toll_vehicles(
    stream: Iterable[Event],
    windows_by_partition: dict,
    *,
    report_interval: int = REPORT_INTERVAL_SECONDS,
) -> set[tuple]:
    """Recompute the (partition, vid, sec) set that must be tolled.

    A position report earns a toll iff it falls inside a congestion window
    of its segment, is not on an exit lane, and the same vehicle produced
    no report ``report_interval`` seconds earlier *inside the window* (the
    context scopes the negation — Section 3.4).
    """
    congestion = _congestion_windows(windows_by_partition)

    def occupies(window: ContextWindow, t) -> bool:
        # engine occupancy semantics: the initiating batch is processed in
        # the window, the terminating batch no longer is
        return window.start <= t and (window.end is None or t < window.end)

    #: (partition, vid, sec) of all in-window reports, for negation lookup
    in_window_reports: set[tuple] = set()
    candidates: list[tuple] = []
    for event in stream:
        if event.type_name != "PositionReport":
            continue
        key = (event["xway"], event["dir"], event["seg"])
        windows = congestion.get(key, [])
        inside = any(occupies(w, event.timestamp) for w in windows)
        if not inside:
            continue
        in_window_reports.add((key, event["vid"], event["sec"]))
        if event["lane"] != "exit":
            candidates.append((key, event["vid"], event["sec"]))
    expected = set()
    for key, vid, sec in candidates:
        window = next(w for w in congestion[key] if occupies(w, sec))
        predecessor = (key, vid, sec - report_interval)
        # the predecessor only blocks if it falls inside the same window
        blocked = (
            predecessor in in_window_reports
            and occupies(window, sec - report_interval)
        )
        if not blocked:
            expected.add((key, vid, sec))
    return expected


def validate_report(
    stream: Iterable[Event],
    report: EngineReport,
    *,
    constraint_seconds: float = LATENCY_CONSTRAINT_SECONDS,
    report_interval: int = REPORT_INTERVAL_SECONDS,
) -> ValidationResult:
    """Diff the engine's toll notifications against the recomputation."""
    expected = expected_toll_vehicles(
        stream, report.windows_by_partition, report_interval=report_interval
    )
    produced = set()
    for event in report.outputs:
        if event.type_name != "TollNotification":
            continue
        key = None
        if "seg" in event:
            # the reproduction's query 1 projects the segment; xway/dir are
            # recoverable from the partition windows
            for partition in report.windows_by_partition:
                if partition[2] == event["seg"]:
                    key = partition
                    break
        produced.add((key, event["vid"], event["sec"]))
    missing = sorted(expected - produced)
    spurious = sorted(produced - expected)
    return ValidationResult(
        expected_tolls=len(expected),
        produced_tolls=len(produced),
        missing=missing,
        spurious=spurious,
        max_latency=report.max_latency,
        latency_ok=report.max_latency <= constraint_seconds,
    )
