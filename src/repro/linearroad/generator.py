"""High-level stream generation for the Linear Road experiments.

:class:`LinearRoadConfig` exposes the knobs the paper's experiments vary —
number of roads, run length, context window (regime) schedules — and
:func:`generate_stream` turns a configuration into an ordered event stream.
Schedule builders reproduce the experiment designs: the default 3-phase
timeline of Figure 10(b) (clear → accident 30-50 min → congestion 70-180
min), uniformly spaced windows, and the positively/negatively skewed window
distributions of Figure 13.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.events.stream import EventStream
from repro.linearroad.simulator import (
    SegmentInterval,
    SimulationConfig,
    TrafficSimulator,
)


@dataclass
class LinearRoadConfig:
    """Experiment-level configuration (scaled-down Linear Road defaults)."""

    num_roads: int = 1
    segments_per_road: int = 10
    directions: int = 1  # 1 or 2 (both travel directions per expressway)
    duration_minutes: int = 30
    cars_clear: int = 6
    cars_congested: int = 20
    cars_accident: int = 10
    churn: float = 0.10
    ramp_start_fraction: float = 0.4
    congestion_schedule: tuple[SegmentInterval, ...] = ()
    accident_schedule: tuple[SegmentInterval, ...] = ()
    seed: int = 42

    @property
    def duration_seconds(self) -> int:
        return self.duration_minutes * 60

    def to_simulation_config(self) -> SimulationConfig:
        return SimulationConfig(
            num_xways=self.num_roads,
            segments_per_xway=self.segments_per_road,
            directions=self.directions,
            duration_seconds=self.duration_seconds,
            cars_clear=self.cars_clear,
            cars_congested=self.cars_congested,
            cars_accident=self.cars_accident,
            churn=self.churn,
            ramp_start_fraction=self.ramp_start_fraction,
            congestion_schedule=self.congestion_schedule,
            accident_schedule=self.accident_schedule,
            seed=self.seed,
        )


def generate_stream(config: LinearRoadConfig) -> EventStream:
    """The full event stream for one configuration, timestamp-ordered."""
    simulator = TrafficSimulator(config.to_simulation_config())
    return EventStream(simulator.events(), name="linear-road")


# ---------------------------------------------------------------------------
# schedule builders
# ---------------------------------------------------------------------------


def paper_timeline_schedules(
    config: LinearRoadConfig,
) -> LinearRoadConfig:
    """The Figure 10(b) timeline scaled to ``config``'s duration.

    Accidents hold during minutes 30-50 of 180 (fractions 1/6 to 5/18) and
    congestion during minutes 70-180 (fraction 7/18 to 1), applied to every
    segment of every road.
    """
    duration = config.duration_seconds
    accident = (round(duration * 30 / 180), round(duration * 50 / 180))
    congestion = (round(duration * 70 / 180), duration)
    accidents = []
    congestions = []
    for xway in range(config.num_roads):
        for seg in range(config.segments_per_road):
            accidents.append(
                SegmentInterval(xway, 0, seg, accident[0], accident[1])
            )
            congestions.append(
                SegmentInterval(xway, 0, seg, congestion[0], congestion[1])
            )
    return replace(
        config,
        accident_schedule=tuple(accidents),
        congestion_schedule=tuple(congestions),
    )


def randomized_schedules(
    config: LinearRoadConfig,
    *,
    congestion_probability: float = 0.5,
    accident_probability: float = 0.25,
    seed: int | None = None,
) -> LinearRoadConfig:
    """Segment-variable schedules: some segments congest or crash, others
    stay clear — producing the per-segment variability of Figure 10(a)."""
    rng = random.Random(config.seed if seed is None else seed)
    duration = config.duration_seconds
    accidents = []
    congestions = []
    for xway in range(config.num_roads):
        for seg in range(config.segments_per_road):
            if rng.random() < congestion_probability:
                start = rng.randint(0, max(1, duration // 2))
                length = rng.randint(duration // 6, duration // 2)
                congestions.append(
                    SegmentInterval(
                        xway, 0, seg, start, min(duration, start + length)
                    )
                )
            if rng.random() < accident_probability:
                start = rng.randint(0, max(1, 2 * duration // 3))
                length = rng.randint(duration // 12, duration // 4)
                accidents.append(
                    SegmentInterval(
                        xway, 0, seg, start, min(duration, start + length)
                    )
                )
    return replace(
        config,
        accident_schedule=tuple(accidents),
        congestion_schedule=tuple(congestions),
    )


def uniform_congestion_windows(
    config: LinearRoadConfig,
    *,
    count: int,
    length_seconds: int,
) -> LinearRoadConfig:
    """``count`` equally spaced congestion windows of the given length on
    every segment (the uniform distribution of Figure 13 and the default
    setup of Figure 12)."""
    duration = config.duration_seconds
    if count < 1:
        return replace(config, congestion_schedule=())
    stride = duration / count
    windows = []
    for index in range(count):
        start = round(index * stride + (stride - length_seconds) / 2)
        start = max(0, start)
        end = min(duration, start + length_seconds)
        if end > start:
            windows.append((start, end))
    schedule = [
        SegmentInterval(xway, 0, seg, start, end)
        for xway in range(config.num_roads)
        for seg in range(config.segments_per_road)
        for start, end in windows
    ]
    return replace(config, congestion_schedule=tuple(schedule))


def skewed_congestion_windows(
    config: LinearRoadConfig,
    *,
    count: int,
    length_seconds: int,
    skew: str,
    seed: int | None = None,
) -> LinearRoadConfig:
    """Poisson-skewed window placement (Figure 13).

    ``skew="positive"`` clusters the windows near the beginning of the run
    (where the ramped-up stream rate is still low); ``skew="negative"``
    clusters them near the end (highest rate).
    """
    if skew not in ("positive", "negative"):
        raise ValueError(f"skew must be 'positive' or 'negative', got {skew!r}")
    rng = random.Random(config.seed if seed is None else seed)
    duration = config.duration_seconds
    lam = duration / max(count, 1) / 4
    starts: list[int] = []
    position = 0.0
    for _ in range(count):
        position += rng.expovariate(1.0 / lam) if lam > 0 else 0.0
        starts.append(int(position))
    windows = []
    for start in starts:
        if skew == "negative":
            start = duration - length_seconds - start
        if start < 0 or start >= duration:
            # the skewed placement pushed this window off the stream — its
            # workload is simply never activated (this is what makes the
            # negatively skewed setup cheap in Figure 13: off-stream windows
            # never run, while clustered on-stream windows overlap)
            continue
        end = min(duration, start + length_seconds)
        if end > start:
            windows.append((start, end))
    schedule = [
        SegmentInterval(xway, 0, seg, start, end)
        for xway in range(config.num_roads)
        for seg in range(config.segments_per_road)
        for start, end in windows
    ]
    return replace(config, congestion_schedule=tuple(schedule))


def coverage_fraction(config: LinearRoadConfig) -> float:
    """Fraction of the run covered by congestion windows (per segment,
    averaged) — the percentage annotated above the bars in Figures 12(c)
    and 12(d)."""
    duration = config.duration_seconds
    segments = config.num_roads * config.segments_per_road
    if duration <= 0 or segments == 0:
        return 0.0
    per_segment: dict[tuple, list[tuple[int, int]]] = {}
    for interval in config.congestion_schedule:
        key = (interval.xway, interval.direction, interval.seg)
        per_segment.setdefault(key, []).append((interval.start, interval.end))
    covered = 0.0
    for intervals in per_segment.values():
        intervals.sort()
        last_end = 0
        for start, end in intervals:
            start = max(start, last_end)
            if end > start:
                covered += end - start
                last_end = end
    return covered / (duration * segments)
