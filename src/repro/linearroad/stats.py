"""Engine-side segment statistics (the aggregation stage of Linear Road).

Every Linear Road implementation computes per-segment, per-minute
statistics (vehicle count, average speed) from the raw position reports;
the CAESAR context deriving queries consume them.  The simulator can emit
these statistics itself (its default), or — using this module — the engine
derives them with the windowed :class:`~repro.algebra.aggregate
.AggregateOperator`, exercising the full raw-reports-only pipeline::

    engine = CaesarEngine(
        build_traffic_model(),
        preprocessors=(segment_stats_aggregator(),),
        partition_by=segment_partitioner,
    )
    stream = generate_stream(config_without_stats)   # emit_stats=False

The derived events carry the same schema as the simulator's
``SegmentStats``, so the rest of the model is unchanged.
"""

from __future__ import annotations

from repro.algebra.aggregate import AggregateFunction, AggregateOperator
from repro.algebra.expressions import attr
from repro.events.timebase import TimePoint
from repro.linearroad.schema import SEGMENT_STATS


def segment_stats_aggregator(
    *, window: TimePoint = 60
) -> AggregateOperator:
    """Per-minute segment statistics from raw position reports.

    * ``cars`` — distinct vehicles seen in the window;
    * ``avg_speed`` — average reported speed;
    * ``stopped_cars`` — distinct vehicles that reported speed 0.
    """
    return AggregateOperator(
        "PositionReport",
        SEGMENT_STATS,
        window=window,
        group_by=("xway", "dir", "seg"),
        functions=(
            AggregateFunction("cars", "count_distinct", "vid"),
            AggregateFunction("avg_speed", "avg", "speed"),
            AggregateFunction(
                "stopped_cars",
                "count_distinct",
                "vid",
                predicate=attr("speed").eq(0),
            ),
        ),
    )
