"""The CAESAR traffic-management workload (Figures 1 and 3).

Three application contexts per unidirectional road segment — *clear*
(default), *congestion* and *accident* — with the paper's transition
network:

* clear → congestion when many slow cars (INITIATE congestion);
* clear/congestion → accident when stopped cars (INITIATE accident —
  congestion and accident may overlap, Section 3.4);
* congestion ends when few fast cars (TERMINATE congestion);
* accident ends when the stopped cars are removed (TERMINATE accident).

Context processing workloads:

* congestion — toll computation: the paper's query 2 detects cars entering
  the congested segment (``SEQ(NOT PositionReport p1, PositionReport p2)``
  with the 30-second negation guard) deriving ``NewTravelingCar``, and
  query 1 derives ``TollNotification`` from it;
* accident — alarm computation: warn every moving vehicle;
* clear/accident — zero-toll notification for entering cars (the benchmark
  requires zero toll derivation outside congestion, Figure 10(b)).

Context derivation consumes the per-minute ``SegmentStats`` events (the
"over 50 cars per minute with average speed below 40 mph" condition from
Section 1); thresholds are parameters because the simulator's vehicle pools
are scaled down relative to the original benchmark.
"""

from __future__ import annotations

from repro.algebra.pattern import (
    EventMatch,
    NegatedSpec,
    PatternSpec,
    Sequence,
)
from repro.core.model import CaesarModel
from repro.core.queries import EventQuery
from repro.events.types import EventType
from repro.language import parse_query
from repro.linearroad.schema import (
    CONGESTION_MAX_AVG_SPEED,
    type_registry,
)

CLEAR = "clear"
CONGESTION = "congestion"
ACCIDENT = "accident"


def build_traffic_model(
    *,
    min_cars: int = 12,
    max_avg_speed: float = CONGESTION_MAX_AVG_SPEED,
    min_stopped: int = 2,
    toll: int = 5,
) -> CaesarModel:
    """The Linear Road CAESAR model (Figure 3, completed).

    ``min_cars``/``max_avg_speed`` are the congestion thresholds,
    ``min_stopped`` the number of stopped cars that signals an accident and
    ``toll`` the flat toll amount of the paper's simplified query 1.
    """
    types = type_registry()
    model = CaesarModel(default_context=CLEAR)
    model.add_context(CONGESTION)
    model.add_context(ACCIDENT)

    # ------------------------------------------------------------------
    # context deriving queries
    # ------------------------------------------------------------------

    model.add_query(
        parse_query(
            f"INITIATE CONTEXT {CONGESTION} "
            "PATTERN SegmentStats s "
            f"WHERE s.cars >= {min_cars} AND s.avg_speed < {max_avg_speed} "
            f"CONTEXT {CLEAR}, {ACCIDENT}",
            name="detect_congestion",
            types=types,
        )
    )
    model.add_query(
        parse_query(
            f"TERMINATE CONTEXT {CONGESTION} "
            "PATTERN SegmentStats s "
            f"WHERE s.cars < {min_cars} OR s.avg_speed >= {max_avg_speed} "
            f"CONTEXT {CONGESTION}",
            name="detect_congestion_end",
            types=types,
        )
    )
    model.add_query(
        parse_query(
            f"INITIATE CONTEXT {ACCIDENT} "
            "PATTERN SegmentStats s "
            f"WHERE s.stopped_cars >= {min_stopped} "
            f"CONTEXT {CLEAR}, {CONGESTION}",
            name="detect_accident",
            types=types,
        )
    )
    model.add_query(
        parse_query(
            f"TERMINATE CONTEXT {ACCIDENT} "
            "PATTERN SegmentStats s "
            "WHERE s.stopped_cars = 0 "
            f"CONTEXT {ACCIDENT}",
            name="detect_accident_cleared",
            types=types,
        )
    )

    # ------------------------------------------------------------------
    # context processing queries
    # ------------------------------------------------------------------

    # Query 2 of Figure 3: cars entering the congested segment — no earlier
    # report from the same vehicle 30 seconds ago, and not on an exit lane.
    model.add_query(
        parse_query(
            "DERIVE NewTravelingCar(p2.vid, p2.xway, p2.dir, p2.seg, "
            "p2.lane, p2.pos, p2.sec) "
            "PATTERN SEQ(NOT PositionReport p1, PositionReport p2) "
            "WHERE p1.sec + 30 = p2.sec AND p1.vid = p2.vid "
            "AND p2.lane != 'exit' "
            f"CONTEXT {CONGESTION}",
            name="new_traveling_car",
            types=types,
        )
    )
    # Query 1 of Figure 3: toll notification for each entering car.  The
    # paper's form is TollNotification(p.vid, p.sec, 5); we also project the
    # segment so per-segment analyses (Figure 10) can attribute the toll.
    model.add_query(
        parse_query(
            f"DERIVE TollNotification(p.vid, p.seg, p.sec, {toll}) "
            "PATTERN NewTravelingCar p "
            f"CONTEXT {CONGESTION}",
            name="toll_notification",
            types=types,
        )
    )
    # Alarm computation during accidents: warn every moving vehicle.
    model.add_query(
        parse_query(
            "DERIVE AccidentWarning(p.vid, p.sec, p.seg) "
            "PATTERN PositionReport p "
            "WHERE p.speed > 0 "
            f"CONTEXT {ACCIDENT}",
            name="accident_warning",
            types=types,
        )
    )
    # Zero toll outside congestion (Figure 10(b)): entering cars are
    # notified of a zero toll in the clear and accident contexts.
    model.add_query(
        parse_query(
            "DERIVE ZeroTollNotification(p.vid, p.seg, p.sec, 0) "
            "PATTERN PositionReport p "
            "WHERE p.lane = 'entry' "
            f"CONTEXT {CLEAR}, {ACCIDENT}",
            name="zero_toll_notification",
            types=types,
        )
    )
    model.validate()
    return model


def replicate_workload(
    model: CaesarModel,
    copies: int,
    *,
    contexts: tuple[str, ...] | None = None,
) -> CaesarModel:
    """Replicate context processing queries ``copies`` times.

    The paper simulates low, average and high query workloads by replicating
    the benchmark's event queries (Section 7.1).  Deriving queries are never
    replicated — context detection happens once regardless of workload size
    (Section 3.2, "Context Derivation").  When ``contexts`` is given, only
    queries belonging *exclusively* to those contexts are replicated — the
    Figure 12(a) setup replicates exactly the queries of the critical
    context windows, which are suspendable everywhere else.
    """
    if copies < 1:
        raise ValueError(f"copies must be >= 1, got {copies}")
    replicated = CaesarModel(default_context=model.default_context)
    for name in model.context_names:
        replicated.add_context(name)
    queries = list(model.queries())
    eligible_names = {
        q.name
        for q in queries
        if q.is_processing
        and (contexts is None or set(q.contexts) <= set(contexts))
    }
    # Each copy forms its own derive/consume chain: the derived types of
    # replicated queries are renamed per copy so copies do not cross-feed
    # (ten copies of query 2 must not multiply query 1's input tenfold).
    replicated_types = {
        q.derive_type.name
        for q in queries
        if q.name in eligible_names and q.derive_type is not None
    }
    for query in queries:
        query_contexts = query.contexts or (model.default_context,)
        replicated.add_query(query.with_contexts(query_contexts))
    for copy_index in range(1, copies):
        rename = {name: f"{name}_{copy_index}" for name in replicated_types}
        for query in queries:
            if query.name not in eligible_names:
                continue
            assert query.derive_type is not None
            derive_type = EventType(
                rename.get(query.derive_type.name, query.derive_type.name),
                query.derive_type.schema,
            )
            replicated.add_query(
                EventQuery(
                    name=f"{query.name}#{copy_index}",
                    action=query.action,
                    pattern=_rename_pattern_types(query.pattern, rename),
                    contexts=query.contexts or (model.default_context,),
                    where=query.where,
                    derive_type=derive_type,
                    derive_items=query.derive_items,
                )
            )
    return replicated


def _rename_pattern_types(
    spec: PatternSpec, rename: dict[str, str]
) -> PatternSpec:
    """Rewrite event type names in a pattern (used by workload replication)."""
    if isinstance(spec, EventMatch):
        return EventMatch(rename.get(spec.type_name, spec.type_name), spec.var)
    if isinstance(spec, NegatedSpec):
        return NegatedSpec(
            EventMatch(
                rename.get(spec.inner.type_name, spec.inner.type_name),
                spec.inner.var,
            ),
            guard=spec.guard,
            within=spec.within,
        )
    assert isinstance(spec, Sequence)
    return Sequence(
        tuple(_rename_pattern_types(element, rename) for element in spec.elements)
    )


def segment_partitioner(event) -> tuple:
    """Partition key: the unidirectional road segment (Section 6.2)."""
    return (event.get("xway"), event.get("dir"), event.get("seg"))
