"""Linear Road event types [9].

A position report carries the attributes the benchmark defines: vehicle id,
speed (mph), expressway, lane, direction, segment and position; all values
integers except the lane, which we name symbolically (the paper's query 2
tests ``p2.lane ≠ 'exit'``).

``SegmentStats`` is the per-segment, per-minute statistics event every
Linear Road implementation computes from raw reports (vehicle count, average
speed, stopped cars); CAESAR's context deriving queries consume it — "over
50 cars per minute move with an average speed less than 40 mph" is the
paper's own congestion condition (Section 1).
"""

from __future__ import annotations

from repro.events.types import EventType

#: Lane names, entry ramp to exit ramp.
LANES = ("entry", "left", "middle", "right", "exit")

#: Position reports are emitted by every vehicle every 30 seconds.
REPORT_INTERVAL_SECONDS = 30

#: The benchmark's response-time constraint (Section 7.1).
LATENCY_CONSTRAINT_SECONDS = 5.0

#: Congestion thresholds from the paper's motivating example (Section 1).
CONGESTION_MIN_CARS = 50
CONGESTION_MAX_AVG_SPEED = 40

POSITION_REPORT = EventType.define(
    "PositionReport",
    vid="int",
    sec="int",
    speed="int",
    xway="int",
    lane="str",
    dir="int",
    seg="int",
    pos="int",
)

SEGMENT_STATS = EventType.define(
    "SegmentStats",
    sec="int",
    xway="int",
    dir="int",
    seg="int",
    cars="int",
    avg_speed="float",
    stopped_cars="int",
)

TOLL_NOTIFICATION = EventType.define(
    "TollNotification",
    vid="int",
    sec="int",
    toll="int",
)

ACCIDENT_EVENT = EventType.define(
    "Accident",
    sec="int",
    xway="int",
    dir="int",
    seg="int",
    pos="int",
)

ACCIDENT_WARNING = EventType.define(
    "AccidentWarning",
    vid="int",
    sec="int",
    seg="int",
)

NEW_TRAVELING_CAR = EventType.define(
    "NewTravelingCar",
    vid="int",
    xway="int",
    dir="int",
    seg="int",
    lane="str",
    pos="int",
    sec="int",
)

ALL_TYPES = (
    POSITION_REPORT,
    SEGMENT_STATS,
    TOLL_NOTIFICATION,
    ACCIDENT_EVENT,
    ACCIDENT_WARNING,
    NEW_TRAVELING_CAR,
)


def type_registry() -> dict[str, EventType]:
    """All Linear Road event types indexed by name."""
    return {event_type.name: event_type for event_type in ALL_TYPES}
