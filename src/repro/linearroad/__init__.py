"""Linear Road benchmark substrate [9].

The paper evaluates CAESAR on the Linear Road stream benchmark: vehicles on
configurable expressways emit position reports every 30 seconds; the system
must derive toll notifications and accident warnings within 5 seconds, and a
system's *L-factor* is the number of expressways it sustains within that
constraint.

The original MIT generator's traces are not redistributable, so this package
provides a seeded traffic micro-simulator emitting the same schema and the
same macro-structure (ramp-up of input rate over the run, accidents forming
from stopped-car pairs, congestion emerging from dense slow traffic), plus
the paper's CAESAR model for the workload (clear / congestion / accident
contexts with toll and accident-warning queries).
"""

from repro.linearroad.schema import (
    ACCIDENT_EVENT,
    ACCIDENT_WARNING,
    POSITION_REPORT,
    SEGMENT_STATS,
    TOLL_NOTIFICATION,
    LANES,
)
from repro.linearroad.simulator import TrafficSimulator, SimulationConfig
from repro.linearroad.generator import generate_stream, LinearRoadConfig
from repro.linearroad.queries import build_traffic_model, replicate_workload
from repro.linearroad.tolls import toll_amount
from repro.linearroad.analysis import (
    compute_l_factor,
    events_per_minute,
    events_per_segment,
)

__all__ = [
    "ACCIDENT_EVENT",
    "ACCIDENT_WARNING",
    "LANES",
    "LinearRoadConfig",
    "POSITION_REPORT",
    "SEGMENT_STATS",
    "SimulationConfig",
    "TOLL_NOTIFICATION",
    "TrafficSimulator",
    "build_traffic_model",
    "compute_l_factor",
    "events_per_minute",
    "events_per_segment",
    "generate_stream",
    "replicate_workload",
    "toll_amount",
]
