"""Seeded Linear Road traffic micro-simulator.

The original benchmark drives a closed traffic model through a historical
simulation; what CAESAR's evaluation needs from it is the *stream shape*:

* position reports every 30 seconds from every vehicle on the road;
* per-segment traffic regimes — clear, congested (many slow cars), accident
  (stopped-car pairs plus slowed traffic) — that hold for schedulable
  intervals of unknown-to-the-engine duration;
* input rate ramping up over the 3-hour run (Figure 10(b));
* per-minute segment statistics (vehicle count, average speed, stopped
  cars) from which the context deriving queries detect regime changes.

Each segment hosts a pool of vehicles whose size depends on the regime and
on the ramp factor; a small per-tick churn replaces vehicles with fresh ones
(cars entering/leaving the segment), which is what produces
``NewTravelingCar`` matches — and hence toll notifications — during
congestion.  Everything is driven by a single seeded RNG, so a configuration
always yields the identical stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import CaesarError
from repro.events.event import Event
from repro.linearroad.schema import (
    LANES,
    POSITION_REPORT,
    REPORT_INTERVAL_SECONDS,
    SEGMENT_STATS,
)

#: Feet per Linear Road segment (one mile).
SEGMENT_FEET = 5280


@dataclass(frozen=True)
class SegmentInterval:
    """A scheduled traffic regime on one unidirectional segment."""

    xway: int
    direction: int
    seg: int
    start: int  # seconds
    end: int  # seconds

    def covers(self, t: int) -> bool:
        return self.start <= t < self.end

    @property
    def length(self) -> int:
        return self.end - self.start


@dataclass
class SimulationConfig:
    """Parameters of one simulated run."""

    num_xways: int = 1
    segments_per_xway: int = 10
    directions: int = 1
    duration_seconds: int = 1800
    report_interval: int = REPORT_INTERVAL_SECONDS
    stats_interval: int = 60
    #: vehicles per segment in each regime (before the ramp factor)
    cars_clear: int = 6
    cars_congested: int = 20
    cars_accident: int = 10
    #: input rate ramps linearly from this fraction to 1.0 over the run
    ramp_start_fraction: float = 0.4
    #: per-tick probability that a vehicle leaves and a new one enters
    churn: float = 0.10
    congestion_schedule: tuple[SegmentInterval, ...] = ()
    accident_schedule: tuple[SegmentInterval, ...] = ()
    seed: int = 42
    #: emit per-minute SegmentStats events (set False when the engine
    #: derives the statistics itself via repro.linearroad.stats)
    emit_stats: bool = True

    def __post_init__(self) -> None:
        if self.duration_seconds <= 0:
            raise CaesarError("duration must be positive")
        if not 0 <= self.churn <= 1:
            raise CaesarError(f"churn must be in [0, 1], got {self.churn}")
        if self.report_interval <= 0 or self.stats_interval <= 0:
            raise CaesarError("intervals must be positive")

    def segment_keys(self) -> list[tuple[int, int, int]]:
        return [
            (xway, direction, seg)
            for xway in range(self.num_xways)
            for direction in range(self.directions)
            for seg in range(self.segments_per_xway)
        ]


class _Vehicle:
    """A vehicle in a segment pool."""

    __slots__ = ("vid", "pos", "lane", "entering", "stopped")

    def __init__(self, vid: int, pos: int, lane: str, entering: bool = True):
        self.vid = vid
        self.pos = pos
        self.lane = lane
        self.entering = entering
        self.stopped = False


class _SegmentState:
    """Vehicle pool and accident bookkeeping for one segment."""

    def __init__(self, key: tuple[int, int, int]):
        self.key = key
        self.vehicles: list[_Vehicle] = []
        self.accident_pair: list[_Vehicle] = []
        #: distinct vids and speed samples within the current stats window
        self.window_vids: set[int] = set()
        self.window_speed_sum: float = 0.0
        self.window_speed_count: int = 0


class TrafficSimulator:
    """Generates the Linear Road event stream for one configuration."""

    def __init__(self, config: SimulationConfig):
        self.config = config
        self._rng = random.Random(config.seed)
        self._next_vid = 1
        self._segments = {
            key: _SegmentState(key) for key in config.segment_keys()
        }

    # ------------------------------------------------------------------
    # regimes
    # ------------------------------------------------------------------

    def _regime(self, key: tuple[int, int, int], t: int) -> str:
        xway, direction, seg = key
        for interval in self.config.accident_schedule:
            if (
                interval.xway == xway
                and interval.direction == direction
                and interval.seg == seg
                and interval.covers(t)
            ):
                return "accident"
        for interval in self.config.congestion_schedule:
            if (
                interval.xway == xway
                and interval.direction == direction
                and interval.seg == seg
                and interval.covers(t)
            ):
                return "congestion"
        return "clear"

    def _target_count(self, regime: str, t: int) -> int:
        config = self.config
        base = {
            "clear": config.cars_clear,
            "congestion": config.cars_congested,
            "accident": config.cars_accident,
        }[regime]
        ramp = config.ramp_start_fraction + (1.0 - config.ramp_start_fraction) * (
            t / config.duration_seconds
        )
        return max(1, round(base * ramp))

    def _speed(self, regime: str, vehicle: _Vehicle) -> int:
        if vehicle.stopped:
            return 0
        rng = self._rng
        if regime == "clear":
            return rng.randint(52, 68)
        if regime == "congestion":
            return rng.randint(15, 35)
        return rng.randint(8, 25)  # crawling past an accident

    # ------------------------------------------------------------------
    # vehicle pool maintenance
    # ------------------------------------------------------------------

    def _spawn(self, state: _SegmentState) -> _Vehicle:
        seg = state.key[2]
        vehicle = _Vehicle(
            vid=self._next_vid,
            pos=seg * SEGMENT_FEET + self._rng.randint(0, SEGMENT_FEET - 1),
            lane="entry",
        )
        self._next_vid += 1
        state.vehicles.append(vehicle)
        return vehicle

    def _adjust_pool(self, state: _SegmentState, regime: str, t: int) -> None:
        target = self._target_count(regime, t)
        while len(state.vehicles) < target:
            self._spawn(state)
        while len(state.vehicles) > target:
            victim = next(
                (v for v in state.vehicles if not v.stopped), state.vehicles[0]
            )
            state.vehicles.remove(victim)
        # churn: replace some traveling vehicles with fresh entrants
        for index, vehicle in enumerate(list(state.vehicles)):
            if vehicle.stopped:
                continue
            if self._rng.random() < self.config.churn:
                state.vehicles.remove(vehicle)
                self._spawn(state)

    def _maintain_accident(self, state: _SegmentState, regime: str) -> None:
        if regime == "accident":
            if not state.accident_pair:
                candidates = [v for v in state.vehicles if not v.stopped][:2]
                while len(candidates) < 2:
                    candidates.append(self._spawn(state))
                crash_pos = candidates[0].pos
                for vehicle in candidates[:2]:
                    vehicle.stopped = True
                    vehicle.pos = crash_pos
                    vehicle.lane = "right"
                state.accident_pair = candidates[:2]
        else:
            for vehicle in state.accident_pair:
                vehicle.stopped = False
            state.accident_pair = []

    # ------------------------------------------------------------------
    # event generation
    # ------------------------------------------------------------------

    def events(self) -> Iterator[Event]:
        """Yield the full run's events in timestamp order."""
        config = self.config
        for t in range(0, config.duration_seconds, config.report_interval):
            if config.emit_stats and t and t % config.stats_interval == 0:
                # statistics summarizing the window that just closed; they
                # share the batch timestamp so context derivation sees them
                # before the batch's reports are processed
                yield from self._stats(t)
            yield from self._tick(t)

    def _tick(self, t: int) -> Iterator[Event]:
        for key, state in self._segments.items():
            regime = self._regime(key, t)
            self._adjust_pool(state, regime, t)
            self._maintain_accident(state, regime)
            xway, direction, seg = key
            for vehicle in state.vehicles:
                speed = self._speed(regime, vehicle)
                lane = vehicle.lane
                if vehicle.entering:
                    vehicle.entering = False
                elif not vehicle.stopped:
                    vehicle.lane = self._rng.choice(LANES[1:4])
                    lane = vehicle.lane
                    vehicle.pos = seg * SEGMENT_FEET + (
                        (vehicle.pos + speed * 44 // 30) % SEGMENT_FEET
                    )
                state.window_vids.add(vehicle.vid)
                state.window_speed_sum += speed
                state.window_speed_count += 1
                yield Event(
                    POSITION_REPORT,
                    t,
                    {
                        "vid": vehicle.vid,
                        "sec": t,
                        "speed": speed,
                        "xway": xway,
                        "lane": lane,
                        "dir": direction,
                        "seg": seg,
                        "pos": vehicle.pos,
                    },
                )

    def _stats(self, t: int) -> Iterator[Event]:
        for key, state in self._segments.items():
            xway, direction, seg = key
            if state.window_speed_count:
                avg_speed = state.window_speed_sum / state.window_speed_count
            else:
                avg_speed = 0.0
            stopped = sum(1 for v in state.vehicles if v.stopped)
            yield Event(
                SEGMENT_STATS,
                t,
                {
                    "sec": t,
                    "xway": xway,
                    "dir": direction,
                    "seg": seg,
                    "cars": len(state.window_vids),
                    "avg_speed": round(avg_speed, 2),
                    "stopped_cars": stopped,
                },
            )
            state.window_vids.clear()
            state.window_speed_sum = 0.0
            state.window_speed_count = 0
