"""Linear Road toll computation [9].

The benchmark charges toll on a segment when it is congested: the number of
vehicles exceeds 50 and their average speed over the last 5 minutes is below
40 mph, and no accident is in the downstream proximity.  The toll amount is
``2 × (cars - 150)²`` cents, floored at zero.

The paper's simplified query 1 uses a constant toll; the real formula lives
here for the domain examples and the analysis module.
"""

from __future__ import annotations

from repro.linearroad.schema import CONGESTION_MAX_AVG_SPEED, CONGESTION_MIN_CARS

#: Benchmark toll coefficient (cents).
TOLL_COEFFICIENT = 2

#: Vehicle count at which the toll formula bottoms out.
TOLL_PIVOT_CARS = 150


def is_tollable(
    cars: int,
    avg_speed: float,
    *,
    min_cars: int = CONGESTION_MIN_CARS,
    max_avg_speed: float = CONGESTION_MAX_AVG_SPEED,
    accident_nearby: bool = False,
) -> bool:
    """True if the benchmark would charge toll in this segment state."""
    if accident_nearby:
        return False
    return cars > min_cars and avg_speed < max_avg_speed


def toll_amount(cars: int, *, coefficient: int = TOLL_COEFFICIENT) -> int:
    """The benchmark toll in cents: ``coefficient × (cars - 150)²``.

    The formula is quadratic in the vehicle surplus; with fewer cars than
    the pivot it still yields a positive toll (the benchmark's published
    constant-150 form), never negative.
    """
    if cars < 0:
        raise ValueError(f"car count must be non-negative, got {cars}")
    return coefficient * (cars - TOLL_PIVOT_CARS) ** 2


def toll_for_segment(
    cars: int,
    avg_speed: float,
    *,
    accident_nearby: bool = False,
    min_cars: int = CONGESTION_MIN_CARS,
    max_avg_speed: float = CONGESTION_MAX_AVG_SPEED,
) -> int:
    """Toll charged to a vehicle entering the segment (0 when not tollable)."""
    if not is_tollable(
        cars,
        avg_speed,
        min_cars=min_cars,
        max_avg_speed=max_avg_speed,
        accident_nearby=accident_nearby,
    ):
        return 0
    return toll_amount(cars)
