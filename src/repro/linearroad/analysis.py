"""Linear Road analysis helpers: event distributions and the L-factor.

These reproduce the benchmark-level measurements of Section 7: the events-
per-segment and events-per-minute distributions of Figure 10 and the
L-factor (maximal number of roads processed within the 5-second latency
constraint) of Figure 11(b).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.events.event import Event
from repro.events.stream import EventStream
from repro.linearroad.schema import LATENCY_CONSTRAINT_SECONDS
from repro.runtime.engine import EngineReport


def events_per_segment(
    events: Iterable[Event],
    *,
    xway: int = 0,
    direction: int = 0,
) -> dict[int, dict[str, int]]:
    """Event counts per segment of one unidirectional road (Figure 10(a)).

    Returns ``{segment: {event_type_name: count}}``.  Derived events that
    carry a ``seg`` attribute are attributed to their segment; events of
    other roads are ignored.
    """
    counts: dict[int, dict[str, int]] = {}
    for event in events:
        if event.get("xway", xway) != xway or event.get("dir", direction) != direction:
            continue
        seg = event.get("seg")
        if seg is None:
            continue
        by_type = counts.setdefault(seg, {})
        by_type[event.type_name] = by_type.get(event.type_name, 0) + 1
    return counts


def events_per_minute(
    events: Iterable[Event],
    *,
    seg: int | None = None,
) -> dict[int, dict[str, int]]:
    """Event counts per minute, optionally for one segment (Figure 10(b)).

    Returns ``{minute: {event_type_name: count}}``.
    """
    counts: dict[int, dict[str, int]] = {}
    for event in events:
        if seg is not None and event.get("seg") != seg:
            continue
        minute = int(event.timestamp // 60)
        by_type = counts.setdefault(minute, {})
        by_type[event.type_name] = by_type.get(event.type_name, 0) + 1
    return counts


def compute_l_factor(
    run_for_roads: Callable[[int], EngineReport],
    *,
    max_roads: int = 8,
    constraint_seconds: float = LATENCY_CONSTRAINT_SECONDS,
) -> tuple[int, dict[int, float]]:
    """The L-factor: the largest number of roads processed within the
    latency constraint (Figure 11(b)).

    ``run_for_roads(n)`` must run the engine on an ``n``-road stream and
    return its report.  Returns ``(l_factor, {roads: max_latency})``;
    ``l_factor`` is 0 if even one road violates the constraint.
    """
    latencies: dict[int, float] = {}
    l_factor = 0
    for roads in range(1, max_roads + 1):
        report = run_for_roads(roads)
        latencies[roads] = report.max_latency
        if report.max_latency <= constraint_seconds:
            l_factor = roads
        else:
            break
    return l_factor, latencies
