"""CAESAR algebra (Section 4): six operators and the query plans they form.

The algebra has three operator families:

* context operators unique to CAESAR — context initiation ``CI_c``, context
  termination ``CT_c`` and context window ``CW_c``;
* relational-style operators — filter ``FL_θ`` and projection ``PR_{A,E}``;
* the pattern operator ``P`` implementing event matching, ``SEQ`` and
  ``SEQ`` with negation.

Operators are composed into :class:`~repro.algebra.plan.QueryPlan` pipelines;
individual plans are stitched into combined plans per Section 4.2.
"""

from repro.algebra.expressions import (
    And,
    AttrRef,
    BinaryOp,
    Constant,
    Expr,
    Not,
    Or,
    attr,
    binding_from_event,
    const,
)
from repro.algebra.operators import Operator, OperatorStats
from repro.algebra.context_ops import (
    ContextInitiation,
    ContextTermination,
    ContextWindowOperator,
)
from repro.algebra.relational_ops import Filter, Projection
from repro.algebra.pattern import (
    EventMatch,
    NegatedSpec,
    PatternOperator,
    PatternSpec,
    Sequence,
)
from repro.algebra.plan import CombinedQueryPlan, QueryPlan

__all__ = [
    "And",
    "AttrRef",
    "BinaryOp",
    "CombinedQueryPlan",
    "Constant",
    "ContextInitiation",
    "ContextTermination",
    "ContextWindowOperator",
    "EventMatch",
    "Expr",
    "Filter",
    "NegatedSpec",
    "Not",
    "Operator",
    "OperatorStats",
    "Or",
    "PatternOperator",
    "PatternSpec",
    "Projection",
    "QueryPlan",
    "Sequence",
    "attr",
    "binding_from_event",
    "const",
]
