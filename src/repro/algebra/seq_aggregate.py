"""Online SEQ-match aggregation (Sharon-style shared incremental state).

``DERIVE Out(COUNT(*), SUM(a.x), ...)`` over a SEQ pattern has a result
that is combinatorial to *materialize* — ``SEQ(A, B)`` over ``n`` events
has up to ``n²/4`` matches, ``SEQ(A, B, C)`` up to ``n³`` — but linear to
*compute*: Sharon (Poppe et al., PAPERS.md) shows the aggregate of all
matches can be propagated during pattern evaluation without ever
enumerating a match.

:class:`PatternAggregateOperator` implements that propagation.  Instead of
the pattern operator's per-partial bindings, each stage ``k`` of the
sequence keeps *summaries* — ``(count, sums, mins, maxs, min_start)``
tuples bucketed by the timestamp of the stage's most recent event.  An
incoming event extends the merged summary of every strictly earlier bucket
in one step: the count is inherited, a ``SUM(v.x)`` bound at this stage
contributes ``count · x`` (one multiplication standing in for ``count``
materialized matches), and MIN/MAX merge monotonically.  A completed
summary folds into a per-timestamp result; one derived event per output
type is emitted per completion timestamp.

:class:`MatchAggregateProjection` is the brute-force oracle: placed above
a regular :class:`~repro.algebra.pattern.PatternOperator`, it aggregates
the materialized matches with identical grouping and arithmetic.  The
difftest ``aggregate`` axis asserts both paths agree byte-identically;
``benchmarks/bench_aggregation.py`` measures the asymptotic gap.

Sharing: one operator instance may carry several :class:`AggregateOutput`
columnsets (queries differing only in aggregate function/target), all
served by a single propagation pass — see
:func:`repro.optimizer.sharing.build_shared_workload`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.algebra.aggregate import MatchAggregate
from repro.algebra.expressions import Binding, Expr, conjuncts
from repro.algebra.operators import ExecutionContext, Operator
from repro.algebra.pattern import (
    EventMatch,
    MatchEvent,
    NegatedSpec,
    PatternSpec,
    Sequence,
    flatten_sequence,
)
from repro.errors import ExpressionError, PlanError
from repro.events.event import Event
from repro.events.timebase import TimeInterval, TimePoint
from repro.events.types import EventType


@dataclass(frozen=True)
class AggregateOutput:
    """One derived output type and its aggregate columns.

    A fused operator carries several of these — one per query sharing the
    same pattern and predicate — and emits one event per output per
    completion timestamp.
    """

    event_type: EventType
    aggregates: tuple[MatchAggregate, ...]

    def __post_init__(self) -> None:
        if not self.aggregates:
            raise PlanError(
                f"aggregate output {self.event_type.name!r} needs at least "
                "one aggregate column"
            )
        names = [aggregate.name for aggregate in self.aggregates]
        if len(names) != len(set(names)):
            raise PlanError(
                f"duplicate aggregate output attributes for "
                f"{self.event_type.name!r}: {names}"
            )


def online_aggregation_supported(
    pattern: PatternSpec, where: Expr | None
) -> bool:
    """True if ``pattern``/``where`` admit incremental aggregation.

    The propagation supports flat positive sequences (and single event
    matches) whose predicate conjuncts each constrain at most one pattern
    variable — those compile into per-stage admission predicates.  Negation
    and cross-variable predicates fall back to materialize-then-aggregate.
    """
    pattern = flatten_sequence(pattern)
    if isinstance(pattern, EventMatch):
        variables = {pattern.var}
    elif isinstance(pattern, Sequence):
        if any(isinstance(e, NegatedSpec) for e in pattern.elements):
            return False
        variables = set(pattern.variables())
    else:
        return False
    if where is None:
        return True
    for conjunct in conjuncts(where):
        referenced = conjunct.variables()
        if len(referenced) > 1 or not referenced <= variables:
            return False
    return True


class _Summary:
    """Aggregate contributions of a set of same-stage partial matches.

    ``count`` partial matches, elementwise ``sums``/``mins``/``maxs`` per
    aggregation target (``mins``/``maxs`` are ``None`` until the target's
    variable is bound), and ``min_start`` — the earliest occurrence-interval
    start, which becomes the emitted event's interval start.
    """

    __slots__ = ("count", "min_start", "sums", "mins", "maxs")

    def __init__(
        self,
        count: int,
        min_start: TimePoint,
        sums: list,
        mins: list,
        maxs: list,
    ):
        self.count = count
        self.min_start = min_start
        self.sums = sums
        self.mins = mins
        self.maxs = maxs

    def copy(self) -> "_Summary":
        return _Summary(
            self.count,
            self.min_start,
            list(self.sums),
            list(self.mins),
            list(self.maxs),
        )

    def merge(self, other: "_Summary") -> None:
        """Fold ``other`` into this summary (same stage, disjoint partials)."""
        self.count += other.count
        if other.min_start < self.min_start:
            self.min_start = other.min_start
        sums = self.sums
        mins = self.mins
        maxs = self.maxs
        for j, value in enumerate(other.sums):
            sums[j] += value
        for j, value in enumerate(other.mins):
            if value is not None:
                current = mins[j]
                if current is None or value < current:
                    mins[j] = value
        for j, value in enumerate(other.maxs):
            if value is not None:
                current = maxs[j]
                if current is None or value > current:
                    maxs[j] = value


class _Stage:
    """Summaries waiting at one sequence position, bucketed by last time.

    ``buckets[t]`` merges every partial whose most recent event occurred at
    ``t``.  The *contribution pool* for an incoming event at time ``t`` is
    the merge of all buckets strictly before ``t`` (SEQ requires strictly
    increasing times); to keep that O(1) for in-order streams the stage
    maintains ``prev_total`` — the merge of every bucket before
    ``current_t``, the most recent bucket key — so the common pool reads
    are one summary merge, never a scan.  Late events fall back to a scan.
    """

    __slots__ = ("buckets", "prev_total", "current_t")

    def __init__(self) -> None:
        self.buckets: dict[TimePoint, _Summary] = {}
        self.prev_total: _Summary | None = None
        self.current_t: TimePoint = float("-inf")

    def pool_before(self, t: TimePoint) -> _Summary | None:
        if t > self.current_t:
            current = self.buckets.get(self.current_t)
            if current is None:
                return self.prev_total
            if self.prev_total is None:
                return current
            pool = self.prev_total.copy()
            pool.merge(current)
            return pool
        if t == self.current_t:
            return self.prev_total
        # late event: merge the strictly earlier buckets directly
        pool: _Summary | None = None
        for last_time, summary in self.buckets.items():
            if last_time < t:
                if pool is None:
                    pool = summary.copy()
                else:
                    pool.merge(summary)
        return pool

    def insert(self, summary: _Summary, t: TimePoint) -> None:
        if t > self.current_t:
            current = self.buckets.get(self.current_t)
            if current is not None:
                if self.prev_total is None:
                    self.prev_total = current.copy()
                else:
                    self.prev_total.merge(current)
            self.current_t = t
            self.buckets[t] = summary
            return
        if t == self.current_t:
            self.buckets[t].merge(summary)
            return
        # late event: the bucket joins prev_total (it precedes current_t)
        existing = self.buckets.get(t)
        if existing is None:
            self.buckets[t] = summary
        else:
            existing.merge(summary)
        if self.prev_total is None:
            self.prev_total = summary.copy()
        else:
            self.prev_total.merge(summary)

    def drop_before(self, horizon: TimePoint) -> int:
        stale = [t for t in self.buckets if t < horizon]
        for t in stale:
            del self.buckets[t]
        if stale:
            self.rebuild()
        return len(stale)

    def rebuild(self) -> None:
        """Recompute ``current_t``/``prev_total`` from the buckets."""
        if not self.buckets:
            self.prev_total = None
            self.current_t = float("-inf")
            return
        self.current_t = max(self.buckets)
        total: _Summary | None = None
        for last_time, summary in self.buckets.items():
            if last_time == self.current_t:
                continue
            if total is None:
                total = summary.copy()
            else:
                total.merge(summary)
        self.prev_total = total


class PatternAggregateOperator(Operator):
    """``PA``: evaluate SEQ-match aggregates without materializing matches.

    Parameters
    ----------
    spec:
        The pattern (flat positive :class:`Sequence` or single
        :class:`EventMatch`; negation is unsupported — the planner falls
        back to materialization).
    outputs:
        One or more :class:`AggregateOutput` columnsets served by this
        propagation pass.
    where:
        Optional predicate whose conjuncts each reference at most one
        pattern variable; compiled into per-stage admission checks with
        :class:`~repro.errors.ExpressionError` treated as "inadmissible",
        mirroring the filter operator's drop semantics.
    retention:
        Horizon for waiting summaries, identical to
        :class:`~repro.algebra.pattern.PatternOperator.retention`.
    """

    unit_cost = 2.0

    def __init__(
        self,
        spec: PatternSpec,
        outputs: tuple[AggregateOutput, ...],
        *,
        where: Expr | None = None,
        retention: TimePoint = 300,
    ):
        spec = flatten_sequence(spec)
        if not outputs:
            raise PlanError("a pattern aggregate needs at least one output")
        label = "+".join(output.event_type.name for output in outputs)
        super().__init__(f"PA[{spec} => {label}]")
        if retention <= 0:
            raise PlanError(f"retention must be positive, got {retention}")
        if not online_aggregation_supported(spec, where):
            raise PlanError(
                f"pattern {spec} with predicate {where} is not eligible for "
                "online aggregation (negation or a cross-variable predicate)"
            )
        self.spec = spec
        self.outputs = tuple(outputs)
        self.where = where
        self.retention = retention
        if isinstance(spec, Sequence):
            self._positives: tuple[EventMatch, ...] = spec.positives
        else:
            assert isinstance(spec, EventMatch)
            self._positives = (spec,)
        self._vars = tuple(positive.var for positive in self._positives)
        stage_of = {var: k for k, var in enumerate(self._vars)}
        #: aggregation targets (var, attr) in first-seen order; every
        #: output's columns index into the shared summary slots
        self._targets: list[tuple[str, str]] = []
        target_index: dict[tuple[str, str], int] = {}
        for output in self.outputs:
            for aggregate in output.aggregates:
                if aggregate.func == "count":
                    continue
                if aggregate.var not in stage_of:
                    raise PlanError(
                        f"aggregate {aggregate.name!r} references unknown "
                        f"pattern variable {aggregate.var!r}; have "
                        f"{sorted(stage_of)}"
                    )
                key = (aggregate.var, aggregate.attribute)
                if key not in target_index:
                    target_index[key] = len(self._targets)
                    self._targets.append(key)
        self._target_index = target_index
        #: per stage: the (attr, slot) pairs bound when that stage binds
        self._stage_targets: tuple[tuple[tuple[str, int], ...], ...] = tuple(
            tuple(
                (attr, target_index[(var, attr)])
                for (var, attr) in self._targets
                if var == stage_var
            )
            for stage_var in self._vars
        )
        #: per stage: compiled admission predicates (conjuncts referencing
        #: only this stage's variable; variable-free conjuncts go to stage 0)
        stage_preds: list[list[Callable[[Binding], Any]]] = [
            [] for _ in self._positives
        ]
        if where is not None:
            for conjunct in conjuncts(where):
                referenced = conjunct.variables()
                stage = stage_of[next(iter(referenced))] if referenced else 0
                stage_preds[stage].append(conjunct.compile())
        self._stage_preds = tuple(tuple(preds) for preds in stage_preds)
        #: stages[k] holds summaries whose next positive is index k (k >= 1)
        self._stages: list[_Stage] = [_Stage() for _ in self._positives]
        #: cumulative matches folded into emitted aggregates (the counter
        #: the engine reports against the oracle's materialized count)
        self.matches_aggregated = 0
        self._now: TimePoint = 0
        self._expired_at: TimePoint = float("-inf")

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def process(self, events: list[Event], ctx: ExecutionContext) -> list[Event]:
        completed: dict[TimePoint, _Summary] = {}
        for event in events:
            self._consume(event, completed)
        out = self._emit(completed)
        state = sum(len(stage.buckets) for stage in self._stages)
        cost = self.unit_cost * len(events) + 0.1 * state
        self._account(len(events), len(out), cost)
        return out

    def on_time_advance(self, now: TimePoint, ctx: ExecutionContext) -> list[Event]:
        self._now = max(self._now, now)
        return []

    def _consume(
        self, event: Event, completed: dict[TimePoint, _Summary]
    ) -> None:
        timestamp = event.timestamp
        if timestamp > self._now:
            self._now = timestamp
        if self._now > self._expired_at or timestamp < self._now:
            self._expire_horizon()
        positives = self._positives
        last_index = len(positives) - 1
        type_name = event.type_name
        for k, positive in enumerate(positives):
            if positive.type_name != type_name:
                continue
            if not self._admissible(k, event):
                continue
            extended = self._extend(k, event, timestamp)
            if extended is None:
                continue
            if k == last_index:
                self.matches_aggregated += extended.count
                done = completed.get(timestamp)
                if done is None:
                    completed[timestamp] = extended
                else:
                    done.merge(extended)
            else:
                self._stages[k + 1].insert(extended, timestamp)

    def _admissible(self, k: int, event: Event) -> bool:
        predicates = self._stage_preds[k]
        if not predicates:
            return True
        binding = {self._vars[k]: event}
        for predicate in predicates:
            try:
                if not predicate(binding):
                    return False
            except ExpressionError:
                return False
        return True

    def _extend(
        self, k: int, event: Event, timestamp: TimePoint
    ) -> _Summary | None:
        """The summary of all partials event extends at stage ``k``.

        Returns ``None`` when nothing extends — no strictly earlier
        summaries wait at this stage, or the event lacks an aggregation
        attribute bound here (such an event can contribute no match, just
        as the oracle drops matches binding it).
        """
        bound: list[tuple[int, Any]] = []
        for attr, slot in self._stage_targets[k]:
            if attr not in event:
                return None
            bound.append((slot, event[attr]))
        if k == 0:
            base = _Summary(
                1,
                event.time.start,
                [0] * len(self._targets),
                [None] * len(self._targets),
                [None] * len(self._targets),
            )
        else:
            pool = self._stages[k].pool_before(timestamp)
            if pool is None or pool.count == 0:
                return None
            base = pool.copy()
            start = event.time.start
            if start < base.min_start:
                base.min_start = start
        for slot, value in bound:
            base.sums[slot] = base.count * value
            base.mins[slot] = value
            base.maxs[slot] = value
        return base

    def _emit(self, completed: dict[TimePoint, _Summary]) -> list[Event]:
        if not completed:
            return []
        out: list[Event] = []
        for timestamp in sorted(completed):
            summary = completed[timestamp]
            time = TimeInterval(summary.min_start, timestamp)
            for output in self.outputs:
                payload: dict[str, Any] = {}
                for aggregate in output.aggregates:
                    payload[aggregate.name] = self._result(aggregate, summary)
                out.append(Event(output.event_type, time, payload))
        return out

    def _result(self, aggregate: MatchAggregate, summary: _Summary) -> Any:
        if aggregate.func == "count":
            return summary.count
        slot = self._target_index[(aggregate.var, aggregate.attribute)]
        if aggregate.func == "sum":
            return summary.sums[slot]
        if aggregate.func == "avg":
            return summary.sums[slot] / summary.count
        if aggregate.func == "min":
            return summary.mins[slot]
        return summary.maxs[slot]

    # ------------------------------------------------------------------
    # state management (context history / GC / checkpoint hooks)
    # ------------------------------------------------------------------

    def state_size(self) -> int:
        """Number of waiting summary buckets across all stages."""
        return sum(len(stage.buckets) for stage in self._stages)

    def reset_state(self) -> None:
        for stage in self._stages:
            stage.buckets.clear()
            stage.prev_total = None
            stage.current_t = float("-inf")

    def snapshot_state(self) -> dict[str, Any]:
        return {
            "stages": [
                {t: summary.copy() for t, summary in stage.buckets.items()}
                for stage in self._stages
            ],
            "now": self._now,
        }

    def restore_state(self, snapshot: Mapping[str, Any]) -> None:
        for stage, buckets in zip(self._stages, snapshot["stages"]):
            stage.buckets = {t: summary.copy() for t, summary in buckets.items()}
            stage.rebuild()
        self._now = snapshot["now"]
        self._expired_at = float("-inf")

    def expire_state_before(self, t: TimePoint) -> int:
        return sum(stage.drop_before(t) for stage in self._stages)

    def _expire_horizon(self) -> None:
        self._expired_at = self._now
        horizon = self._now - self.retention
        if horizon <= 0:
            return
        for stage in self._stages:
            stage.drop_before(horizon)


class MatchAggregateProjection(Operator):
    """``PR_agg``: the materialize-then-aggregate oracle.

    Sits above a :class:`~repro.algebra.pattern.PatternOperator` (and its
    filter), receives every materialized match, groups matches by
    completion timestamp and computes the same aggregate columns with the
    same arithmetic as the online operator.  Exists for the differential
    harness and the benchmark — production plans use the online path.
    """

    unit_cost = 0.5

    def __init__(self, outputs: tuple[AggregateOutput, ...]):
        if not outputs:
            raise PlanError("a match aggregation needs at least one output")
        label = "+".join(output.event_type.name for output in outputs)
        super().__init__(f"PR_agg[{label}]")
        self.outputs = tuple(outputs)
        #: union of aggregation targets across outputs, first-seen order —
        #: a match contributes only if *every* target attribute is present,
        #: the same shared-admission rule the online operator applies
        self._targets: list[tuple[str, str]] = []
        self._target_index: dict[tuple[str, str], int] = {}
        for output in self.outputs:
            for aggregate in output.aggregates:
                if aggregate.func == "count":
                    continue
                key = (aggregate.var, aggregate.attribute)
                if key not in self._target_index:
                    self._target_index[key] = len(self._targets)
                    self._targets.append(key)
        #: matches received and folded one-by-one — the combinatorial cost
        #: the online operator avoids; reported next to matches_aggregated
        self.matches_materialized = 0

    def process(self, events: list[Event], ctx: ExecutionContext) -> list[Event]:
        groups: dict[TimePoint, list[MatchEvent]] = {}
        for event in events:
            if isinstance(event, MatchEvent):
                groups.setdefault(event.timestamp, []).append(event)
        self.matches_materialized += sum(len(g) for g in groups.values())
        out: list[Event] = []
        for timestamp in sorted(groups):
            out.extend(self._aggregate_group(timestamp, groups[timestamp]))
        self._account(len(events), len(out), self.unit_cost * len(events))
        return out

    def _aggregate_group(
        self, timestamp: TimePoint, matches: list[MatchEvent]
    ) -> list[Event]:
        targets = self._targets
        count = 0
        min_start: TimePoint | None = None
        sums: list[Any] = [0] * len(targets)
        mins: list[Any] = [None] * len(targets)
        maxs: list[Any] = [None] * len(targets)
        for match in matches:
            values: list[Any] = []
            usable = True
            for var, attr in targets:
                event = match.binding.get(var)
                if event is None or attr not in event:
                    usable = False
                    break
                values.append(event[attr])
            if not usable:
                continue
            count += 1
            start = match.time.start
            if min_start is None or start < min_start:
                min_start = start
            for slot, value in enumerate(values):
                sums[slot] += value
                if mins[slot] is None or value < mins[slot]:
                    mins[slot] = value
                if maxs[slot] is None or value > maxs[slot]:
                    maxs[slot] = value
        if count == 0:
            return []
        assert min_start is not None
        time = TimeInterval(min_start, timestamp)
        out: list[Event] = []
        for output in self.outputs:
            payload: dict[str, Any] = {}
            for aggregate in output.aggregates:
                if aggregate.func == "count":
                    payload[aggregate.name] = count
                    continue
                slot = self._target_index[(aggregate.var, aggregate.attribute)]
                if aggregate.func == "sum":
                    payload[aggregate.name] = sums[slot]
                elif aggregate.func == "avg":
                    payload[aggregate.name] = sums[slot] / count
                elif aggregate.func == "min":
                    payload[aggregate.name] = mins[slot]
                else:
                    payload[aggregate.name] = maxs[slot]
            out.append(Event(output.event_type, time, payload))
        return out
