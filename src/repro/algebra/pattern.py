"""Pattern operator ``P`` (Section 4.1): event matching, SEQ, SEQ with NOT.

The pattern grammar (Fig. 4) is::

    Patt := NOT? EventType Var? | SEQ( (Patt ,?)+ )

We implement the three semantics the paper defines:

1. *Event matching* ``E()`` — every input event of type ``E`` is a match.
2. *Sequence without negation* ``SEQ(E1, ..., En)`` — all combinations of
   events ``e1, ..., en`` with strictly increasing occurrence times
   (skip-till-any-match, as in SASE [34]).
3. *Sequence with negation* ``SEQ(S1, NOT E, S2)`` — sequences of ``S1 S2``
   such that no ``E`` event falls strictly between them.  A negated element
   may also *start* or *end* a sequence, in which case a temporal constraint
   bounds the interval within which the negated event must not occur [34]:
   leading negation is bounded by the guard predicate or the operator's
   retention horizon; trailing negation requires an explicit ``within``.

Matches are emitted as :class:`MatchEvent` objects that carry the full
variable binding, so downstream ``FL_θ``/``PR_{A,E}`` operators can evaluate
multi-variable predicates.  The partial-match state of a pattern operator is
exactly the "context history" the runtime preserves across grouped context
windows (Section 6.2); it is exposed via :meth:`PatternOperator.state_size`,
:meth:`~repro.algebra.operators.Operator.reset_state` and
:meth:`~repro.algebra.operators.Operator.expire_state_before`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.algebra.expressions import SELF_VAR, Expr
from repro.algebra.operators import ExecutionContext, Operator
from repro.errors import ExpressionError, PlanError
from repro.events.event import Event
from repro.events.timebase import TimeInterval, TimePoint
from repro.events.types import EventType

#: Event type tag for pattern matches flowing between operators.
MATCH_EVENT_TYPE = EventType("PatternMatch")


class MatchEvent(Event):
    """A pattern match: an event carrying its variable binding.

    The payload flattens the binding into ``"var.attr"`` keys for debugging;
    downstream operators evaluate expressions against :attr:`binding`, so
    the flat payload is computed *lazily* on first access — most matches are
    filtered or projected away without anyone reading it.
    """

    __slots__ = ("binding",)

    def __init__(self, binding: Mapping[str, Event], time: TimeInterval):
        super().__init__(
            MATCH_EVENT_TYPE,
            time,
            None,
            derived_from=tuple(binding.values()),
        )
        object.__setattr__(self, "binding", dict(binding))
        # Unset the payload slot: the first attribute access falls through
        # to __getattr__, which materializes the flat payload in place.
        object.__delattr__(self, "_payload")

    def __getstate__(self) -> dict:
        # Event's state protocol doesn't know about the binding slot; ship
        # it explicitly so matches survive the process backend's object
        # lane (the flat payload is rematerialized lazily on the far side).
        state = super().__getstate__()
        state["binding"] = self.binding
        return state

    def __setstate__(self, state: dict) -> None:
        binding = state.pop("binding")
        super().__setstate__(state)
        object.__setattr__(self, "binding", dict(binding))

    def __getattr__(self, name: str) -> Any:
        if name != "_payload":
            raise AttributeError(name)
        payload: dict[str, Any] = {}
        for var, event in self.binding.items():
            prefix = f"{var}." if var else ""
            for attr_name in event.attributes():
                payload[f"{prefix}{attr_name}"] = event[attr_name]
        object.__setattr__(self, "_payload", payload)
        return payload


def binding_of(event: Event) -> dict[str, Event]:
    """The evaluation binding of an event: its match binding or itself."""
    if isinstance(event, MatchEvent):
        return event.binding
    return {SELF_VAR: event}


# --------------------------------------------------------------------------
# Pattern specifications
# --------------------------------------------------------------------------


class PatternSpec:
    """Base class for pattern syntax trees."""

    def variables(self) -> tuple[str, ...]:
        raise NotImplementedError


@dataclass(frozen=True)
class EventMatch(PatternSpec):
    """``EventType Var?`` — match any event of the given type."""

    type_name: str
    var: str = SELF_VAR

    def variables(self) -> tuple[str, ...]:
        return (self.var,)

    def __str__(self) -> str:
        return f"{self.type_name} {self.var}".rstrip()


@dataclass(frozen=True)
class NegatedSpec(PatternSpec):
    """``NOT EventType Var?`` with an optional guard and time bound.

    ``guard`` is a predicate over the negated variable and the positive
    variables of the enclosing sequence; a negated event only *blocks* a
    match if the guard is satisfied.  ``within`` bounds trailing negation:
    the match is emitted once ``within`` time units elapse after the last
    positive event with no blocking event observed.
    """

    inner: EventMatch
    guard: Expr | None = None
    within: TimePoint | None = None

    def variables(self) -> tuple[str, ...]:
        return self.inner.variables()

    def __str__(self) -> str:
        return f"NOT {self.inner}"


@dataclass(frozen=True)
class Sequence(PatternSpec):
    """``SEQ(...)`` — ordered composition of matches and negations."""

    elements: tuple[PatternSpec, ...]

    def __post_init__(self) -> None:
        if not self.elements:
            raise PlanError("SEQ requires at least one element")
        if not _has_positive(self):
            raise PlanError("SEQ requires at least one positive element")
        seen: set[str] = set()
        for var in self.variables():
            if var and var in seen:
                raise PlanError(f"duplicate pattern variable: {var!r}")
            seen.add(var)

    def variables(self) -> tuple[str, ...]:
        names: list[str] = []
        for element in self.elements:
            names.extend(element.variables())
        return tuple(names)

    @property
    def positives(self) -> tuple[EventMatch, ...]:
        return tuple(e for e in self.elements if isinstance(e, EventMatch))

    def validate_flat(self) -> None:
        """Check the invariants evaluation relies on (flat, has a positive)."""
        for element in self.elements:
            if isinstance(element, Sequence):
                raise PlanError(
                    "nested SEQ must be flattened before plan construction"
                )
        if not any(isinstance(e, EventMatch) for e in self.elements):
            raise PlanError("SEQ requires at least one positive element")

    def __str__(self) -> str:
        inner = ", ".join(str(e) for e in self.elements)
        return f"SEQ({inner})"


def _has_positive(spec: PatternSpec) -> bool:
    if isinstance(spec, EventMatch):
        return True
    if isinstance(spec, NegatedSpec):
        return False
    assert isinstance(spec, Sequence)
    return any(_has_positive(element) for element in spec.elements)


def flatten_sequence(spec: PatternSpec) -> PatternSpec:
    """Flatten nested SEQ nodes produced by the parser into one Sequence."""
    if not isinstance(spec, Sequence):
        return spec
    flat: list[PatternSpec] = []
    for element in spec.elements:
        element = flatten_sequence(element)
        if isinstance(element, Sequence):
            flat.extend(element.elements)
        else:
            flat.append(element)
    return Sequence(tuple(flat))


# --------------------------------------------------------------------------
# Incremental evaluation state
# --------------------------------------------------------------------------


@dataclass
class _Partial:
    """A partial match: bindings for the first ``k`` positive elements."""

    binding: dict[str, Event]
    next_index: int  # index into the positive-element list
    last_time: TimePoint  # timestamp of the most recent bound event


@dataclass
class _PendingMatch:
    """A completed match awaiting a trailing-negation deadline."""

    binding: dict[str, Event]
    deadline: TimePoint
    blocked: bool = False


@dataclass
class _SequencePlan:
    """Pre-analyzed structure of a Sequence: negations between positives."""

    positives: tuple[EventMatch, ...]
    #: ``gap_negations[i]`` lists negations between positive ``i-1`` and
    #: positive ``i``; index 0 holds leading negations.
    gap_negations: tuple[tuple[NegatedSpec, ...], ...]
    trailing: tuple[NegatedSpec, ...]


def _analyze(sequence: Sequence) -> _SequencePlan:
    positives: list[EventMatch] = []
    gaps: list[list[NegatedSpec]] = [[]]
    for element in sequence.elements:
        if isinstance(element, EventMatch):
            positives.append(element)
            gaps.append([])
        else:
            assert isinstance(element, NegatedSpec)
            gaps[-1].append(element)
    trailing = tuple(gaps.pop())
    for negation in trailing:
        if negation.within is None:
            raise PlanError(
                f"trailing negation {negation} needs an explicit 'within' "
                "time bound (Section 4.1: a negated event ending a sequence "
                "requires a temporal constraint)"
            )
    return _SequencePlan(
        positives=tuple(positives),
        gap_negations=tuple(tuple(g) for g in gaps),
        trailing=trailing,
    )


class PatternOperator(Operator):
    """The CAESAR pattern operator ``P``.

    Parameters
    ----------
    spec:
        The pattern to evaluate (:class:`EventMatch` or :class:`Sequence`).
    retention:
        Time horizon for partial matches and negation history.  Events and
        partials older than ``now - retention`` are expired; this bounds both
        memory and the lookback of leading negation.
    """

    unit_cost = 2.0

    def __init__(self, spec: PatternSpec, *, retention: TimePoint = 300):
        spec = flatten_sequence(spec)
        super().__init__(f"P[{spec}]")
        if retention <= 0:
            raise PlanError(f"retention must be positive, got {retention}")
        self.spec = spec
        self.retention = retention
        if isinstance(spec, Sequence):
            spec.validate_flat()
            self._plan: _SequencePlan | None = _analyze(spec)
        elif isinstance(spec, EventMatch):
            self._plan = None
        else:
            raise PlanError(f"unsupported pattern spec: {spec!r}")
        self._negated_types: set[str] = set()
        if self._plan is not None:
            for gap in self._plan.gap_negations:
                self._negated_types.update(n.inner.type_name for n in gap)
            self._negated_types.update(
                n.inner.type_name for n in self._plan.trailing
            )
            # compile negation guards at plan-build time (memoized on the
            # expression nodes, so shared guards compile once)
            for gap in self._plan.gap_negations:
                for negation in gap:
                    if negation.guard is not None:
                        negation.guard.compile()
            for negation in self._plan.trailing:
                if negation.guard is not None:
                    negation.guard.compile()
        self._history: dict[str, deque[Event]] = {
            t: deque() for t in self._negated_types
        }
        #: partial matches indexed by the *next positive type* they wait
        #: for — an incoming event only touches the partials it can extend
        self._partials_by_next: dict[str, list[_Partial]] = {}
        if self._plan is not None:
            for positive in self._plan.positives:
                self._partials_by_next.setdefault(positive.type_name, [])
        self._pending: list[_PendingMatch] = []
        self._now: TimePoint = 0
        #: the value of ``_now`` the last horizon expiry ran at; expiry is
        #: amortized to time advances instead of running per event
        self._expired_at: TimePoint = float("-inf")

    # ------------------------------------------------------------------
    # state management (context history / garbage collection hooks)
    # ------------------------------------------------------------------

    def _partial_count(self) -> int:
        return sum(len(bucket) for bucket in self._partials_by_next.values())

    def _iter_partials(self) -> Iterable[_Partial]:
        for bucket in self._partials_by_next.values():
            yield from bucket

    def _add_partial(self, partial: _Partial) -> None:
        assert self._plan is not None
        next_type = self._plan.positives[partial.next_index].type_name
        self._partials_by_next[next_type].append(partial)

    def state_size(self) -> int:
        """Number of partial matches, pending matches and history events."""
        history = sum(len(d) for d in self._history.values())
        return self._partial_count() + len(self._pending) + history

    def reset_state(self) -> None:
        for bucket in self._partials_by_next.values():
            bucket.clear()
        self._pending.clear()
        for history in self._history.values():
            history.clear()

    def snapshot_state(self) -> dict[str, Any]:
        """Copy the mutable state (used by the context history store).

        Partials are stored as one flat list (the pre-index snapshot
        format); :meth:`restore_state` re-buckets them by next type.
        """
        return {
            "partials": [
                _Partial(dict(p.binding), p.next_index, p.last_time)
                for p in self._iter_partials()
            ],
            "pending": [
                _PendingMatch(dict(p.binding), p.deadline, p.blocked)
                for p in self._pending
            ],
            "history": {t: deque(d) for t, d in self._history.items()},
            "now": self._now,
        }

    def restore_state(self, snapshot: Mapping[str, Any]) -> None:
        """Restore state saved by :meth:`snapshot_state`.

        The snapshot is copied, so it can be restored any number of times
        (e.g. replaying from one checkpoint repeatedly).
        """
        for bucket in self._partials_by_next.values():
            bucket.clear()
        for p in snapshot["partials"]:
            self._add_partial(_Partial(dict(p.binding), p.next_index, p.last_time))
        self._pending = [
            _PendingMatch(dict(p.binding), p.deadline, p.blocked)
            for p in snapshot["pending"]
        ]
        self._history = {t: deque(d) for t, d in snapshot["history"].items()}
        self._now = snapshot["now"]
        self._expired_at = float("-inf")

    def expire_state_before(self, t: TimePoint) -> int:
        dropped = 0
        for bucket in self._partials_by_next.values():
            kept = [p for p in bucket if p.last_time >= t]
            dropped += len(bucket) - len(kept)
            bucket[:] = kept
        for history in self._history.values():
            while history and history[0].timestamp < t:
                history.popleft()
                dropped += 1
        return dropped

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def process(self, events: list[Event], ctx: ExecutionContext) -> list[Event]:
        out: list[Event] = []
        for event in events:
            out.extend(self._consume(event))
        cost = self.unit_cost * len(events) + 0.1 * self._partial_count()
        self._account(len(events), len(out), cost)
        return out

    def on_time_advance(self, now: TimePoint, ctx: ExecutionContext) -> list[Event]:
        self._now = max(self._now, now)
        self._expire(now)
        return self._flush_pending(now)

    def _consume(self, event: Event) -> list[Event]:
        timestamp = event.timestamp
        if timestamp > self._now:
            self._now = timestamp
        if self._plan is None:
            return self._match_single(event)
        emitted: list[Event] = []
        # Negated-type events may block pending trailing-negation matches.
        if event.type_name in self._negated_types:
            self._block_pending(event)
            self._history[event.type_name].append(event)
        # Horizon expiry is idempotent at a fixed ``_now``, so it only needs
        # to run when time advanced — or when a late event arrives, which
        # the per-event expiry used to drop from history immediately.
        if self._now > self._expired_at or timestamp < self._now:
            self._expire_horizon()
        emitted.extend(self._advance_partials(event))
        emitted.extend(self._flush_pending(self._now))
        return emitted

    def _match_single(self, event: Event) -> list[Event]:
        assert isinstance(self.spec, EventMatch)
        if event.type_name != self.spec.type_name:
            return []
        return [MatchEvent({self.spec.var: event}, event.time)]

    def _advance_partials(self, event: Event) -> list[Event]:
        assert self._plan is not None
        plan = self._plan
        timestamp = event.timestamp
        # Only the partials waiting for this event's type can extend; the
        # type index makes this O(matching) instead of O(all partials).
        bucket = self._partials_by_next.get(event.type_name)
        if bucket:
            candidates = [p for p in bucket if timestamp > p.last_time]
        else:
            candidates = []
        # A fresh partial if the event matches the first positive element.
        # ``-inf`` means "no previous event": any timestamp (including
        # negative ones) may start a sequence.
        if plan.positives[0].type_name == event.type_name:
            candidates.append(_Partial({}, 0, float("-inf")))
        emitted: list[Event] = []
        last_index = len(plan.positives) - 1
        for partial in candidates:
            index = partial.next_index
            binding = dict(partial.binding)
            binding[plan.positives[index].var] = event
            if not self._gap_clear(plan, index, binding, partial.last_time, event):
                continue
            extended = _Partial(binding, index + 1, timestamp)
            if index == last_index:
                emitted.extend(self._complete(plan, extended))
            else:
                self._add_partial(extended)
        return emitted

    def _gap_clear(
        self,
        plan: _SequencePlan,
        index: int,
        binding: dict[str, Event],
        previous_time: TimePoint,
        event: Event,
    ) -> bool:
        """Check the negations between positive ``index-1`` and ``index``.

        For leading negation (``index == 0``) the forbidden interval is the
        retention horizon up to the event; otherwise it is strictly between
        the two positive events.
        """
        for negation in plan.gap_negations[index]:
            low = previous_time if index > 0 else event.timestamp - self.retention
            for blocked in self._history[negation.inner.type_name]:
                t = blocked.timestamp
                if index > 0 and not (low < t < event.timestamp):
                    continue
                if index == 0 and not (low <= t < event.timestamp):
                    continue
                if blocked is event:
                    continue
                if self._guard_holds(negation, blocked, binding):
                    return False
        return True

    def _guard_holds(
        self, negation: NegatedSpec, blocked: Event, binding: dict[str, Event]
    ) -> bool:
        if negation.guard is None:
            return True
        guard_binding = dict(binding)
        guard_binding[negation.inner.var] = blocked
        try:
            # compiled (and memoized) at plan-build time in __init__
            return bool(negation.guard.compile()(guard_binding))
        except ExpressionError:
            return False

    def _complete(self, plan: _SequencePlan, partial: _Partial) -> list[Event]:
        if plan.trailing:
            deadline = partial.last_time + min(
                n.within for n in plan.trailing if n.within is not None
            )
            self._pending.append(_PendingMatch(partial.binding, deadline))
            return []
        return [self._emit(partial.binding)]

    def _emit(self, binding: dict[str, Event]) -> MatchEvent:
        time = None
        for event in binding.values():
            time = event.time if time is None else time.span(event.time)
        assert time is not None
        return MatchEvent(binding, time)

    def _block_pending(self, event: Event) -> None:
        assert self._plan is not None
        for pending in self._pending:
            if pending.blocked:
                continue
            last_time = max(e.timestamp for e in pending.binding.values())
            if not (last_time < event.timestamp <= pending.deadline):
                continue
            for negation in self._plan.trailing:
                if negation.inner.type_name != event.type_name:
                    continue
                if self._guard_holds(negation, event, pending.binding):
                    pending.blocked = True
                    break

    def _flush_pending(self, now: TimePoint) -> list[Event]:
        if not self._pending:
            return []
        emitted: list[Event] = []
        remaining: list[_PendingMatch] = []
        for pending in self._pending:
            if pending.blocked:
                continue
            if now > pending.deadline:
                emitted.append(self._emit(pending.binding))
            else:
                remaining.append(pending)
        self._pending = remaining
        return emitted

    def _expire(self, now: TimePoint) -> None:
        self._now = max(self._now, now)

    def _expire_horizon(self) -> None:
        self._expired_at = self._now
        horizon = self._now - self.retention
        if horizon <= 0:
            return
        for bucket in self._partials_by_next.values():
            bucket[:] = [p for p in bucket if p.last_time >= horizon]
        for history in self._history.values():
            while history and history[0].timestamp < horizon:
                history.popleft()
