"""Windowed aggregation operator (library extension).

The paper's context deriving conditions are aggregates — "over 50 cars per
minute move with an average speed less than 40 mph" (Section 1) — which its
CAESAR prototype, like every Linear Road implementation, computes in a
statistics stage below the event queries.  This module provides that stage
as a first-class operator: :class:`AggregateOperator` evaluates tumbling-
window aggregates (count, distinct count, sum, avg, min, max — optionally
predicate-filtered) grouped by key attributes, and emits one derived event
per group per window.

It composes with the rest of the algebra: place it below the deriving
queries (e.g. via ``CaesarEngine(preprocessors=...)``) and the queries
consume its output exactly like any other event type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.algebra.expressions import Expr, binding_from_event
from repro.algebra.operators import ExecutionContext, Operator
from repro.errors import ExpressionError, PlanError
from repro.events.event import Event
from repro.events.timebase import TimeInterval, TimePoint
from repro.events.types import EventType

#: Supported aggregate function names.  This is the single registry both
#: aggregate surfaces validate against: the windowed preprocessing operator
#: below and the online SEQ-match aggregation of
#: :mod:`repro.algebra.seq_aggregate`.
AGGREGATE_FUNCTIONS = (
    "count",
    "count_distinct",
    "sum",
    "avg",
    "min",
    "max",
)

#: The subset computable incrementally over SEQ matches.  ``count_distinct``
#: is excluded: distinct sets are not mergeable into the constant-size
#: per-stage summaries the online propagation carries.
MATCH_AGGREGATE_FUNCTIONS = ("count", "sum", "avg", "min", "max")


@dataclass(frozen=True)
class AggregateFunction:
    """One aggregate column: ``name = func(attribute) [WHERE predicate]``.

    ``attribute`` may be None for ``count``.  ``predicate`` restricts which
    events contribute (e.g. stopped-car count: ``count(vid) WHERE speed = 0``).
    """

    name: str
    func: str
    attribute: str | None = None
    predicate: Expr | None = None

    def __post_init__(self) -> None:
        if self.func not in AGGREGATE_FUNCTIONS:
            raise PlanError(
                f"unknown aggregate function {self.func!r}; expected one of "
                f"{AGGREGATE_FUNCTIONS}"
            )
        if self.func != "count" and self.attribute is None:
            raise PlanError(
                f"aggregate {self.name!r}: {self.func} needs an attribute"
            )


@dataclass(frozen=True)
class MatchAggregate:
    """One DERIVE aggregate column over SEQ matches: ``func(var.attr)``.

    ``name`` is the output attribute; ``var``/``attribute`` locate the
    aggregated value in the match binding (both ``None`` for ``count(*)``,
    whose value is the number of matches).  Validated against the same
    :data:`AGGREGATE_FUNCTIONS` registry as :class:`AggregateFunction`,
    restricted to :data:`MATCH_AGGREGATE_FUNCTIONS`.
    """

    name: str
    func: str
    var: str | None = None
    attribute: str | None = None

    def __post_init__(self) -> None:
        if self.func not in AGGREGATE_FUNCTIONS:
            raise PlanError(
                f"unknown aggregate function {self.func!r}; expected one of "
                f"{AGGREGATE_FUNCTIONS}"
            )
        if self.func not in MATCH_AGGREGATE_FUNCTIONS:
            raise PlanError(
                f"aggregate {self.name!r}: {self.func} cannot be computed "
                f"incrementally over SEQ matches; expected one of "
                f"{MATCH_AGGREGATE_FUNCTIONS}"
            )
        if self.func == "count":
            if self.attribute is not None:
                raise PlanError(
                    f"aggregate {self.name!r}: count over matches takes no "
                    "attribute (use COUNT(*))"
                )
        elif self.attribute is None:
            raise PlanError(
                f"aggregate {self.name!r}: {self.func} needs an attribute"
            )

    def __str__(self) -> str:
        if self.func == "count":
            return "COUNT(*)"
        target = f"{self.var}.{self.attribute}" if self.var else self.attribute
        return f"{self.func.upper()}({target})"


class _Accumulator:
    """Incremental state for all functions of one group in one window."""

    __slots__ = ("counts", "distincts", "sums", "mins", "maxs", "events", "_predicate_fns")

    def __init__(self, functions: tuple[AggregateFunction, ...]):
        self.counts = [0] * len(functions)
        self.distincts: list[set] = [set() for _ in functions]
        self.sums = [0.0] * len(functions)
        self.mins: list[Any] = [None] * len(functions)
        self.maxs: list[Any] = [None] * len(functions)
        self.events = 0
        # compiled once per accumulator; Expr.compile memoizes per node, so
        # accumulators sharing functions share the compiled closures too
        self._predicate_fns = tuple(
            f.predicate.compile() if f.predicate is not None else None
            for f in functions
        )

    def add(self, functions: tuple[AggregateFunction, ...], event: Event) -> None:
        self.events += 1
        binding = binding_from_event(event)
        for index, function in enumerate(functions):
            predicate_fn = self._predicate_fns[index]
            if predicate_fn is not None:
                try:
                    if not predicate_fn(binding):
                        continue
                except ExpressionError:
                    continue
            if function.attribute is None:
                self.counts[index] += 1
                continue
            if function.attribute not in event:
                continue
            value = event[function.attribute]
            self.counts[index] += 1
            if function.func == "count_distinct":
                self.distincts[index].add(value)
            elif function.func in ("sum", "avg"):
                self.sums[index] += value
            elif function.func == "min":
                current = self.mins[index]
                self.mins[index] = value if current is None else min(current, value)
            elif function.func == "max":
                current = self.maxs[index]
                self.maxs[index] = value if current is None else max(current, value)

    def result(self, index: int, function: AggregateFunction) -> Any:
        if function.func == "count":
            return self.counts[index]
        if function.func == "count_distinct":
            return len(self.distincts[index])
        if function.func == "sum":
            return self.sums[index]
        if function.func == "avg":
            count = self.counts[index]
            return self.sums[index] / count if count else 0.0
        if function.func == "min":
            return self.mins[index]
        return self.maxs[index]


class AggregateOperator(Operator):
    """Tumbling-window grouped aggregation.

    Parameters
    ----------
    input_type:
        Name of the event type to aggregate.
    output_type:
        Event type of the emitted aggregate events.  Each emitted event
        carries the group-by attributes, one attribute per aggregate
        function, and ``sec`` = the window's end timestamp.
    window:
        Tumbling window length in stream time units.
    group_by:
        Attributes forming the group key.
    functions:
        The aggregate columns.

    Windows are aligned at multiples of ``window``; window ``k`` covers
    ``[k·window, (k+1)·window)`` and flushes as soon as time reaches its
    end — either an input event with a later timestamp or an explicit
    :meth:`on_time_advance`.
    """

    unit_cost = 0.8

    def __init__(
        self,
        input_type: str,
        output_type: EventType,
        *,
        window: TimePoint,
        group_by: tuple[str, ...] = (),
        functions: tuple[AggregateFunction, ...] = (),
    ):
        if window <= 0:
            raise PlanError(f"aggregate window must be positive, got {window}")
        if not functions:
            raise PlanError("an aggregate needs at least one function")
        names = [f.name for f in functions] + list(group_by)
        if len(names) != len(set(names)):
            raise PlanError(f"duplicate aggregate output attributes: {names}")
        label = ", ".join(
            f"{f.name}={f.func}({f.attribute or '*'})" for f in functions
        )
        super().__init__(f"AGG[{output_type.name}({label})/{window}]")
        self.input_type = input_type
        self.output_type = output_type
        self.window = window
        self.group_by = tuple(group_by)
        self.functions = tuple(functions)
        #: {window_index: {group_key: accumulator}}
        self._windows: dict[int, dict[tuple, _Accumulator]] = {}
        self._flushed_through = -1  # all windows <= this index are emitted

    # ------------------------------------------------------------------

    def _window_index(self, t: TimePoint) -> int:
        return int(t // self.window)

    def _group_key(self, event: Event) -> tuple:
        return tuple(event.get(attribute) for attribute in self.group_by)

    def process(self, events: list[Event], ctx: ExecutionContext) -> list[Event]:
        out: list[Event] = []
        for event in events:
            if event.type_name == self.input_type:
                index = self._window_index(event.timestamp)
                if index > self._flushed_through:
                    groups = self._windows.setdefault(index, {})
                    key = self._group_key(event)
                    accumulator = groups.get(key)
                    if accumulator is None:
                        accumulator = _Accumulator(self.functions)
                        groups[key] = accumulator
                    accumulator.add(self.functions, event)
            out.extend(self._flush_before(event.timestamp))
        self._account(len(events), len(out), self.unit_cost * len(events))
        return out

    def on_time_advance(self, now: TimePoint, ctx: ExecutionContext) -> list[Event]:
        return self._flush_before(now)

    def _flush_before(self, t: TimePoint) -> list[Event]:
        """Emit every window that ended at or before time ``t``."""
        current = self._window_index(t)
        emitted: list[Event] = []
        ready = sorted(
            index for index in self._windows if index < current
        )
        for index in ready:
            groups = self._windows.pop(index)
            window_end = (index + 1) * self.window
            for key in sorted(groups, key=repr):
                accumulator = groups[key]
                payload: dict[str, Any] = dict(zip(self.group_by, key))
                payload["sec"] = window_end
                for position, function in enumerate(self.functions):
                    payload[function.name] = accumulator.result(
                        position, function
                    )
                emitted.append(
                    Event(
                        self.output_type,
                        TimeInterval.point(window_end),
                        payload,
                    )
                )
            self._flushed_through = max(self._flushed_through, index)
        return emitted

    # ------------------------------------------------------------------
    # state management
    # ------------------------------------------------------------------

    def state_size(self) -> int:
        return sum(len(groups) for groups in self._windows.values())

    def reset_state(self) -> None:
        self._windows.clear()

    def _copy_windows(
        self, windows: dict[int, dict[tuple, _Accumulator]]
    ) -> dict[int, dict[tuple, _Accumulator]]:
        copied_windows: dict[int, dict[tuple, _Accumulator]] = {}
        for index, groups in windows.items():
            copied: dict[tuple, _Accumulator] = {}
            for key, accumulator in groups.items():
                clone = _Accumulator(self.functions)
                clone.counts = list(accumulator.counts)
                clone.distincts = [set(s) for s in accumulator.distincts]
                clone.sums = list(accumulator.sums)
                clone.mins = list(accumulator.mins)
                clone.maxs = list(accumulator.maxs)
                clone.events = accumulator.events
                copied[key] = clone
            copied_windows[index] = copied
        return copied_windows

    def snapshot_state(self) -> dict:
        return {
            "windows": self._copy_windows(self._windows),
            "flushed_through": self._flushed_through,
        }

    def restore_state(self, snapshot: dict) -> None:
        self._windows = self._copy_windows(snapshot["windows"])
        self._flushed_through = snapshot["flushed_through"]

    def expire_state_before(self, t: TimePoint) -> int:
        horizon = self._window_index(t)
        stale = [index for index in self._windows if index < horizon - 1]
        dropped = 0
        for index in stale:
            dropped += len(self._windows.pop(index))
        return dropped
