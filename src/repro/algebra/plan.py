"""Query plans (Section 4.2): individual and combined.

An *individual* query plan is a bottom-up pipeline of algebra operators
translated from one event query per Table 1.  A *combined* query plan stitches
individual plans together: if one plan derives events that another consumes,
the first plan's output feeds the second (all plans in a combined plan belong
to the same context, by the paper's independence assumption in Section 3.3).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.algebra.context_ops import (
    ContextInitiation,
    ContextTermination,
    ContextWindowOperator,
)
from repro.algebra.operators import ExecutionContext, Operator, OperatorStats
from repro.algebra.pattern import EventMatch, NegatedSpec, PatternOperator
from repro.algebra.pattern import Sequence as SeqSpec
from repro.algebra.relational_ops import Filter, Projection
from repro.algebra.seq_aggregate import (
    MatchAggregateProjection,
    PatternAggregateOperator,
)
from repro.errors import PlanError
from repro.events.event import Event
from repro.events.timebase import TimePoint


def clone_operator(operator: Operator) -> Operator:
    """A fresh, stateless copy of an operator (same parameters, zero state).

    Operators outside the core algebra (e.g. the fault-injection wrappers
    of :mod:`repro.testing`) may provide their own ``clone()`` method,
    which takes precedence.
    """
    from repro.algebra.aggregate import AggregateOperator

    custom_clone = getattr(operator, "clone", None)
    if callable(custom_clone):
        return custom_clone()
    if isinstance(operator, AggregateOperator):
        return AggregateOperator(
            operator.input_type,
            operator.output_type,
            window=operator.window,
            group_by=operator.group_by,
            functions=operator.functions,
        )
    if isinstance(operator, ContextInitiation):
        return ContextInitiation(operator.context_name)
    if isinstance(operator, ContextTermination):
        return ContextTermination(operator.context_name)
    if isinstance(operator, ContextWindowOperator):
        return ContextWindowOperator(operator.context_name)
    if isinstance(operator, Filter):
        return Filter(operator.predicate)
    if isinstance(operator, Projection):
        return Projection(operator.event_type, operator.items)
    if isinstance(operator, PatternOperator):
        return PatternOperator(operator.spec, retention=operator.retention)
    if isinstance(operator, PatternAggregateOperator):
        return PatternAggregateOperator(
            operator.spec,
            operator.outputs,
            where=operator.where,
            retention=operator.retention,
        )
    if isinstance(operator, MatchAggregateProjection):
        return MatchAggregateProjection(operator.outputs)
    raise PlanError(f"cannot clone operator of type {type(operator).__name__}")


class QueryPlan:
    """An ordered operator pipeline for one event query.

    Operators are stored bottom-up: ``operators[0]`` receives the input
    stream.  Execution honours the suspension protocol — if an operator
    reports that the pipeline above it is suspended for this batch, the rest
    of the pipeline is skipped without touching any event (Section 5.2).
    """

    def __init__(
        self,
        operators: Sequence[Operator],
        *,
        name: str = "plan",
        context_name: str | None = None,
    ):
        if not operators:
            raise PlanError("a query plan needs at least one operator")
        self.operators = list(operators)
        self.name = name
        self.context_name = context_name
        self._input_types: set[str] | None = None

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def execute(self, events: list[Event], ctx: ExecutionContext) -> list[Event]:
        """Push a batch through the pipeline; returns the derived events."""
        current = events
        for index, operator in enumerate(self.operators):
            if operator.suspends_pipeline(ctx):
                operator.process(current, ctx)
                return []
            current = operator.process(current, ctx)
            if not current and not self._needs_time_signal(index + 1):
                return []
        return current

    def advance_time(self, now: TimePoint, ctx: ExecutionContext) -> list[Event]:
        """Propagate a time tick (for trailing-negation timeouts)."""
        current: list[Event] = []
        for operator in self.operators:
            if operator.suspends_pipeline(ctx):
                return []
            emitted = operator.on_time_advance(now, ctx)
            if current:
                current = operator.process(current, ctx)
            current = current + emitted
        return current

    def _needs_time_signal(self, start: int) -> bool:
        """True if an operator above ``start`` holds pending timed state."""
        for operator in self.operators[start:]:
            if isinstance(operator, PatternOperator) and operator._pending:
                return True
        return False

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def pattern_operators(self) -> list[PatternOperator]:
        return [op for op in self.operators if isinstance(op, PatternOperator)]

    @property
    def window_operators(self) -> list[ContextWindowOperator]:
        return [
            op for op in self.operators if isinstance(op, ContextWindowOperator)
        ]

    def input_types(self) -> set[str]:
        """Event type names the bottom-most pattern operator consumes.

        Cached after the first call — this sits on the per-batch dispatch
        path, and plan rewrites construct new :class:`QueryPlan` objects
        rather than mutating ``operators`` in place.
        """
        if self._input_types is None:
            types: set[str] = set()
            for operator in self.operators:
                if isinstance(operator, (PatternOperator, PatternAggregateOperator)):
                    types = _spec_types(operator.spec)
                    break
            self._input_types = types
        return self._input_types

    def output_type(self) -> str | None:
        """Name of the derived event type, if the plan derives exactly one."""
        for operator in reversed(self.operators):
            if isinstance(operator, Projection):
                return operator.event_type.name
            if isinstance(
                operator, (PatternAggregateOperator, MatchAggregateProjection)
            ):
                # A fused operator derives several types; producer routing in
                # combined plans only supports single-output plans, and fused
                # plans only run inside scheduled workloads.
                if len(operator.outputs) == 1:
                    return operator.outputs[0].event_type.name
                return None
        return None

    def total_cost_units(self) -> float:
        return sum(op.stats.cost_units for op in self.operators)

    def total_stats(self) -> OperatorStats:
        total = OperatorStats()
        for operator in self.operators:
            total.merge(operator.stats)
        return total

    def reset_stats(self) -> None:
        for operator in self.operators:
            operator.stats.reset()

    def reset_state(self) -> None:
        for operator in self.operators:
            operator.reset_state()

    def snapshot_state(self) -> list:
        """Per-operator state snapshots (None for stateless operators)."""
        return [operator.snapshot_state() for operator in self.operators]

    def restore_state(self, snapshots: list) -> None:
        if len(snapshots) != len(self.operators):
            raise PlanError(
                f"snapshot shape mismatch for plan {self.name!r}: "
                f"{len(snapshots)} entries for {len(self.operators)} operators"
            )
        for operator, snapshot in zip(self.operators, snapshots):
            if snapshot is not None:
                operator.restore_state(snapshot)

    def state_size(self) -> int:
        return sum(
            op.state_size()
            for op in self.operators
            if isinstance(op, (PatternOperator, PatternAggregateOperator))
        )

    def clone(self, *, name: str | None = None) -> "QueryPlan":
        """A fresh plan with the same operators and empty state."""
        return QueryPlan(
            [clone_operator(op) for op in self.operators],
            name=name or self.name,
            context_name=self.context_name,
        )

    def describe(self) -> str:
        """Multi-line plan printout, bottom operator last (as in Fig. 6)."""
        lines = [f"QueryPlan {self.name!r} (context={self.context_name}):"]
        for index, operator in enumerate(reversed(self.operators)):
            position = len(self.operators) - index
            lines.append(f"  {position}. {operator.name}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        ops = " -> ".join(op.name for op in self.operators)
        return f"<QueryPlan {self.name!r}: {ops}>"


def _spec_types(spec) -> set[str]:
    if isinstance(spec, EventMatch):
        return {spec.type_name}
    if isinstance(spec, NegatedSpec):
        return {spec.inner.type_name}
    if isinstance(spec, SeqSpec):
        types: set[str] = set()
        for element in spec.elements:
            types |= _spec_types(element)
        return types
    return set()


class CombinedQueryPlan:
    """Individual plans stitched by producer/consumer relationships.

    Plans are topologically ordered so that a plan deriving type ``T`` runs
    before every plan consuming ``T``.  Events derived by an inner plan are
    routed to downstream plans in the same batch (same application
    timestamp), matching the paper's combined plan of Fig. 6 where the
    ``NewTravelingCar`` plan feeds the ``TollNotification`` plan.
    """

    def __init__(
        self,
        plans: Iterable[QueryPlan],
        *,
        name: str = "combined",
        context_name: str | None = None,
    ):
        self.plans = self._topo_sort(list(plans))
        self.name = name
        self.context_name = context_name
        #: all event types any inner plan consumes (cached: plans are fixed)
        self._consumed_types: frozenset[str] = frozenset().union(
            *(plan.input_types() for plan in self.plans)
        )

    @staticmethod
    def _topo_sort(plans: list[QueryPlan]) -> list[QueryPlan]:
        producers: dict[str, QueryPlan] = {}
        for plan in plans:
            output = plan.output_type()
            if output is not None:
                if output in producers:
                    # Multiple producers of one type are allowed; order among
                    # them is preserved as given.
                    continue
                producers[output] = plan
        ordered: list[QueryPlan] = []
        visiting: set[int] = set()
        done: set[int] = set()

        def visit(plan: QueryPlan) -> None:
            key = id(plan)
            if key in done:
                return
            if key in visiting:
                raise PlanError(
                    f"cyclic derive/consume dependency involving {plan.name!r}"
                )
            visiting.add(key)
            for type_name in plan.input_types():
                producer = producers.get(type_name)
                if producer is not None and producer is not plan:
                    visit(producer)
            visiting.discard(key)
            done.add(key)
            ordered.append(plan)

        for plan in plans:
            visit(plan)
        return ordered

    def interest_set(self) -> frozenset[str]:
        """The input-type interest set: every event type a leaf pattern of
        an inner plan can consume.  A batch containing none of these types
        cannot change this combined plan's state or output, so the router
        may skip the plan entirely (interest-set suppression)."""
        return self._consumed_types

    def execute(self, events: list[Event], ctx: ExecutionContext) -> list[Event]:
        """Run the batch through all plans, routing derived events inward.

        Returns the events that no plan in this combined plan consumes —
        the combined plan's external output.
        """
        pool: list[Event] = list(events)
        outputs: list[Event] = []
        consumed_types = self._consumed_types
        for plan in self.plans:
            wanted = plan.input_types()
            batch = [e for e in pool if e.type_name in wanted]
            derived = plan.execute(batch, ctx)
            for event in derived:
                pool.append(event)
                if event.type_name not in consumed_types:
                    outputs.append(event)
        return outputs

    def advance_time(self, now: TimePoint, ctx: ExecutionContext) -> list[Event]:
        outputs: list[Event] = []
        consumed_types = self._consumed_types
        pool: list[Event] = []
        for plan in self.plans:
            wanted = plan.input_types()
            batch = [e for e in pool if e.type_name in wanted]
            derived = plan.advance_time(now, ctx)
            if batch:
                derived = derived + plan.execute(batch, ctx)
            for event in derived:
                pool.append(event)
                if event.type_name not in consumed_types:
                    outputs.append(event)
        return outputs

    def total_cost_units(self) -> float:
        return sum(plan.total_cost_units() for plan in self.plans)

    def reset_stats(self) -> None:
        for plan in self.plans:
            plan.reset_stats()

    def reset_state(self) -> None:
        for plan in self.plans:
            plan.reset_state()

    def snapshot_state(self) -> dict:
        """Per-plan state snapshots keyed by plan name."""
        return {plan.name: plan.snapshot_state() for plan in self.plans}

    def restore_state(self, snapshots: dict) -> None:
        for plan in self.plans:
            if plan.name in snapshots:
                plan.restore_state(snapshots[plan.name])

    def clone(self, *, name: str | None = None) -> "CombinedQueryPlan":
        return CombinedQueryPlan(
            [plan.clone() for plan in self.plans],
            name=name or self.name,
            context_name=self.context_name,
        )

    def __repr__(self) -> str:
        return f"<CombinedQueryPlan {self.name!r}: {len(self.plans)} plans>"
