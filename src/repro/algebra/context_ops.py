"""Context operators unique to the CAESAR algebra (Section 4.1).

* ``CI_c`` — context initiation: starts a context window ``w_c``, adds it to
  the set of current context windows and evicts the default window.
* ``CT_c`` — context termination: ends ``w_c``, removes it from the set and
  restores the default window if the set would become empty.
* ``CW_c`` — context window: passes through exactly the events that occur
  while ``w_c`` holds, and — crucially — *suspends the entire pipeline above
  it* otherwise (Section 5.2).

All three run in constant time per invocation: initiation/termination flip
one bit of the context bit vector, and the window operator reads one bit
(Section 5.1's cost analysis).
"""

from __future__ import annotations

from repro.algebra.operators import ExecutionContext, Operator
from repro.events.event import Event


class ContextInitiation(Operator):
    """``CI_c``: each input event initiates the context window ``w_c``.

    Initiation is idempotent — if ``w_c`` already holds, the window set is
    unchanged (Section 4.1's definition: "If ``w_c ∈ W`` then ``W' = W``").
    The input events are passed through unchanged so a deriving query can
    both raise a context and feed downstream plans.
    """

    unit_cost = 0.1  # one bit flip — constant, and cheap relative to matching

    def __init__(self, context_name: str):
        super().__init__(f"CI_{context_name}")
        self.context_name = context_name

    def process(self, events: list[Event], ctx: ExecutionContext) -> list[Event]:
        for event in events:
            ctx.windows.initiate(self.context_name, event.timestamp)
        self._account(len(events), len(events), self.unit_cost * len(events))
        return events


class ContextTermination(Operator):
    """``CT_c``: each input event terminates the context window ``w_c``.

    If the last user context window is removed, the default context window is
    restored (Section 4.1: "if the set becomes empty adds the default context
    window ``w_{c_d}``").
    """

    unit_cost = 0.1

    def __init__(self, context_name: str):
        super().__init__(f"CT_{context_name}")
        self.context_name = context_name

    def process(self, events: list[Event], ctx: ExecutionContext) -> list[Event]:
        for event in events:
            ctx.windows.terminate(self.context_name, event.timestamp)
        self._account(len(events), len(events), self.unit_cost * len(events))
        return events


class ContextWindowOperator(Operator):
    """``CW_c``: emit only events that occur during the window ``w_c``.

    When placed at the bottom of a plan (after push-down), an inactive
    context suspends every operator above: :meth:`suspends_pipeline` lets the
    plan driver skip the batch without touching a single event.  This is the
    paper's key distinction from predicate/traditional windows, which filter
    event-by-event while upstream operators busy-wait (Section 5.2).
    """

    unit_cost = 0.05  # a single bit-vector lookup per batch

    def __init__(self, context_name: str):
        super().__init__(f"CW_{context_name}")
        self.context_name = context_name

    def suspends_pipeline(self, ctx: ExecutionContext) -> bool:
        active = ctx.windows.is_active(self.context_name)
        if not active:
            self.stats.suspensions += 1
        return not active

    def process(self, events: list[Event], ctx: ExecutionContext) -> list[Event]:
        if ctx.windows.is_active(self.context_name):
            out = events
        else:
            out = []
        self._account(len(events), len(out), self.unit_cost)
        return out
