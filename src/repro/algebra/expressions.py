"""Expression trees for WHERE predicates (grammar ``Expr`` in Fig. 4).

The grammar admits constants, attribute references and binary operations
with arithmetic (``+ - * /``), comparison (``= ≠ > ≥ < ≤``) and logical
(``AND OR``) operators.  We add ``NOT`` as a convenience for baseline
engines that must fold negated context conditions into query predicates.

Expressions are evaluated against a *binding*: a mapping from pattern
variable names to events.  An attribute reference ``p2.vid`` looks up the
event bound to ``p2`` and reads its ``vid`` attribute; an unqualified
reference ``vid`` reads the attribute from the binding's sole event.

Two evaluation paths exist.  :meth:`Expr.evaluate` walks the tree with
isinstance dispatch — the readable reference implementation.
:meth:`Expr.compile` lowers the tree once into nested Python closures, so
the per-event cost on the hot path is plain function calls with no
re-interpretation; operators compile their predicates at plan-build time.
The two are equivalent, including :class:`ExpressionError` behaviour
(``tests/algebra/test_expressions.py`` asserts the parity on random trees).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.errors import ExpressionError
from repro.events.event import Event

Binding = Mapping[str, Event]

#: The single event bound when a predicate is evaluated over one event with
#: no explicit pattern variable (e.g. a plain filter on a stream).
SELF_VAR = ""


def binding_from_event(event: Event, var: str = SELF_VAR) -> dict[str, Event]:
    """Build a one-event binding for evaluating per-event predicates."""
    return {var: event}


#: Row function over a tuple of attribute values (see ``compile_batch``).
RowFn = Callable[[tuple], Any]

#: Memoization sentinel: ``None`` is a valid ``compile_batch`` result.
_BATCH_UNSET = object()


class Expr:
    """Base class of all expression nodes."""

    def evaluate(self, binding: Binding) -> Any:
        raise NotImplementedError

    def compile(self) -> Callable[[Binding], Any]:
        """Lower the tree to nested closures; equivalent to :meth:`evaluate`.

        The result is memoized on the node, so repeated calls (e.g. the same
        shared predicate referenced by several operators) compile once.
        """
        compiled = self.__dict__.get("_compiled")
        if compiled is None:
            compiled = self._compile()
            object.__setattr__(self, "_compiled", compiled)
        return compiled

    def _compile(self) -> Callable[[Binding], Any]:
        raise NotImplementedError

    def compile_batch(self) -> "tuple[tuple[str, ...], RowFn] | None":
        """Lower to batch mode: a row function over attribute columns.

        Returns ``(attrs, rowfn)`` where ``attrs`` is the sorted tuple of
        attribute names the expression reads and ``rowfn`` maps one row —
        a tuple of values positionally aligned with ``attrs`` — to the
        expression's value.  A columnar batch evaluates the predicate by
        zipping the referenced columns row-wise, never building a binding
        dict or touching an event object; :class:`ExpressionError`
        semantics (type errors, division by zero) match :meth:`compile`
        exactly, and a segment lacking a referenced attribute corresponds
        to the per-event missing-attribute error (every row errors).

        Returns ``None`` for expressions that reference named pattern
        variables — columnar batches carry plain events, bound as the
        anonymous ``SELF_VAR``, so only self-variable predicates have a
        column representation.  Memoized like :meth:`compile`.
        """
        cached = self.__dict__.get("_compiled_batch", _BATCH_UNSET)
        if cached is _BATCH_UNSET:
            if self.variables() - {SELF_VAR}:
                cached = None
            else:
                attrs = tuple(sorted({a for _, a in self.attributes()}))
                index = {attr: i for i, attr in enumerate(attrs)}
                cached = (attrs, self._compile_row(index))
            object.__setattr__(self, "_compiled_batch", cached)
        return cached

    def _compile_row(self, index: Mapping[str, int]) -> RowFn:
        raise NotImplementedError

    def attributes(self) -> set[tuple[str, str]]:
        """All ``(variable, attribute)`` pairs the expression reads."""
        raise NotImplementedError

    def variables(self) -> set[str]:
        """All pattern variables the expression references."""
        return {var for var, _ in self.attributes()}

    # -- operator sugar so predicates can be written in plain Python ------

    def __and__(self, other: "Expr") -> "And":
        return And(self, _as_expr(other))

    def __or__(self, other: "Expr") -> "Or":
        return Or(self, _as_expr(other))

    def __invert__(self) -> "Not":
        return Not(self)

    def __add__(self, other: Any) -> "BinaryOp":
        return BinaryOp("+", self, _as_expr(other))

    def __sub__(self, other: Any) -> "BinaryOp":
        return BinaryOp("-", self, _as_expr(other))

    def __mul__(self, other: Any) -> "BinaryOp":
        return BinaryOp("*", self, _as_expr(other))

    def __truediv__(self, other: Any) -> "BinaryOp":
        return BinaryOp("/", self, _as_expr(other))

    def eq(self, other: Any) -> "BinaryOp":
        return BinaryOp("=", self, _as_expr(other))

    def ne(self, other: Any) -> "BinaryOp":
        return BinaryOp("!=", self, _as_expr(other))

    def gt(self, other: Any) -> "BinaryOp":
        return BinaryOp(">", self, _as_expr(other))

    def ge(self, other: Any) -> "BinaryOp":
        return BinaryOp(">=", self, _as_expr(other))

    def lt(self, other: Any) -> "BinaryOp":
        return BinaryOp("<", self, _as_expr(other))

    def le(self, other: Any) -> "BinaryOp":
        return BinaryOp("<=", self, _as_expr(other))


def _as_expr(value: Any) -> Expr:
    if isinstance(value, Expr):
        return value
    return Constant(value)


@dataclass(frozen=True)
class Constant(Expr):
    """A literal value."""

    value: Any

    def evaluate(self, binding: Binding) -> Any:
        return self.value

    def _compile(self) -> Callable[[Binding], Any]:
        value = self.value
        return lambda binding: value

    def _compile_row(self, index: Mapping[str, int]) -> "RowFn":
        value = self.value
        return lambda row: value

    def attributes(self) -> set[tuple[str, str]]:
        return set()

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class AttrRef(Expr):
    """A reference ``var.attr`` (or bare ``attr`` with ``var == SELF_VAR``)."""

    var: str
    attr: str

    def evaluate(self, binding: Binding) -> Any:
        event = binding.get(self.var)
        if event is None:
            if self.var == SELF_VAR and len(binding) == 1:
                event = next(iter(binding.values()))
            else:
                raise ExpressionError(
                    f"no event bound to variable {self.var or '<self>'!r}; "
                    f"bound: {sorted(binding)}"
                )
        if self.attr not in event:
            raise ExpressionError(
                f"event {event.type_name!r} bound to {self.var or '<self>'!r} "
                f"has no attribute {self.attr!r}"
            )
        return event[self.attr]

    def _compile(self) -> Callable[[Binding], Any]:
        var, attr_name = self.var, self.attr

        def run(binding: Binding) -> Any:
            event = binding.get(var)
            if event is None:
                if var == SELF_VAR and len(binding) == 1:
                    event = next(iter(binding.values()))
                else:
                    raise ExpressionError(
                        f"no event bound to variable {var or '<self>'!r}; "
                        f"bound: {sorted(binding)}"
                    )
            # Read the payload mapping directly: one dict lookup instead of
            # a __contains__ call followed by a __getitem__ call.
            try:
                return event._payload[attr_name]
            except KeyError:
                raise ExpressionError(
                    f"event {event.type_name!r} bound to {var or '<self>'!r} "
                    f"has no attribute {attr_name!r}"
                ) from None

        return run

    def _compile_row(self, index: Mapping[str, int]) -> "RowFn":
        position = index[self.attr]
        return lambda row: row[position]

    def attributes(self) -> set[tuple[str, str]]:
        return {(self.var, self.attr)}

    def __str__(self) -> str:
        return f"{self.var}.{self.attr}" if self.var else self.attr


_ARITHMETIC: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}

_COMPARISON: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}


@dataclass(frozen=True)
class BinaryOp(Expr):
    """An arithmetic or comparison operation on two sub-expressions."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _ARITHMETIC and self.op not in _COMPARISON:
            raise ExpressionError(f"unknown binary operator: {self.op!r}")

    def evaluate(self, binding: Binding) -> Any:
        left = self.left.evaluate(binding)
        right = self.right.evaluate(binding)
        func = _ARITHMETIC.get(self.op) or _COMPARISON[self.op]
        try:
            return func(left, right)
        except TypeError as exc:
            raise ExpressionError(
                f"cannot apply {self.op!r} to {left!r} and {right!r}"
            ) from exc
        except ZeroDivisionError as exc:
            raise ExpressionError(f"division by zero in {self}") from exc

    def _compile(self) -> Callable[[Binding], Any]:
        op = self.op
        func = _ARITHMETIC.get(op) or _COMPARISON[op]
        label = str(self)
        # Constant operands are folded into the closure — comparisons
        # against literals (the most common predicate shape) cost one
        # sub-expression call instead of two.
        if isinstance(self.right, Constant):
            left = self.left.compile()
            b_const = self.right.value

            def run(binding: Binding) -> Any:
                a = left(binding)
                try:
                    return func(a, b_const)
                except TypeError as exc:
                    raise ExpressionError(
                        f"cannot apply {op!r} to {a!r} and {b_const!r}"
                    ) from exc
                except ZeroDivisionError as exc:
                    raise ExpressionError(
                        f"division by zero in {label}"
                    ) from exc

            return run
        if isinstance(self.left, Constant):
            a_const = self.left.value
            right = self.right.compile()

            def run(binding: Binding) -> Any:
                b = right(binding)
                try:
                    return func(a_const, b)
                except TypeError as exc:
                    raise ExpressionError(
                        f"cannot apply {op!r} to {a_const!r} and {b!r}"
                    ) from exc
                except ZeroDivisionError as exc:
                    raise ExpressionError(
                        f"division by zero in {label}"
                    ) from exc

            return run
        left = self.left.compile()
        right = self.right.compile()

        def run(binding: Binding) -> Any:
            a = left(binding)
            b = right(binding)
            try:
                return func(a, b)
            except TypeError as exc:
                raise ExpressionError(
                    f"cannot apply {op!r} to {a!r} and {b!r}"
                ) from exc
            except ZeroDivisionError as exc:
                raise ExpressionError(f"division by zero in {label}") from exc

        return run

    def _compile_row(self, index: Mapping[str, int]) -> "RowFn":
        # Mirrors ``_compile`` — same constant folding, same error mapping
        # — over positional rows instead of binding dicts.
        op = self.op
        func = _ARITHMETIC.get(op) or _COMPARISON[op]
        label = str(self)
        if isinstance(self.right, Constant):
            left = self.left._compile_row(index)
            b_const = self.right.value

            def run(row: tuple) -> Any:
                a = left(row)
                try:
                    return func(a, b_const)
                except TypeError as exc:
                    raise ExpressionError(
                        f"cannot apply {op!r} to {a!r} and {b_const!r}"
                    ) from exc
                except ZeroDivisionError as exc:
                    raise ExpressionError(
                        f"division by zero in {label}"
                    ) from exc

            return run
        if isinstance(self.left, Constant):
            a_const = self.left.value
            right = self.right._compile_row(index)

            def run(row: tuple) -> Any:
                b = right(row)
                try:
                    return func(a_const, b)
                except TypeError as exc:
                    raise ExpressionError(
                        f"cannot apply {op!r} to {a_const!r} and {b!r}"
                    ) from exc
                except ZeroDivisionError as exc:
                    raise ExpressionError(
                        f"division by zero in {label}"
                    ) from exc

            return run
        left = self.left._compile_row(index)
        right = self.right._compile_row(index)

        def run(row: tuple) -> Any:
            a = left(row)
            b = right(row)
            try:
                return func(a, b)
            except TypeError as exc:
                raise ExpressionError(
                    f"cannot apply {op!r} to {a!r} and {b!r}"
                ) from exc
            except ZeroDivisionError as exc:
                raise ExpressionError(f"division by zero in {label}") from exc

        return run

    def attributes(self) -> set[tuple[str, str]]:
        return self.left.attributes() | self.right.attributes()

    @property
    def is_comparison(self) -> bool:
        return self.op in _COMPARISON

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class And(Expr):
    """Logical conjunction with short-circuit evaluation."""

    left: Expr
    right: Expr

    def evaluate(self, binding: Binding) -> bool:
        return bool(self.left.evaluate(binding)) and bool(
            self.right.evaluate(binding)
        )

    def _compile(self) -> Callable[[Binding], bool]:
        left = self.left.compile()
        right = self.right.compile()
        return lambda binding: bool(left(binding)) and bool(right(binding))

    def _compile_row(self, index: Mapping[str, int]) -> "RowFn":
        left = self.left._compile_row(index)
        right = self.right._compile_row(index)
        return lambda row: bool(left(row)) and bool(right(row))

    def attributes(self) -> set[tuple[str, str]]:
        return self.left.attributes() | self.right.attributes()

    def __str__(self) -> str:
        return f"({self.left} AND {self.right})"


@dataclass(frozen=True)
class Or(Expr):
    """Logical disjunction with short-circuit evaluation."""

    left: Expr
    right: Expr

    def evaluate(self, binding: Binding) -> bool:
        return bool(self.left.evaluate(binding)) or bool(
            self.right.evaluate(binding)
        )

    def _compile(self) -> Callable[[Binding], bool]:
        left = self.left.compile()
        right = self.right.compile()
        return lambda binding: bool(left(binding)) or bool(right(binding))

    def _compile_row(self, index: Mapping[str, int]) -> "RowFn":
        left = self.left._compile_row(index)
        right = self.right._compile_row(index)
        return lambda row: bool(left(row)) or bool(right(row))

    def attributes(self) -> set[tuple[str, str]]:
        return self.left.attributes() | self.right.attributes()

    def __str__(self) -> str:
        return f"({self.left} OR {self.right})"


@dataclass(frozen=True)
class Not(Expr):
    """Logical negation (library extension; not part of Fig. 4's grammar)."""

    operand: Expr

    def evaluate(self, binding: Binding) -> bool:
        return not bool(self.operand.evaluate(binding))

    def _compile(self) -> Callable[[Binding], bool]:
        operand = self.operand.compile()
        return lambda binding: not bool(operand(binding))

    def _compile_row(self, index: Mapping[str, int]) -> "RowFn":
        operand = self.operand._compile_row(index)
        return lambda row: not bool(operand(row))

    def attributes(self) -> set[tuple[str, str]]:
        return self.operand.attributes()

    def __str__(self) -> str:
        return f"(NOT {self.operand})"


def attr(name: str, var: str = SELF_VAR) -> AttrRef:
    """Shorthand: ``attr("vid", "p2")`` is the reference ``p2.vid``."""
    return AttrRef(var, name)


def const(value: Any) -> Constant:
    """Shorthand for :class:`Constant`."""
    return Constant(value)


def conjuncts(expr: Expr) -> list[Expr]:
    """Flatten a conjunction into its top-level conjuncts."""
    if isinstance(expr, And):
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def conjoin(exprs: list[Expr]) -> Expr:
    """Combine expressions into one conjunction (``TRUE`` for empty input)."""
    if not exprs:
        return Constant(True)
    result = exprs[0]
    for expr in exprs[1:]:
        result = And(result, expr)
    return result
