"""Filter ``FL_θ`` and projection ``PR_{A,E}`` (Section 4.1).

Both operate on the :class:`~repro.algebra.pattern.MatchEvent` objects that
pattern operators emit (so WHERE predicates can reference pattern variables)
as well as on plain events (treated as a one-variable binding).
"""

from __future__ import annotations

from typing import Sequence

from repro.algebra.expressions import SELF_VAR, Expr
from repro.algebra.operators import ExecutionContext, Operator
from repro.algebra.pattern import MatchEvent, binding_of
from repro.errors import ExpressionError
from repro.events.batch import ColumnarEvents
from repro.events.event import Event
from repro.events.types import EventType


class Filter(Operator):
    """``FL_θ``: pass through the events that satisfy predicate ``θ``.

    Events whose binding lacks an attribute referenced by ``θ`` are dropped
    (a predicate over a missing attribute cannot be satisfied), mirroring how
    schema-on-read stream systems treat heterogeneous inputs.

    A :class:`~repro.events.batch.ColumnarEvents` batch takes the
    vectorized path when the predicate has a batch compilation
    (self-variable predicates): per type segment the referenced columns
    are zipped row-wise through one row function — no binding dict, no
    event-object attribute lookups — with the object lane falling back to
    the per-event closure.  Output order, drop semantics and cost
    accounting are identical to the per-event path.
    """

    unit_cost = 1.0

    def __init__(self, predicate: Expr):
        super().__init__(f"FL[{predicate}]")
        self.predicate = predicate
        #: predicate lowered to closures once at plan-build time; the
        #: interpreted ``predicate.evaluate`` stays as the reference path
        self._predicate_fn = predicate.compile()
        #: batch-mode lowering, or None for multi-variable predicates
        self._batch_plan = predicate.compile_batch()

    def process(self, events: list[Event], ctx: ExecutionContext) -> list[Event]:
        if self._batch_plan is not None and type(events) is ColumnarEvents:
            return self._process_columnar(events)
        out = []
        predicate_fn = self._predicate_fn
        for event in events:
            try:
                if predicate_fn(binding_of(event)):
                    out.append(event)
            except ExpressionError:
                continue
        self._account(len(events), len(out), self.unit_cost * len(events))
        return out

    def _process_columnar(self, events: ColumnarEvents) -> list[Event]:
        attrs, rowfn = self._batch_plan
        view = events.view()
        keep = bytearray(view.n)
        for segment in view.regular:
            columns = []
            for attr in attrs:
                column = segment.columns.get(attr)
                if column is None:
                    break
                columns.append(column)
            else:
                indices = segment.indices
                if len(columns) == 1:
                    # The dominant predicate shape: one attribute compared
                    # against constants — one column scan, one-tuple rows.
                    column = columns[0]
                    for row, index in enumerate(indices):
                        try:
                            if rowfn((column[row],)):
                                keep[index] = 1
                        except ExpressionError:
                            pass
                else:
                    for row, index in enumerate(indices):
                        try:
                            if rowfn(tuple(c[row] for c in columns)):
                                keep[index] = 1
                        except ExpressionError:
                            pass
            # A segment lacking a referenced attribute drops all its rows:
            # every per-event evaluation would raise ExpressionError.
        predicate_fn = self._predicate_fn
        for index in view.irregular:
            try:
                if predicate_fn(binding_of(events[index])):
                    keep[index] = 1
            except ExpressionError:
                pass
        out = [event for event, kept in zip(events, keep) if kept]
        self._account(len(events), len(out), self.unit_cost * len(events))
        return out


class Projection(Operator):
    """``PR_{A,E}``: restrict input events to attribute list ``A``, typed ``E``.

    Each item is a ``(name, expression)`` pair taken from the DERIVE clause —
    e.g. ``DERIVE TollNotification(p.vid, p.sec, 5)`` projects two attribute
    references and one constant.  The output event's occurrence time is that
    of the input event (for a match, the span of all contributing events),
    and it records the contributing events for provenance.
    """

    unit_cost = 0.5

    def __init__(self, event_type: EventType, items: Sequence[tuple[str, Expr]]):
        labels = ", ".join(name for name, _ in items)
        super().__init__(f"PR[{event_type.name}({labels})]")
        self.event_type = event_type
        self.items = tuple(items)
        self._item_fns = tuple((name, expr.compile()) for name, expr in self.items)

    def process(self, events: list[Event], ctx: ExecutionContext) -> list[Event]:
        out: list[Event] = []
        item_fns = self._item_fns
        for event in events:
            binding = binding_of(event)
            try:
                payload = {name: fn(binding) for name, fn in item_fns}
            except ExpressionError:
                continue
            if isinstance(event, MatchEvent):
                contributors: tuple[Event, ...] = tuple(event.binding.values())
            else:
                contributors = (event,)
            out.append(
                Event(
                    self.event_type,
                    event.time,
                    payload,
                    derived_from=contributors,
                )
            )
        self._account(len(events), len(out), self.unit_cost * len(events))
        return out
