"""Filter ``FL_θ`` and projection ``PR_{A,E}`` (Section 4.1).

Both operate on the :class:`~repro.algebra.pattern.MatchEvent` objects that
pattern operators emit (so WHERE predicates can reference pattern variables)
as well as on plain events (treated as a one-variable binding).
"""

from __future__ import annotations

from typing import Sequence

from repro.algebra.expressions import SELF_VAR, Expr
from repro.algebra.operators import ExecutionContext, Operator
from repro.algebra.pattern import MatchEvent, binding_of
from repro.errors import ExpressionError
from repro.events.event import Event
from repro.events.types import EventType


class Filter(Operator):
    """``FL_θ``: pass through the events that satisfy predicate ``θ``.

    Events whose binding lacks an attribute referenced by ``θ`` are dropped
    (a predicate over a missing attribute cannot be satisfied), mirroring how
    schema-on-read stream systems treat heterogeneous inputs.
    """

    unit_cost = 1.0

    def __init__(self, predicate: Expr):
        super().__init__(f"FL[{predicate}]")
        self.predicate = predicate
        #: predicate lowered to closures once at plan-build time; the
        #: interpreted ``predicate.evaluate`` stays as the reference path
        self._predicate_fn = predicate.compile()

    def process(self, events: list[Event], ctx: ExecutionContext) -> list[Event]:
        out = []
        predicate_fn = self._predicate_fn
        for event in events:
            try:
                if predicate_fn(binding_of(event)):
                    out.append(event)
            except ExpressionError:
                continue
        self._account(len(events), len(out), self.unit_cost * len(events))
        return out


class Projection(Operator):
    """``PR_{A,E}``: restrict input events to attribute list ``A``, typed ``E``.

    Each item is a ``(name, expression)`` pair taken from the DERIVE clause —
    e.g. ``DERIVE TollNotification(p.vid, p.sec, 5)`` projects two attribute
    references and one constant.  The output event's occurrence time is that
    of the input event (for a match, the span of all contributing events),
    and it records the contributing events for provenance.
    """

    unit_cost = 0.5

    def __init__(self, event_type: EventType, items: Sequence[tuple[str, Expr]]):
        labels = ", ".join(name for name, _ in items)
        super().__init__(f"PR[{event_type.name}({labels})]")
        self.event_type = event_type
        self.items = tuple(items)
        self._item_fns = tuple((name, expr.compile()) for name, expr in self.items)

    def process(self, events: list[Event], ctx: ExecutionContext) -> list[Event]:
        out: list[Event] = []
        item_fns = self._item_fns
        for event in events:
            binding = binding_of(event)
            try:
                payload = {name: fn(binding) for name, fn in item_fns}
            except ExpressionError:
                continue
            if isinstance(event, MatchEvent):
                contributors: tuple[Event, ...] = tuple(event.binding.values())
            else:
                contributors = (event,)
            out.append(
                Event(
                    self.event_type,
                    event.time,
                    payload,
                    derived_from=contributors,
                )
            )
        self._account(len(events), len(out), self.unit_cost * len(events))
        return out
