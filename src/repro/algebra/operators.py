"""Operator base class and execution bookkeeping.

CAESAR plans are push-based pipelines: each operator consumes a list of
events and produces a list of events.  Two aspects set CAESAR apart from a
plain stream algebra and are reflected here:

* **Suspension** (Section 5.2): an operator can report, before any event is
  touched, that the whole pipeline above it is suspended for the current
  batch.  The plan driver then skips the upstream operators entirely — no
  busy waiting — which is exactly how the context window operator cuts cost
  once pushed down.
* **Cost accounting** (Section 5.1): every operator records invocation and
  event counts plus abstract *cost units*.  Wall-clock latency on modern
  hardware is noisy at the microsecond scale, so the benchmarks report both
  wall time and these deterministic cost units.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.events.event import Event
from repro.events.timebase import TimePoint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.windows import ContextWindowStore


@dataclass
class OperatorStats:
    """Mutable execution counters for one operator."""

    invocations: int = 0
    events_in: int = 0
    events_out: int = 0
    cost_units: float = 0.0
    suspensions: int = 0

    def merge(self, other: "OperatorStats") -> None:
        self.invocations += other.invocations
        self.events_in += other.events_in
        self.events_out += other.events_out
        self.cost_units += other.cost_units
        self.suspensions += other.suspensions

    def reset(self) -> None:
        self.invocations = 0
        self.events_in = 0
        self.events_out = 0
        self.cost_units = 0.0
        self.suspensions = 0


@dataclass
class ExecutionContext:
    """Per-batch execution environment handed to every operator.

    ``windows`` is the store of current context windows (the context bit
    vector plus window objects); ``now`` is the application timestamp of the
    batch being processed.
    """

    windows: "ContextWindowStore"
    now: TimePoint = 0


class Operator:
    """Base class of the six CAESAR operators.

    Subclasses implement :meth:`process`.  ``name`` is a short algebra-style
    label used in plan printouts (``CW_congestion``, ``FL_θ`` ...).
    """

    #: Abstract CPU cost charged per input event (Section 5.1's cost model).
    unit_cost: float = 1.0

    def __init__(self, name: str):
        self.name = name
        self.stats = OperatorStats()

    def process(self, events: list[Event], ctx: ExecutionContext) -> list[Event]:
        """Consume a batch of events and emit derived/filtered events."""
        raise NotImplementedError

    def suspends_pipeline(self, ctx: ExecutionContext) -> bool:
        """True if the operators *above* this one are suspended right now.

        Only the context window operator ever returns True; all other
        operators are context-oblivious (Section 4.1).
        """
        return False

    def on_time_advance(self, now: TimePoint, ctx: ExecutionContext) -> list[Event]:
        """Hook invoked when application time advances without input events.

        Pattern operators with trailing negation need this to emit matches
        whose negation window elapsed.  The default does nothing.
        """
        return []

    def reset_state(self) -> None:
        """Discard any partial-match state (used on context termination)."""

    def expire_state_before(self, t: TimePoint) -> int:
        """Drop state older than ``t``; returns the number of items dropped."""
        return 0

    def snapshot_state(self):
        """A copy of the operator's mutable state, or ``None`` if stateless.

        Stateful operators (patterns, aggregates) override this together
        with :meth:`restore_state`; the pair powers the context history
        store and engine checkpointing.
        """
        return None

    def restore_state(self, snapshot) -> None:
        """Restore state produced by :meth:`snapshot_state` (default no-op)."""

    def _account(self, events_in: int, events_out: int, cost: float) -> None:
        self.stats.invocations += 1
        self.stats.events_in += events_in
        self.stats.events_out += events_out
        self.stats.cost_units += cost

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"
