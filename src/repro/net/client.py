"""A small client for the TCP line protocol.

:class:`ServeClient` connects to a ``repro serve --listen`` endpoint
with retry-and-backoff (servers race their clients at startup), sends
events and control ops, and — when subscribed — iterates the server's
emission stream until the server drains and closes the connection.

The client is deliberately thin: it never buffers events locally, so a
blocked ``send`` *is* the server's backpressure reaching the producer
(the server stops reading while the engine's ingestion queue is full,
the kernel's windows fill, and ``send`` parks).

One client, one socket, one thread.  Concurrency is the caller's:
``scripts/net_smoke.py`` runs N clients on N threads.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Iterator

from repro.errors import CaesarError
from repro.net.protocol import event_row


class ServeClientError(CaesarError):
    """The server refused an operation or closed the connection."""


class ServeClient:
    """A connection to a ``repro serve`` TCP endpoint.

    Parameters
    ----------
    host, port:
        The server's listen address.
    connect_timeout:
        Total wall time budget for connecting, spent across retries
        with exponential backoff (servers usually win the startup race
        within the first attempt or two).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        connect_timeout: float = 10.0,
        backoff: float = 0.05,
    ):
        self.host = host
        self.port = port
        self._sock = self._connect(connect_timeout, backoff)
        self._reader = self._sock.makefile("r", encoding="utf-8")
        self.subscribed = False

    def _connect(self, budget: float, backoff: float) -> socket.socket:
        deadline = time.monotonic() + budget
        attempt = 0
        while True:
            try:
                return socket.create_connection(
                    (self.host, self.port), timeout=budget
                )
            except OSError:
                delay = min(backoff * (2 ** attempt), 1.0)
                if time.monotonic() + delay >= deadline:
                    raise
                time.sleep(delay)
                attempt += 1

    # ------------------------------------------------------------------
    # producing
    # ------------------------------------------------------------------

    def send_line(self, line: str) -> None:
        """Send one raw protocol line (newline appended).

        Blocks when the server is exerting backpressure — that is the
        feature, not a bug."""
        self._sock.sendall((line + "\n").encode("utf-8"))

    def send_event(
        self,
        type_name: str,
        time_point,
        payload: dict | None = None,
        *,
        seq: int | None = None,
    ) -> None:
        message = {
            "type": type_name,
            "time": time_point,
            "payload": payload or {},
        }
        if seq is not None:
            message["seq"] = seq
        self.send_line(json.dumps(message, default=str))

    def send_event_obj(self, event, *, seq: int | None = None) -> None:
        """Send a :class:`~repro.events.event.Event` instance."""
        message = event_row(event)
        if seq is not None:
            message["seq"] = seq
        self.send_line(json.dumps(message, default=str))

    # ------------------------------------------------------------------
    # control ops (request/reply)
    # ------------------------------------------------------------------

    def request(self, op: str, **fields) -> dict:
        """Send a control op and block for its reply line.

        Error replies for *previous* bad event lines may arrive first;
        they are raised as :class:`ServeClientError` (an event producer
        that interleaves garbage with ops sees the garbage reported
        here rather than silently skipped)."""
        self.send_line(json.dumps({"op": op, **fields}))
        while True:
            line = self._reader.readline()
            if not line:
                raise ServeClientError(
                    f"server closed the connection awaiting {op!r} reply"
                )
            reply = json.loads(line)
            if reply.get("ok"):
                return reply
            raise ServeClientError(
                f"{reply.get('error', 'error')}: "
                f"{reply.get('message', line.strip())}"
            )

    def deploy(self, query: str, *, name: str = "deployed") -> dict:
        return self.request("deploy", query=query, name=name)

    def retire(self, name: str) -> dict:
        return self.request("retire", name=name)

    def ping(self) -> dict:
        return self.request("ping")

    def stop_server(self) -> dict:
        """Ask the server to drain and shut down (the protocol's
        ``stop`` op — equivalent to sending it SIGTERM)."""
        return self.request("stop")

    # ------------------------------------------------------------------
    # consuming
    # ------------------------------------------------------------------

    def subscribe(self) -> None:
        """Register this connection for the emission stream."""
        self.request("subscribe")
        self.subscribed = True

    def emissions(self) -> Iterator[dict]:
        """Iterate emitted events (as wire dicts) until the server
        drains and closes the connection.  Call :meth:`subscribe` first."""
        if not self.subscribed:
            raise ServeClientError("subscribe() before iterating emissions")
        for line in self._reader:
            yield json.loads(line)

    def emission_lines(self) -> Iterator[str]:
        """Like :meth:`emissions` but yields raw lines (no newline) —
        what byte-identity checks compare."""
        if not self.subscribed:
            raise ServeClientError("subscribe() before iterating emissions")
        for line in self._reader:
            yield line.rstrip("\n")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close_write(self) -> None:
        """Half-close: signal EOF to the server, keep reading replies."""
        try:
            self._sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass

    def close(self) -> None:
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
