"""TCP line-protocol ingestion server on top of :class:`EngineService`.

One accept thread, one thread per producer connection.  The design goal
is that **the service's bounded-queue backpressure reaches the
producers as TCP flow control**: a connection thread blocks in
``service.submit`` while the ingestion queue is full, therefore stops
reading its socket, therefore the kernel receive window fills, therefore
the producer's ``send`` blocks.  No protocol-level pacing, no dropped
events — the queue bound *is* the admission contract, end to end.

Per-connection protections (`docs/architecture.md` §11.5):

* a **read timeout** — an idle producer is told (structured error
  reply) and disconnected instead of pinning a thread forever;
* a **max-line limit** — an oversized line is discarded while being
  read (never buffered whole), answered with an ``oversized`` error
  reply, and the connection keeps serving subsequent lines;
* **structured error replies** for garbage lines, malformed events and
  unknown ops (``{"ok": false, "error": <code>, "message": ...}``),
  counted under ``caesar_net_rejected_lines_total{reason=...}``.

Emissions flow the other way: a connection that sends
``{"op": "subscribe"}`` becomes an emission sink and receives every
derived event as a JSON line the moment its stream transaction commits.

:meth:`NetServer.shutdown` with ``drain=True`` (the SIGTERM path) stops
accepting, gives connected producers a grace period to finish and
disconnect, flushes the resequencer and the service (final emissions
still reach subscribers), and returns the full
:class:`~repro.runtime.engine.EngineReport`.
"""

from __future__ import annotations

import heapq
import socket
import threading
import time
from typing import Callable, TYPE_CHECKING

from repro.errors import CaesarError
from repro.events.event import Event
from repro.language import parse_query
from repro.net.protocol import (
    DEFAULT_MAX_LINE_BYTES,
    ERR_BAD_OP,
    ERR_TIMEOUT,
    ERR_UNAVAILABLE,
    ERR_UNKNOWN_OP,
    LineReader,
    ParsedLine,
    ProtocolError,
    TypeResolver,
    encode_event,
    error_reply,
    ok_reply,
    parse_line,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.engine import EngineReport
    from repro.runtime.service import EngineService


class Resequencer:
    """Reassembles a global total order from concurrent producers.

    Producers tag events with a dense, monotonically increasing ``seq``
    (assigned once, at the original stream) and may then shard the
    stream across any number of connections: each connection pushes its
    events here, and the service receives them in exact ``seq`` order.
    A connection that runs more than ``max_ahead`` events ahead of the
    lowest missing sequence number is parked (its socket stops being
    read — TCP backpressure), bounding the reassembly buffer.

    :meth:`flush` (drain path) releases whatever is buffered in ``seq``
    order even across gaps — a crashed producer cannot hold the
    shutdown hostage.
    """

    def __init__(
        self,
        submit: Callable[[Event], None],
        *,
        start: int = 0,
        max_ahead: int = 65536,
        pending_gauge=None,
    ):
        if max_ahead < 1:
            raise ValueError(f"max_ahead must be >= 1, got {max_ahead}")
        self._submit = submit
        self._next = start
        self._max_ahead = max_ahead
        self._heap: list[tuple[int, int, Event]] = []
        self._tie = 0  # keeps heap comparisons off Event objects
        self._cond = threading.Condition()
        self._closing = False
        self._gauge = pending_gauge

    @property
    def pending(self) -> int:
        with self._cond:
            return len(self._heap)

    def push(self, seq: int, event: Event) -> None:
        """Hand over event number ``seq``; delivers every newly
        consecutive event to the service before returning."""
        with self._cond:
            if seq < self._next:
                raise ProtocolError(
                    ERR_BAD_OP,
                    f"seq {seq} was already delivered (next is {self._next})",
                )
            while (
                seq - self._next > self._max_ahead and not self._closing
            ):
                self._cond.wait(timeout=1.0)
            self._tie += 1
            heapq.heappush(self._heap, (seq, self._tie, event))
            while self._heap and self._heap[0][0] == self._next:
                _, _, ready = heapq.heappop(self._heap)
                self._submit(ready)
                self._next += 1
            self._cond.notify_all()
            if self._gauge is not None:
                self._gauge.set(len(self._heap))

    def flush(self) -> None:
        """Release everything buffered, in ``seq`` order, gaps included."""
        with self._cond:
            self._closing = True
            while self._heap:
                seq, _, event = heapq.heappop(self._heap)
                self._submit(event)
                self._next = seq + 1
            self._cond.notify_all()
            if self._gauge is not None:
                self._gauge.set(0)

    def close(self) -> None:
        """Unpark waiting producers (shutdown begins)."""
        with self._cond:
            self._closing = True
            self._cond.notify_all()


class _Connection:
    """Per-connection state: socket, write lock, role flags."""

    __slots__ = ("sock", "address", "write_lock", "subscriber", "closed")

    def __init__(self, sock: socket.socket, address):
        self.sock = sock
        self.address = address
        self.write_lock = threading.Lock()
        self.subscriber = False
        self.closed = False


class _CloseConnection(Exception):
    """Internal: end this connection's serving loop."""


class NetServer:
    """A line-protocol TCP front end for an :class:`EngineService`.

    Construct the service with ``on_emit=<server>.emit`` (or build the
    server first and pass its bound :meth:`emit`) so committed
    derivations are broadcast to subscriber connections.

    Parameters
    ----------
    service:
        The engine service to front.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (``address``
        reports the bound one).
    types:
        Scenario type registry for decoding event lines (unknown names
        get fresh schemaless types).
    max_line_bytes, read_timeout:
        Per-connection frame limit and idle bound.  ``read_timeout=None``
        disables the idle bound.
    max_ahead:
        Resequencer window for ``seq``-tagged events.
    drain_grace:
        Seconds :meth:`shutdown(drain=True)` waits for connected
        producers to finish before force-closing them.
    """

    def __init__(
        self,
        service: "EngineService",
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        types: dict | None = None,
        max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
        read_timeout: float | None = 300.0,
        max_ahead: int = 65536,
        drain_grace: float = 10.0,
    ):
        self.service = service
        self._host = host
        self._port = port
        self.resolve_type = (
            types if callable(types) else TypeResolver(types)
        )
        self._max_line_bytes = max_line_bytes
        self._read_timeout = read_timeout
        self._drain_grace = drain_grace
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._threads: list[threading.Thread] = []
        self._connections: set[_Connection] = set()
        self._subscribers: list[_Connection] = []
        self._conn_lock = threading.Lock()
        self._closing = False
        self._shutdown_lock = threading.Lock()
        self._report: "EngineReport | None" = None
        #: set once a shutdown was requested (an inline ``stop`` op or
        #: :meth:`request_shutdown`); ``repro serve`` waits on it
        self.stopped = threading.Event()

        registry = service.engine.observability.registry
        self._connections_total = registry.counter(
            "caesar_net_connections_total",
            "Producer connections accepted by the TCP front end",
            deterministic=False,
        )
        self._connections_open = registry.gauge(
            "caesar_net_connections_open",
            "Currently open TCP connections",
        )
        self._subscribers_gauge = registry.gauge(
            "caesar_net_subscribers",
            "Connections subscribed to the emission stream",
        )
        self._bytes_in = registry.counter(
            "caesar_net_bytes_in_total",
            "Bytes received by the network front ends",
            deterministic=False,
        )
        self._bytes_out = registry.counter(
            "caesar_net_bytes_out_total",
            "Bytes sent by the network front ends (replies + emissions)",
            deterministic=False,
        )
        self._events_in = registry.counter(
            "caesar_net_events_total",
            "Events accepted over the network",
            deterministic=False,
        )
        self._rejected = {
            reason: registry.counter(
                "caesar_net_rejected_lines_total",
                "Protocol lines rejected with a structured error reply",
                labels={"reason": reason},
                deterministic=False,
            )
            for reason in (
                "parse", "bad-event", "bad-op", "unknown-op",
                "oversized", "timeout", "unavailable",
            )
        }
        self.sequencer = Resequencer(
            service.submit,
            max_ahead=max_ahead,
            pending_gauge=registry.gauge(
                "caesar_net_resequence_pending",
                "Seq-tagged events buffered awaiting their predecessors",
            ),
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Bind, listen, spawn the accept loop; returns the bound address."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(128)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="caesar-net-accept", daemon=True
        )
        self._accept_thread.start()
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        if self._listener is None:
            raise RuntimeError("server not started")
        host, port = self._listener.getsockname()[:2]
        return host, port

    def request_shutdown(self) -> None:
        """Ask the owner loop (``repro serve``) to drain and exit."""
        self.stopped.set()

    def shutdown(self, *, drain: bool = True) -> "EngineReport | None":
        """Stop accepting, retire connections, stop the service.

        ``drain=True``: producers still connected get ``drain_grace``
        seconds to finish and disconnect; everything read so far — plus
        whatever the resequencer holds — is processed, final emissions
        are broadcast to subscribers, and the full engine report is
        returned.  ``drain=False`` force-closes everything and discards
        the queues.  Idempotent.
        """
        with self._shutdown_lock:
            if self._closing:
                return self._report
            self._closing = True
        if self._listener is not None:
            _silently_close(self._listener)
        self.sequencer.close()
        with self._conn_lock:
            connections = list(self._connections)
        if drain:
            # wake pure subscribers' read loops without touching their
            # write side — they must stay open for the final emissions
            for conn in connections:
                if conn.subscriber:
                    _shutdown_read(conn.sock)
            deadline = time.monotonic() + self._drain_grace
            for thread in list(self._threads):
                thread.join(timeout=max(0.0, deadline - time.monotonic()))
            for conn in connections:
                if not conn.subscriber:
                    self._close_connection(conn)  # stragglers past grace
            for thread in list(self._threads):
                thread.join(timeout=1.0)
            try:
                self.sequencer.flush()
            except CaesarError:
                # a stopped/crashed service rejects the tail; stop()
                # below surfaces the authoritative error
                pass
        else:
            for conn in connections:
                self._close_connection(conn)
        try:
            self._report = self.service.stop(drain=drain)
        finally:
            with self._conn_lock:
                remaining = list(self._connections)
            for conn in remaining:
                self._close_connection(conn)
            if self._accept_thread is not None:
                self._accept_thread.join(timeout=1.0)
            self.stopped.set()
        return self._report

    # ------------------------------------------------------------------
    # accepting / serving
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, address = self._listener.accept()
            except OSError:  # listener closed: shutdown
                return
            if self._closing:
                _silently_close(sock)
                return
            conn = _Connection(sock, address)
            with self._conn_lock:
                self._connections.add(conn)
            self._connections_total.inc()
            self._connections_open.set(len(self._connections))
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name=f"caesar-net-conn-{address[1]}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: _Connection) -> None:
        sock = conn.sock
        sock.settimeout(self._read_timeout)
        reader = LineReader(
            sock,
            max_line_bytes=self._max_line_bytes,
            on_bytes=self._bytes_in.inc,
        )
        try:
            # The loop deliberately does not poll the closing flag: a
            # graceful drain *wants* already-sent lines to be read until
            # the client disconnects (EOF) — stragglers past the grace
            # period are force-closed, which surfaces here as OSError.
            while True:
                try:
                    line = reader.readline()
                except ProtocolError as err:  # oversized, already resynced
                    self._reject(conn, err)
                    continue
                except socket.timeout:
                    self._rejected["timeout"].inc()
                    self._send(conn, error_reply(
                        ERR_TIMEOUT,
                        f"no data for {self._read_timeout}s, closing",
                    ))
                    return
                except OSError:
                    return  # force-closed during shutdown
                if line is None:
                    return  # client EOF
                if not line.strip():
                    continue
                self._handle_line(conn, line)
        except _CloseConnection:
            pass
        finally:
            # a draining subscriber keeps its socket open: the final
            # emissions are written after service.stop() flushes, and
            # shutdown() closes it last
            if not (conn.subscriber and self._closing):
                self._close_connection(conn)

    def _handle_line(self, conn: _Connection, line: str) -> None:
        try:
            parsed = parse_line(line, self.resolve_type)
        except ProtocolError as err:
            self._reject(conn, err)
            return
        if parsed.kind == "event":
            try:
                if parsed.seq is not None:
                    self.sequencer.push(parsed.seq, parsed.event)
                else:
                    self.service.submit(parsed.event)
            except ProtocolError as err:  # regressed seq
                self._reject(conn, err)
                return
            except CaesarError as err:  # service stopped or crashed
                self._rejected["unavailable"].inc()
                self._send(conn, error_reply(ERR_UNAVAILABLE, str(err)))
                raise _CloseConnection() from None
            self._events_in.inc()
            return
        self._handle_op(conn, parsed)

    def _handle_op(self, conn: _Connection, parsed: ParsedLine) -> None:
        message = parsed.op
        op = message["op"]
        try:
            if op == "deploy":
                query = parse_query(
                    str(message.get("query", "")),
                    name=str(message.get("name", "deployed")),
                    types=getattr(self.resolve_type, "types", None),
                )
                watermark = self.service.deploy_query(query)
                self._send(conn, ok_reply(
                    op="deploy", name=query.name, watermark=watermark
                ))
            elif op == "retire":
                name = message.get("name")
                if not isinstance(name, str):
                    raise ProtocolError(
                        ERR_BAD_OP, "retire needs a query 'name'"
                    )
                watermark = self.service.retire_query(name)
                self._send(conn, ok_reply(
                    op="retire", name=name, watermark=watermark
                ))
            elif op == "subscribe":
                self._add_subscriber(conn)
                self._send(conn, ok_reply(op="subscribe"))
            elif op == "ping":
                self._send(conn, ok_reply(
                    op="ping",
                    watermark=self.service.session.watermark,
                    emitted=self.service.emitted_events,
                ))
            elif op == "stop":
                self._send(conn, ok_reply(op="stop"))
                self.request_shutdown()
            else:
                raise ProtocolError(
                    ERR_UNKNOWN_OP, f"unknown op {op!r}"
                )
        except ProtocolError as err:
            self._reject(conn, err)
        except CaesarError as err:
            # deploy/retire failures (parse errors, unknown queries, a
            # stopped service) are reported on the wire, not fatal
            self._rejected["bad-op"].inc()
            self._send(conn, error_reply(ERR_BAD_OP, str(err)))

    # ------------------------------------------------------------------
    # emissions
    # ------------------------------------------------------------------

    def emit(self, event: Event) -> None:
        """Broadcast one derived event to every subscriber (the
        service's ``on_emit`` target)."""
        with self._conn_lock:
            subscribers = list(self._subscribers)
        if not subscribers:
            return
        data = (encode_event(event) + "\n").encode("utf-8")
        for conn in subscribers:
            try:
                with conn.write_lock:
                    conn.sock.sendall(data)
                self._bytes_out.inc(len(data))
            except OSError:
                self._drop_subscriber(conn)

    def _add_subscriber(self, conn: _Connection) -> None:
        conn.subscriber = True
        # subscribers are write-mostly: the idle bound no longer applies
        conn.sock.settimeout(None)
        with self._conn_lock:
            if conn not in self._subscribers:
                self._subscribers.append(conn)
            self._subscribers_gauge.set(len(self._subscribers))

    def _drop_subscriber(self, conn: _Connection) -> None:
        with self._conn_lock:
            if conn in self._subscribers:
                self._subscribers.remove(conn)
            self._subscribers_gauge.set(len(self._subscribers))
        self._close_connection(conn)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def _send(self, conn: _Connection, line: str) -> None:
        data = (line + "\n").encode("utf-8")
        try:
            with conn.write_lock:
                conn.sock.sendall(data)
            self._bytes_out.inc(len(data))
        except OSError:
            raise _CloseConnection() from None

    def _reject(self, conn: _Connection, err: ProtocolError) -> None:
        counter = self._rejected.get(err.code)
        if counter is not None:
            counter.inc()
        self._send(conn, err.reply())

    def _close_connection(self, conn: _Connection) -> None:
        if conn.closed:
            return
        conn.closed = True
        _silently_close(conn.sock)
        with self._conn_lock:
            self._connections.discard(conn)
            if conn in self._subscribers:
                self._subscribers.remove(conn)
            self._connections_open.set(len(self._connections))
            self._subscribers_gauge.set(len(self._subscribers))


def _silently_close(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:  # pragma: no cover - close races are benign
        pass


def _shutdown_read(sock: socket.socket) -> None:
    try:
        sock.shutdown(socket.SHUT_RD)
    except OSError:  # pragma: no cover - already gone
        pass
