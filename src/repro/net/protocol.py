"""The line protocol spoken by every ingestion front end.

One message per ``\\n``-terminated line, each a JSON object.  The
protocol is exactly what ``repro serve`` already reads on stdin —
putting it on a socket changes the transport, not the language:

* an **event**: ``{"type": ..., "time": ..., "payload": {...}}``, plus
  an optional ``"seq"`` (see below);
* a **control op**: ``{"op": "deploy" | "retire" | "subscribe" |
  "ping" | "stop", ...}``.

Replies (ops and errors only — accepted events are not acknowledged,
their acknowledgement is the TCP window) are JSON lines too:
``{"ok": true, "op": ..., ...}`` or ``{"ok": false, "error": <code>,
"message": ...}`` with a machine-readable error code.

**Sequenced ingestion.**  Events may carry a monotonically increasing
global sequence number ``"seq"``.  The server reassembles the total
order across any number of concurrent producer connections before
feeding the service (see :class:`~repro.net.server.Resequencer`), which
is what makes N-client ingestion byte-identical to a one-shot ``run()``
over the original stream.  Events without ``seq`` are submitted in
arrival order — the session's reorder buffer then provides the usual
bounded out-of-order tolerance.

:class:`LineReader` is the transport half: an incremental socket reader
that enforces the max-line limit *while reading* (an oversized line is
discarded up to its terminating newline and reported, it is never
buffered whole), so a misbehaving producer cannot balloon server
memory.
"""

from __future__ import annotations

import json
import socket
from typing import Callable

from repro.errors import CaesarError
from repro.events.event import Event
from repro.events.types import EventType

#: Default ceiling for one protocol line (1 MiB) — far above any sane
#: event, far below anything that could hurt the server.
DEFAULT_MAX_LINE_BYTES = 1 << 20

#: Error codes carried by structured error replies.
ERR_PARSE = "parse"  # line is not a JSON object
ERR_BAD_EVENT = "bad-event"  # object is malformed as an event
ERR_BAD_OP = "bad-op"  # op exists but its arguments are invalid
ERR_UNKNOWN_OP = "unknown-op"  # op name not in the protocol
ERR_OVERSIZED = "oversized"  # line exceeded the max-line limit
ERR_TIMEOUT = "timeout"  # connection idle past the read timeout
ERR_UNAVAILABLE = "unavailable"  # service stopped or failed


class ProtocolError(CaesarError):
    """A protocol violation with a machine-readable reply code."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code

    def reply(self) -> str:
        return error_reply(self.code, str(self))


class LineTooLong(ProtocolError):
    """A line exceeded the max-line limit (already discarded)."""

    def __init__(self, limit: int):
        super().__init__(
            ERR_OVERSIZED, f"line exceeds the {limit}-byte limit"
        )
        self.limit = limit


class ParsedLine:
    """One decoded protocol line: an event (with optional seq) or an op."""

    __slots__ = ("kind", "event", "seq", "op")

    def __init__(self, kind, *, event=None, seq=None, op=None):
        self.kind = kind  # "event" | "op"
        self.event = event
        self.seq = seq
        self.op = op


class TypeResolver:
    """Get-or-create event types by name over a scenario registry.

    Unknown names become fresh schemaless :class:`EventType` instances —
    the network cannot know a scenario's whole type universe up front,
    and a supervised engine's schema validation still applies downstream.
    """

    def __init__(self, types: dict[str, EventType] | None = None):
        self.types = dict(types or {})

    def __call__(self, name: str) -> EventType:
        event_type = self.types.get(name)
        if event_type is None:
            event_type = EventType(name)
            self.types[name] = event_type
        return event_type


def parse_line(text: str, resolve_type: Callable[[str], EventType]) -> ParsedLine:
    """Decode one protocol line; raises :class:`ProtocolError` on garbage."""
    try:
        message = json.loads(text)
    except ValueError as err:
        raise ProtocolError(ERR_PARSE, f"invalid JSON: {err}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            ERR_PARSE, f"expected a JSON object, got {type(message).__name__}"
        )
    if "op" in message:
        if not isinstance(message["op"], str):
            raise ProtocolError(ERR_BAD_OP, "op name must be a string")
        return ParsedLine("op", op=message)
    try:
        type_name = message["type"]
        time = message["time"]
    except KeyError as err:
        raise ProtocolError(
            ERR_BAD_EVENT, f"event line is missing the {err.args[0]!r} field"
        ) from None
    if not isinstance(type_name, str):
        raise ProtocolError(ERR_BAD_EVENT, "event type must be a string")
    if isinstance(time, bool) or not isinstance(time, (int, float)):
        raise ProtocolError(ERR_BAD_EVENT, "event time must be a number")
    payload = message.get("payload", {})
    if not isinstance(payload, dict):
        raise ProtocolError(ERR_BAD_EVENT, "event payload must be an object")
    seq = message.get("seq")
    if seq is not None and (isinstance(seq, bool) or not isinstance(seq, int)):
        raise ProtocolError(ERR_BAD_EVENT, "event seq must be an integer")
    event = Event(resolve_type(type_name), time, payload)
    return ParsedLine("event", event=event, seq=seq)


def event_row(event: Event) -> dict:
    """The wire shape of an emitted event (also `repro serve`'s stdout)."""
    return {
        "type": event.type_name,
        "time": event.timestamp,
        "payload": dict(event.payload),
    }


def encode_event(event: Event) -> str:
    """One emission line (no trailing newline).

    ``default=str`` keeps exotic payload values (Decimal, tuples used as
    keys upstream) emittable — the wire favors delivery over round-trip
    fidelity for non-JSON-native types, exactly like ``repro serve``'s
    stdout."""
    return json.dumps(event_row(event), default=str)


def ok_reply(**fields) -> str:
    return json.dumps({"ok": True, **fields})


def error_reply(code: str, message: str) -> str:
    return json.dumps({"ok": False, "error": code, "message": message})


def scenario_types(scenario_name: str) -> dict[str, EventType]:
    """The declared event types of a servable scenario, by name."""
    if scenario_name == "traffic":
        from repro.linearroad.schema import type_registry

        return type_registry()
    if scenario_name == "pam":
        from repro.pam.schema import type_registry

        return type_registry()
    from repro.difftest.scenarios import DIFF_READING

    return {DIFF_READING.name: DIFF_READING}


class LineReader:
    """Incremental, limit-enforcing line reader over a socket.

    ``readline()`` returns the next decoded line without its newline, or
    ``None`` at EOF.  A line longer than ``max_line_bytes`` raises
    :class:`LineTooLong` *after* discarding input through its
    terminating newline, so the connection can resynchronize and keep
    serving subsequent lines.  ``socket.timeout`` from the underlying
    socket propagates (the per-connection read timeout).
    """

    def __init__(
        self,
        sock: socket.socket,
        *,
        max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
        on_bytes: Callable[[int], None] | None = None,
    ):
        if max_line_bytes <= 0:
            raise ValueError(
                f"max_line_bytes must be positive, got {max_line_bytes}"
            )
        self._sock = sock
        self._max = max_line_bytes
        self._on_bytes = on_bytes
        self._buffer = bytearray()
        self._eof = False
        #: discarding the remainder of an oversized line until newline
        self._skipping = False

    def _recv(self) -> bool:
        chunk = self._sock.recv(65536)
        if not chunk:
            self._eof = True
            return False
        if self._on_bytes is not None:
            self._on_bytes(len(chunk))
        self._buffer.extend(chunk)
        return True

    def readline(self) -> str | None:
        while True:
            if self._skipping:
                cut = self._buffer.find(b"\n")
                if cut >= 0:
                    del self._buffer[: cut + 1]
                    self._skipping = False
                else:
                    del self._buffer[:]
                    if self._eof or not self._recv():
                        return None
                    continue
            cut = self._buffer.find(b"\n")
            if cut >= 0:
                if cut > self._max:
                    del self._buffer[: cut + 1]
                    raise LineTooLong(self._max)
                line = self._buffer[:cut]
                del self._buffer[: cut + 1]
                return line.decode("utf-8", errors="replace")
            if len(self._buffer) > self._max:
                del self._buffer[:]
                self._skipping = True
                raise LineTooLong(self._max)
            if self._eof:
                if self._buffer:  # final unterminated line
                    line = self._buffer.decode("utf-8", errors="replace")
                    del self._buffer[:]
                    return line
                return None
            if not self._recv():
                continue  # EOF path drains the remainder above
