"""Network ingestion front ends for the streaming service.

``repro serve`` reads the line protocol on stdin; this package puts the
same protocol on the network:

* :mod:`repro.net.protocol` — the line protocol itself (parsing,
  replies, the limit-enforcing :class:`~repro.net.protocol.LineReader`);
* :mod:`repro.net.server` — the TCP server
  (:class:`~repro.net.server.NetServer`): many concurrent producers,
  backpressure via TCP flow control, emission subscriptions, graceful
  drain;
* :mod:`repro.net.http` — the HTTP front end
  (:class:`~repro.net.http.HttpFrontEnd`): ``POST /events``,
  ``GET /healthz``, ``GET /metrics``;
* :mod:`repro.net.client` — :class:`~repro.net.client.ServeClient`,
  a thin producer/subscriber client.
"""

from repro.net.client import ServeClient, ServeClientError
from repro.net.http import HttpFrontEnd
from repro.net.protocol import (
    DEFAULT_MAX_LINE_BYTES,
    LineReader,
    LineTooLong,
    ProtocolError,
    TypeResolver,
    encode_event,
    event_row,
    parse_line,
    scenario_types,
)
from repro.net.server import NetServer, Resequencer

__all__ = [
    "DEFAULT_MAX_LINE_BYTES",
    "HttpFrontEnd",
    "LineReader",
    "LineTooLong",
    "NetServer",
    "ProtocolError",
    "Resequencer",
    "ServeClient",
    "ServeClientError",
    "TypeResolver",
    "encode_event",
    "event_row",
    "parse_line",
    "scenario_types",
]
