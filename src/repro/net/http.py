"""HTTP ingestion + observability front end.

Three routes, deliberately few:

* ``POST /events`` — an NDJSON body of protocol lines (events with
  optional ``seq``, plus ``deploy``/``retire`` ops).  Each line is
  accepted or rejected independently; the JSON response carries
  ``{"accepted": N, "rejected": M, "errors": [...]}`` with the first
  few structured errors.  Submission blocks on the service's bounded
  queue, so a flooded engine slows HTTP producers down instead of
  buffering their bodies' worth of events in memory.
* ``GET /healthz`` — liveness plus the service's key signals
  (watermark, queue depth, emitted count); ``500`` once the feeder has
  failed, ``503`` after stop.
* ``GET /metrics`` — the engine's whole registry in Prometheus text
  exposition format v0.0.4 straight from
  :func:`repro.observability.exporters.to_prometheus`, including the
  ``caesar_service_*`` gauges and the ``caesar_net_*`` transport
  instruments.

Implementation: stdlib ``ThreadingHTTPServer`` — one thread per
request, no extra dependencies, good enough for a scrape target and a
convenience ingest path (bulk ingestion belongs on the TCP protocol,
which has real backpressure end to end).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING

from repro.errors import CaesarError, RuntimeEngineError
from repro.language import parse_query
from repro.net.protocol import (
    DEFAULT_MAX_LINE_BYTES,
    ERR_BAD_OP,
    ERR_OVERSIZED,
    ERR_UNKNOWN_OP,
    ProtocolError,
    TypeResolver,
    parse_line,
)
from repro.net.server import Resequencer
from repro.observability.exporters import to_prometheus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.service import EngineService

#: Default bound for one ``POST /events`` body (8 MiB).
DEFAULT_MAX_BODY_BYTES = 8 << 20

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class HttpFrontEnd:
    """An HTTP server bound to one :class:`EngineService`.

    Parameters mirror :class:`~repro.net.server.NetServer`; pass the
    TCP server's ``resolve_type`` and ``sequencer`` when both front
    ends serve the same service so ``seq`` numbering and type identity
    stay coherent across transports.
    """

    def __init__(
        self,
        service: "EngineService",
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        types: dict | None = None,
        resolve_type=None,
        sequencer: Resequencer | None = None,
        max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    ):
        self.service = service
        self.resolve_type = resolve_type or TypeResolver(types)
        self.sequencer = sequencer or Resequencer(service.submit)
        self.max_line_bytes = max_line_bytes
        self.max_body_bytes = max_body_bytes
        self.registry = service.engine.observability.registry
        self._requests = {
            path: self.registry.counter(
                "caesar_net_http_requests_total",
                "HTTP requests served, by route",
                labels={"path": path},
                deterministic=False,
            )
            for path in ("/events", "/healthz", "/metrics", "other")
        }
        self._bytes_in = self.registry.counter(
            "caesar_net_bytes_in_total",
            "Bytes received by the network front ends",
            deterministic=False,
        )
        self._rejected = self.registry.counter(
            "caesar_net_rejected_lines_total",
            "Protocol lines rejected with a structured error reply",
            labels={"reason": "http"},
            deterministic=False,
        )
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.front = self
        self._thread: threading.Thread | None = None

    def start(self) -> tuple[str, int]:
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="caesar-net-http",
            daemon=True,
        )
        self._thread.start()
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return host, port

    def shutdown(self) -> None:
        """Stop serving HTTP.  Does not stop the service — the owner
        (``repro serve`` or the TCP server) does that exactly once."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    # ------------------------------------------------------------------
    # route bodies (called from handler threads)
    # ------------------------------------------------------------------

    def ingest(self, body: str) -> dict:
        accepted = 0
        rejected = 0
        errors: list[dict] = []

        def reject(code: str, message: str) -> None:
            nonlocal rejected
            rejected += 1
            self._rejected.inc()
            if len(errors) < 5:
                errors.append({"error": code, "message": message})

        for line in body.splitlines():
            if not line.strip():
                continue
            if len(line.encode("utf-8")) > self.max_line_bytes:
                reject(
                    ERR_OVERSIZED,
                    f"line exceeds the {self.max_line_bytes}-byte limit",
                )
                continue
            try:
                parsed = parse_line(line, self.resolve_type)
                if parsed.kind == "event":
                    if parsed.seq is not None:
                        self.sequencer.push(parsed.seq, parsed.event)
                    else:
                        self.service.submit(parsed.event)
                else:
                    self._apply_op(parsed.op)
            except ProtocolError as err:
                reject(err.code, str(err))
            except RuntimeEngineError:
                raise  # stopped/crashed service: the whole request fails
            except CaesarError as err:
                reject(ERR_BAD_OP, str(err))
            else:
                accepted += 1
        return {"accepted": accepted, "rejected": rejected, "errors": errors}

    def _apply_op(self, message: dict) -> None:
        op = message["op"]
        if op == "deploy":
            query = parse_query(
                str(message.get("query", "")),
                name=str(message.get("name", "deployed")),
                types=getattr(self.resolve_type, "types", None),
            )
            self.service.deploy_query(query)
        elif op == "retire":
            name = message.get("name")
            if not isinstance(name, str):
                raise ProtocolError(ERR_BAD_OP, "retire needs a query 'name'")
            self.service.retire_query(name)
        else:
            raise ProtocolError(
                ERR_UNKNOWN_OP, f"op {op!r} is not available over HTTP"
            )

    def health(self) -> tuple[int, dict]:
        service = self.service
        if service.error is not None:
            return 500, {"status": "error", "error": str(service.error)}
        if service.stopped:
            return 503, {"status": "stopped"}
        return 200, {
            "status": "ok",
            "watermark": service.session.watermark,
            "queue_depth": service.queue_depth,
            "emitted": service.emitted_events,
        }


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "caesar-serve"

    @property
    def front(self) -> HttpFrontEnd:
        return self.server.front

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging belongs to /metrics, not stderr

    def _count(self, path: str) -> None:
        counters = self.front._requests
        counters.get(path, counters["other"]).inc()

    def _respond(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _respond_json(self, status: int, payload: dict) -> None:
        self._respond(
            status,
            (json.dumps(payload) + "\n").encode("utf-8"),
            "application/json",
        )

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/healthz":
            self._count("/healthz")
            status, payload = self.front.health()
            self._respond_json(status, payload)
        elif self.path == "/metrics":
            self._count("/metrics")
            text = to_prometheus(self.front.registry)
            self._respond(
                200, text.encode("utf-8"), PROMETHEUS_CONTENT_TYPE
            )
        else:
            self._count("other")
            self._respond_json(404, {"error": f"no route {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path != "/events":
            self._count("other")
            self._respond_json(404, {"error": f"no route {self.path!r}"})
            return
        self._count("/events")
        length = self.headers.get("Content-Length")
        if length is None:
            self._respond_json(411, {"error": "Content-Length required"})
            return
        length = int(length)
        if length > self.front.max_body_bytes:
            self._respond_json(413, {
                "error": f"body exceeds {self.front.max_body_bytes} bytes"
            })
            return
        body = self.rfile.read(length)
        self.front._bytes_in.inc(len(body))
        try:
            result = self.front.ingest(body.decode("utf-8", errors="replace"))
        except RuntimeEngineError as err:
            self._respond_json(503, {"error": str(err)})
            return
        self._respond_json(200, result)
