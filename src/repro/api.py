"""The unified construction API: ``create_engine`` + ``EngineConfig``.

Four engine classes grew over the project's life — :class:`CaesarEngine`,
:class:`SupervisedEngine`, :class:`ScheduledWorkloadEngine` and
:class:`ContextIndependentEngine` — each with its own constructor surface,
plus two environment variables (``CAESAR_BACKEND``,
``CAESAR_OBSERVABILITY``).  This module puts one documented path in front
of them::

    from repro import create_engine, EngineConfig, SupervisionConfig

    engine = create_engine(model)                       # all defaults
    engine = create_engine(model, EngineConfig(
        backend="process",
        supervision=SupervisionConfig(failure_threshold=5),
        observability="trace",
        partition_by=lambda e: e.payload["segment"],
    ))
    engine = create_engine(model, config, backend="thread")  # override

The config objects are *frozen* dataclasses: they can be shared, compared,
put in test fixtures and partially overridden with keyword arguments to
:func:`create_engine` (applied via :func:`dataclasses.replace`) without
aliasing surprises.  The engine classes remain public and keep working —
``create_engine`` only composes them.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable

from repro.core.model import CaesarModel
from repro.events.timebase import TimePoint
from repro.observability import Observability
from repro.optimizer.apply import OptimizationRules
from repro.optimizer.sharing import SharedWorkload
from repro.runtime.backend import ExecutionBackend
from repro.runtime.deadletter import DeadLetterQueue
from repro.runtime.engine import CaesarEngine, ScheduledWorkloadEngine
from repro.runtime.queues import Partitioner, single_partition
from repro.runtime.recovery import RecoveryManager
from repro.runtime.shedding import SheddingConfig
from repro.runtime.supervisor import SupervisedEngine


@dataclass(frozen=True)
class SupervisionConfig:
    """Fault-isolation settings for a supervised engine.

    Mirrors :class:`~repro.runtime.supervisor.SupervisedEngine`'s
    supervision keywords; attaching one (or ``supervision=True``) to an
    :class:`EngineConfig` makes :func:`create_engine` build a
    :class:`SupervisedEngine`.
    """

    failure_threshold: int = 3
    cooldown: TimePoint = 60
    dead_letters: DeadLetterQueue | None = None
    validate_schemas: bool = True


@dataclass(frozen=True)
class EngineConfig:
    """Everything that shapes an engine, in one frozen value object.

    ``context_aware=False`` with ``optimize=False`` yields the paper's
    context-independent baseline; ``supervision`` and/or ``recovery``
    select the supervised engine; the rest passes through to the chosen
    engine's constructor.  ``backend`` and ``observability`` accept the
    same specs as the engine constructors (instances, names, or ``None``
    to consult ``CAESAR_BACKEND`` / ``CAESAR_OBSERVABILITY``); ``shedding``
    accepts a :class:`~repro.runtime.shedding.SheddingConfig`, a spec
    string, ``True``/``False``, or ``None`` to consult ``CAESAR_SHED``.
    ``recovery`` accepts a :class:`~repro.runtime.recovery.RecoveryManager`,
    ``True`` for one with the default autosave interval, or ``False`` /
    ``None`` for no checkpointing.  ``aggregation`` selects how aggregating
    DERIVE queries run (``"online"`` | ``"materialize"``; it does not apply
    to a pre-built :class:`~repro.optimizer.sharing.SharedWorkload`).
    ``optimize`` additionally accepts an
    :class:`~repro.optimizer.apply.OptimizationRules` for per-rewrite
    control (the differential harness's optimizer axis).
    """

    context_aware: bool = True
    optimize: bool | OptimizationRules = True
    backend: ExecutionBackend | str | None = None
    supervision: SupervisionConfig | bool | None = None
    recovery: RecoveryManager | bool | None = None
    observability: Observability | str | bool | None = None
    shedding: SheddingConfig | str | bool | None = None
    partition_by: Partitioner = single_partition
    retention: TimePoint = 300
    aggregation: str = "online"
    gc_interval: TimePoint = 60
    seconds_per_cost_unit: float | None = None
    preprocessors: tuple = ()
    on_context_transition: Callable | None = None

    #: autosave interval (stream-time units) used when ``recovery=True``
    DEFAULT_RECOVERY_INTERVAL = 60

    def recovery_manager(self) -> RecoveryManager | None:
        """The effective recovery manager, normalising ``True``/``None``.

        ``True`` builds a manager with the default autosave interval;
        an explicit :class:`~repro.runtime.recovery.RecoveryManager`
        passes through untouched.
        """
        if isinstance(self.recovery, RecoveryManager):
            return self.recovery
        if self.recovery is True:
            return RecoveryManager(interval=self.DEFAULT_RECOVERY_INTERVAL)
        if self.recovery in (None, False):
            return None
        raise TypeError(
            f"recovery must be a RecoveryManager, True, False or None, "
            f"got {self.recovery!r}"
        )

    def supervision_config(self) -> SupervisionConfig | None:
        """The effective supervision settings, normalising ``True``/``None``.

        A recovery manager implies supervision (checkpoint autosave is a
        supervisor concern), so ``recovery`` alone also yields defaults.
        """
        if isinstance(self.supervision, SupervisionConfig):
            return self.supervision
        if self.supervision is True or (
            self.supervision is None and self.recovery not in (None, False)
        ):
            return SupervisionConfig()
        if self.supervision in (None, False):
            return None
        raise TypeError(
            f"supervision must be a SupervisionConfig, True, False or None, "
            f"got {self.supervision!r}"
        )


def create_engine(
    model: CaesarModel | SharedWorkload,
    config: EngineConfig | None = None,
    **overrides,
) -> CaesarEngine | ScheduledWorkloadEngine:
    """Build the right engine stack for ``model`` under ``config``.

    ``model`` may be a :class:`~repro.core.model.CaesarModel` (the normal
    case) or a :class:`~repro.optimizer.sharing.SharedWorkload` (the
    workload-sharing experiments), which yields a
    :class:`ScheduledWorkloadEngine`.  Keyword ``overrides`` replace
    individual fields of ``config`` (:func:`dataclasses.replace`), so call
    sites can share a base config and vary one knob.
    """
    if config is None:
        config = EngineConfig()
    elif not isinstance(config, EngineConfig):
        raise TypeError(
            f"config must be an EngineConfig or None, got {config!r}"
        )
    if overrides:
        valid = {f.name for f in dataclasses.fields(EngineConfig)}
        unknown = set(overrides) - valid
        if unknown:
            raise TypeError(
                f"create_engine() got unknown override(s) "
                f"{sorted(unknown)}; valid fields: {sorted(valid)}"
            )
        config = dataclasses.replace(config, **overrides)

    if isinstance(model, SharedWorkload):
        for name in (
            "supervision",
            "recovery",
            "preprocessors",
            "on_context_transition",
            "shedding",
        ):
            value = getattr(config, name)
            if value not in (None, (), False):
                raise TypeError(
                    f"EngineConfig.{name} does not apply to a SharedWorkload"
                )
        return ScheduledWorkloadEngine(
            model,
            context_aware=config.context_aware,
            seconds_per_cost_unit=config.seconds_per_cost_unit,
            observability=config.observability,
        )

    engine_kwargs = dict(
        optimize=config.optimize,
        context_aware=config.context_aware,
        retention=config.retention,
        aggregation=config.aggregation,
        partition_by=config.partition_by,
        seconds_per_cost_unit=config.seconds_per_cost_unit,
        gc_interval=config.gc_interval,
        preprocessors=tuple(config.preprocessors),
        on_context_transition=config.on_context_transition,
        backend=config.backend,
        observability=config.observability,
        shedding=config.shedding,
    )
    supervision = config.supervision_config()
    if supervision is None:
        return CaesarEngine(model, **engine_kwargs)
    return SupervisedEngine(
        model,
        failure_threshold=supervision.failure_threshold,
        cooldown=supervision.cooldown,
        dead_letters=supervision.dead_letters,
        recovery=config.recovery_manager(),
        validate_schemas=supervision.validate_schemas,
        **engine_kwargs,
    )
