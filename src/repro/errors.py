"""Exception hierarchy for the CAESAR reproduction.

Every error raised by this library derives from :class:`CaesarError`, so
applications can catch the whole family with a single ``except`` clause while
still being able to discriminate parse errors from runtime errors.
"""

from __future__ import annotations


class CaesarError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaError(CaesarError):
    """An event does not conform to its declared event type schema."""


class StreamOrderError(CaesarError):
    """Events were fed to a component out of timestamp order."""


class QueryLanguageError(CaesarError):
    """Base class for errors in CAESAR query language processing."""


class LexerError(QueryLanguageError):
    """The query text contains a character sequence that is not a token."""

    def __init__(self, message: str, position: int, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.position = position
        self.line = line
        self.column = column


class ParseError(QueryLanguageError):
    """The token stream does not conform to the CAESAR grammar (Fig. 4)."""


class CompileError(QueryLanguageError):
    """A syntactically valid query cannot be translated into algebra."""


class ModelError(CaesarError):
    """The CAESAR model is ill-formed (unknown contexts, missing default...)."""


class UnknownContextError(ModelError):
    """A query references a context type that the model does not declare."""

    def __init__(self, context_name: str):
        super().__init__(f"unknown context type: {context_name!r}")
        self.context_name = context_name


class PlanError(CaesarError):
    """A query plan is structurally invalid or cannot be constructed."""


class OptimizerError(CaesarError):
    """The optimizer was given inputs it cannot handle."""


class ExpressionError(CaesarError):
    """An expression references unknown attributes or mistypes operands."""


class RuntimeEngineError(CaesarError):
    """The execution infrastructure reached an inconsistent state."""


class TransactionOrderError(RuntimeEngineError):
    """Conflicting operations were scheduled out of timestamp order."""
