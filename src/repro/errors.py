"""Exception hierarchy for the CAESAR reproduction.

Every error raised by this library derives from :class:`CaesarError`, so
applications can catch the whole family with a single ``except`` clause while
still being able to discriminate parse errors from runtime errors.
"""

from __future__ import annotations


class CaesarError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaError(CaesarError):
    """An event does not conform to its declared event type schema.

    Besides the human-readable message, schema violations raised during
    payload validation carry structured fields so supervision layers (e.g.
    the dead-letter queue) can account for failures without parsing text:
    ``event_type`` (name of the violated type), ``field`` (the offending
    attribute), ``expected`` and ``actual`` (domain/type descriptions).
    Any of them may be ``None`` when the violation is not attributable to
    a single attribute.
    """

    def __init__(
        self,
        message: str,
        *,
        event_type: str | None = None,
        field: str | None = None,
        expected: str | None = None,
        actual: str | None = None,
    ):
        super().__init__(message)
        self.event_type = event_type
        self.field = field
        self.expected = expected
        self.actual = actual


class StreamOrderError(CaesarError):
    """Events were fed to a component out of timestamp order."""


class QueryLanguageError(CaesarError):
    """Base class for errors in CAESAR query language processing."""


class LexerError(QueryLanguageError):
    """The query text contains a character sequence that is not a token."""

    def __init__(self, message: str, position: int, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.position = position
        self.line = line
        self.column = column


class ParseError(QueryLanguageError):
    """The token stream does not conform to the CAESAR grammar (Fig. 4)."""


class CompileError(QueryLanguageError):
    """A syntactically valid query cannot be translated into algebra."""


class ModelError(CaesarError):
    """The CAESAR model is ill-formed (unknown contexts, missing default...)."""


class UnknownContextError(ModelError):
    """A query references a context type that the model does not declare."""

    def __init__(self, context_name: str):
        super().__init__(f"unknown context type: {context_name!r}")
        self.context_name = context_name


class PlanError(CaesarError):
    """A query plan is structurally invalid or cannot be constructed."""


class OptimizerError(CaesarError):
    """The optimizer was given inputs it cannot handle."""


class ExpressionError(CaesarError):
    """An expression references unknown attributes or mistypes operands."""


class RuntimeEngineError(CaesarError):
    """The execution infrastructure reached an inconsistent state."""


class TransactionOrderError(RuntimeEngineError):
    """Conflicting operations were scheduled out of timestamp order."""


class UnknownBackendError(RuntimeEngineError, ValueError):
    """An execution backend name not present in the backend registry.

    Also a :class:`ValueError`: the bad name typically arrives from user
    configuration (the ``backend=`` argument or the ``CAESAR_BACKEND``
    environment variable), and callers validating configuration catch
    ``ValueError``.  The message lists the valid names.
    """


class FatalEngineError(RuntimeEngineError):
    """An unrecoverable failure that must escape fault isolation.

    The supervision layer catches ordinary per-plan exceptions and
    quarantines the failing plan; errors of this class always propagate,
    aborting the run — the contract for simulated (and real) crashes.
    """


class CheckpointMismatchError(RuntimeEngineError):
    """A checkpoint does not fit the engine it is being restored into.

    Raised when the restoring engine's structure or configuration flags
    (contexts, default context, ``context_aware``, ``optimize``) differ
    from those recorded at capture time; the message names the mismatch.
    """
