"""Figure 12(b): varying the event stream rate (number of roads) — CA vs CI.

The paper increases the input rate by adding roads (2-7) at a fixed average
workload of 10 event queries and reports maximal latency: both engines grow
roughly linearly, the context-independent one much steeper — a 9-fold win at
7 roads.  CAESAR is more robust to rate increases because the rate increase
only hits it inside the critical windows.
"""

import pytest
from dataclasses import replace

from benchmarks.common import FigureTable, calibrate_seconds_per_cost_unit
from repro.linearroad.generator import LinearRoadConfig, generate_stream
from repro.linearroad.simulator import SegmentInterval
from repro.linearroad.queries import (
    build_traffic_model,
    replicate_workload,
    segment_partitioner,
)
from repro.runtime.baseline import ContextIndependentEngine
from repro.runtime.engine import CaesarEngine
from repro.runtime.metrics import win_ratio

ROAD_COUNTS = (1, 2, 3, 4)
REFERENCE_ROADS = 2
QUERIES = 10
DURATION_MINUTES = 10
SEGMENTS = 2


def make_stream(roads):
    base = LinearRoadConfig(
        num_roads=roads,
        segments_per_road=SEGMENTS,
        duration_minutes=DURATION_MINUTES,
        cars_clear=8,
        cars_congested=8,
        cars_accident=5,
        seed=37,
    )
    duration = base.duration_seconds
    windows = [(duration // 4 - 45, duration // 4 + 45),
               (3 * duration // 4 - 45, 3 * duration // 4 + 45)]
    schedule = tuple(
        SegmentInterval(xway, 0, seg, start, end)
        for xway in range(roads)
        for seg in range(SEGMENTS)
        for start, end in windows
    )
    return generate_stream(replace(base, accident_schedule=schedule))


def make_model():
    # only the accident-exclusive query replicates: copies == queries
    return replicate_workload(
        build_traffic_model(min_cars=6), QUERIES, contexts=("accident",)
    )


def make_engines(spc):
    caesar = CaesarEngine(
        make_model(),
        partition_by=segment_partitioner,
        seconds_per_cost_unit=spc,
        retention=120,
    )
    baseline = ContextIndependentEngine(
        make_model(),
        partition_by=segment_partitioner,
        seconds_per_cost_unit=spc,
        retention=120,
    )
    return caesar, baseline


@pytest.fixture(scope="module")
def spc():
    _, baseline = make_engines(None)
    report = baseline.run(make_stream(REFERENCE_ROADS), track_outputs=False)
    return calibrate_seconds_per_cost_unit(
        report.cost_units, stream_seconds=DURATION_MINUTES * 60
    )


@pytest.fixture(scope="module")
def fig12b_results(spc):
    rows = []
    for roads in ROAD_COUNTS:
        caesar, baseline = make_engines(spc)
        rows.append(
            (
                roads,
                caesar.run(make_stream(roads), track_outputs=False),
                baseline.run(make_stream(roads), track_outputs=False),
            )
        )
    return rows


def test_fig12b_stream_rate(fig12b_results, benchmark, spc):
    table = FigureTable(
        "Figure 12(b)", "max latency vs number of roads", "roads"
    )
    for roads, ca, ci in fig12b_results:
        table.add(
            roads,
            ca_s=ca.max_latency,
            ci_s=ci.max_latency,
            win=win_ratio(ci.max_latency, ca.max_latency),
        )
    table.show()

    ca = table.series("ca_s")
    ci = table.series("ci_s")

    # Shape 1: latency grows with the input rate for both engines.
    assert ci[-1] > ci[0]
    assert ca[-1] >= ca[0]

    # Shape 2: CAESAR always wins, and by a large factor at the top of the
    # sweep (the paper reports 9x at its top road count).
    assert all(a <= b for a, b in zip(ca, ci))
    top_win = ci[-1] / ca[-1]
    print(f"\nwin at {ROAD_COUNTS[-1]} roads: {top_win:.1f}x (paper: 9x at 7)")
    assert top_win >= 3.0

    # Shape 3: CAESAR is more robust to the rate increase — its latency
    # grows by a smaller factor across the sweep.
    assert (ca[-1] / max(ca[0], 1e-9)) < (ci[-1] / max(ci[0], 1e-9))

    benchmark(
        lambda: make_engines(spc)[0].run(
            make_stream(1), track_outputs=False
        )
    )
