"""Figure 10: event stream characterization.

(a) events per road segment of one unidirectional road — traffic, and hence
    derived tolls/warnings, varies across segments;
(b) events per minute for one segment — the rate ramps up over the run, and
    derived event types track the application contexts (accident warnings
    only during the accident phase, zero tolls before congestion, real tolls
    during congestion).
"""

import pytest

from benchmarks.common import FigureTable
from repro.linearroad.analysis import events_per_minute, events_per_segment
from repro.linearroad.generator import (
    LinearRoadConfig,
    generate_stream,
    paper_timeline_schedules,
    randomized_schedules,
)
from repro.linearroad.queries import build_traffic_model, segment_partitioner
from repro.runtime.engine import CaesarEngine


@pytest.fixture(scope="module")
def fig10a_data():
    """Randomized per-segment schedules: the Figure 10(a) variability."""
    config = randomized_schedules(
        LinearRoadConfig(
            num_roads=1, segments_per_road=8, duration_minutes=18, seed=17
        ),
        congestion_probability=0.6,
        accident_probability=0.3,
    )
    stream = generate_stream(config)
    # min_cars scaled to the simulator's (ramped) congested pool size
    engine = CaesarEngine(
        build_traffic_model(min_cars=8),
        partition_by=segment_partitioner,
        retention=120,
    )
    report = engine.run(stream)
    return stream, report


@pytest.fixture(scope="module")
def fig10b_data():
    """The paper's 3-phase timeline scaled down (accident then congestion)."""
    config = paper_timeline_schedules(
        LinearRoadConfig(
            num_roads=1, segments_per_road=1, duration_minutes=18, seed=17
        )
    )
    stream = generate_stream(config)
    engine = CaesarEngine(
        build_traffic_model(), partition_by=segment_partitioner, retention=120
    )
    report = engine.run(stream)
    return stream, report


def test_fig10a_events_per_segment(fig10a_data, benchmark):
    stream, report = fig10a_data
    inputs = events_per_segment(stream)
    outputs = events_per_segment(report.outputs)

    table = FigureTable(
        "Figure 10(a)", "events per road segment", "segment"
    )
    for seg in sorted(inputs):
        table.add(
            seg,
            position_reports=inputs[seg].get("PositionReport", 0),
            toll_notifications=outputs.get(seg, {}).get("TollNotification", 0),
            accident_warnings=outputs.get(seg, {}).get("AccidentWarning", 0),
            zero_tolls=outputs.get(seg, {}).get("ZeroTollNotification", 0),
        )
    table.show()

    # Shape: event distribution varies across segments — some segments see
    # tolls/warnings, others none.
    tolls = table.series("toll_notifications")
    assert max(tolls) > 0
    assert len(set(tolls)) > 1

    benchmark(lambda: events_per_segment(stream))


def test_fig10b_events_per_minute(fig10b_data, benchmark):
    stream, report = fig10b_data
    inputs = events_per_minute(stream, seg=0)
    outputs = events_per_minute(report.outputs, seg=None)

    table = FigureTable(
        "Figure 10(b)", "events per minute (1 segment)", "minute"
    )
    duration_minutes = max(inputs) + 1
    for minute in range(duration_minutes):
        table.add(
            minute,
            position_reports=inputs.get(minute, {}).get("PositionReport", 0),
            zero_tolls=outputs.get(minute, {}).get("ZeroTollNotification", 0),
            real_tolls=outputs.get(minute, {}).get("TollNotification", 0),
            warnings=outputs.get(minute, {}).get("AccidentWarning", 0),
        )
    table.show()

    # Shape 1: input rate ramps up over the run.
    reports = table.series("position_reports")
    assert sum(reports[-3:]) > sum(reports[:3])

    # Shape 2: accident warnings only in the accident phase (scaled 30-50 of
    # 180 → minutes 3-5 of 18), real tolls only in the congestion phase
    # (scaled 70-180 → minutes 7-18).
    warnings = table.series("warnings")
    accident_phase = range(2, 6)
    assert all(
        w == 0 for m, w in enumerate(warnings) if m not in accident_phase
    )
    real_tolls = table.series("real_tolls")
    congestion_start = round(duration_minutes * 70 / 180)
    assert all(t == 0 for t in real_tolls[: congestion_start - 1])
    assert sum(real_tolls[congestion_start + 1 :]) > 0

    # Shape 3: zero tolls only before the congestion phase.
    zero_tolls = table.series("zero_tolls")
    assert sum(zero_tolls[:congestion_start]) > 0
    assert all(t == 0 for t in zero_tolls[congestion_start + 1 :])

    benchmark(lambda: events_per_minute(stream, seg=0))
