"""Figure 12(d): varying the number of context windows — win ratio.

Same trend as Figure 12(c): the win ratio of context-aware over
context-independent processing exceeds 2 while the windows that allow
suspension cover more than 80% of the input stream, and becomes negligible
(≈1) when they cover less than 50%.  Here the knob is the *number* of
critical windows at a fixed per-window length.
"""

import pytest
from dataclasses import replace

from benchmarks.common import FigureTable
from repro.linearroad.generator import LinearRoadConfig, generate_stream
from repro.linearroad.simulator import SegmentInterval
from repro.linearroad.queries import (
    build_traffic_model,
    replicate_workload,
    segment_partitioner,
)
from repro.runtime.baseline import ContextIndependentEngine
from repro.runtime.engine import CaesarEngine

WINDOW_COUNTS = (1, 2, 4, 6, 8)
WINDOW_LENGTH = 60  # seconds, stats-aligned
DURATION_MINUTES = 10
SEGMENTS = 3
COPIES = 10


def make_stream(count):
    base = LinearRoadConfig(
        num_roads=1,
        segments_per_road=SEGMENTS,
        duration_minutes=DURATION_MINUTES,
        cars_clear=8,
        cars_congested=8,
        cars_accident=8,
        seed=43,
    )
    duration = base.duration_seconds
    stride = duration // count
    schedule = []
    for index in range(count):
        start = index * stride + (stride - WINDOW_LENGTH) // 2
        start = (start // 30) * 30  # align to the report grid
        schedule.extend(
            SegmentInterval(0, 0, seg, start, start + WINDOW_LENGTH)
            for seg in range(SEGMENTS)
        )
    return generate_stream(replace(base, accident_schedule=tuple(schedule)))


def suspension_coverage(count):
    return 1.0 - (count * WINDOW_LENGTH) / (DURATION_MINUTES * 60)


def run_pair(count):
    def fresh_engine(kind):
        model = replicate_workload(
            build_traffic_model(min_cars=6), COPIES, contexts=("accident",)
        )
        return kind(model, partition_by=segment_partitioner, retention=120)

    ca_report = fresh_engine(CaesarEngine).run(
        make_stream(count), track_outputs=False
    )
    ci_report = fresh_engine(ContextIndependentEngine).run(
        make_stream(count), track_outputs=False
    )
    return ca_report, ci_report


@pytest.fixture(scope="module")
def fig12d_results():
    return {count: run_pair(count) for count in WINDOW_COUNTS}


def test_fig12d_window_number(fig12d_results, benchmark):
    table = FigureTable(
        "Figure 12(d)", "win ratio vs context window number", "windows"
    )
    for count in WINDOW_COUNTS:
        ca, ci = fig12d_results[count]
        table.add(
            count,
            suspension_pct=100 * suspension_coverage(count),
            cpu_win=ci.cost_units / ca.cost_units,
        )
    table.show()

    wins = table.series("cpu_win")
    coverages = [suspension_coverage(count) for count in WINDOW_COUNTS]

    # Shape 1: more critical windows → less suspension → smaller win.
    assert all(a >= b * 0.98 for a, b in zip(wins, wins[1:]))

    # Shape 2: the paper's thresholds — win above 2 at >80% coverage,
    # negligible below 50%.
    for coverage, win in zip(coverages, wins):
        if coverage > 0.8:
            assert win > 2.0, f"win {win:.2f} at coverage {coverage:.0%}"
        if coverage < 0.5:
            assert win < 2.0, f"win {win:.2f} at coverage {coverage:.0%}"

    benchmark(lambda: run_pair(WINDOW_COUNTS[0]))
