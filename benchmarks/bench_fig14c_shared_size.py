"""Figure 14(c): varying the shared workload size — LR and PAM.

The paper sweeps the number of sharable event queries per context window
(2-10): the more of the window's workload can be shared, the bigger the
sharing gain (9× at 10 queries on Linear Road; the PAM data set shows the
same trend).  Each window here carries the sweep's sharable queries plus
one window-specific query, so the shared fraction — not just the total
workload — grows along the x-axis.
"""

import pytest

from benchmarks.bench_fig14_common import (
    lr_event_stream,
    make_window_specs,
    run_pair,
)
from benchmarks.common import FigureTable
from repro.core.windows import WindowSpec
from repro.language import parse_query
from repro.pam.generator import PamConfig, generate_pam_stream

SHARED_SIZES = (2, 4, 6, 8, 10)
WINDOW_COUNT = 10
WINDOW_LENGTH = 300
STRIDE = 10  # all windows overlap heavily
DURATION = 30 + WINDOW_LENGTH + (WINDOW_COUNT - 1) * STRIDE + 60


def lr_specs(shared_size):
    from benchmarks.bench_fig14_common import (
        shared_query,
        window_specific_query,
    )

    shared = tuple(shared_query(i) for i in range(shared_size))
    specs = []
    for index in range(WINDOW_COUNT):
        queries = shared
        if index % 2 == 0:  # every other window holds one unsharable query
            queries = shared + (window_specific_query(index),)
        specs.append(
            WindowSpec(
                name=f"w{index}",
                start=30 + index * STRIDE,
                end=30 + index * STRIDE + WINDOW_LENGTH,
                queries=queries,
            )
        )
    return specs


def pam_shared_query(index):
    threshold = 60 + 8 * index
    return parse_query(
        f"DERIVE PamShared{index}(r.subject, r.sec) PATTERN ActivityReport r "
        f"WHERE r.heart_rate > {threshold}",
        name=f"pam_shared_{index}",
    )


def pam_own_query(index):
    return parse_query(
        f"DERIVE PamOwn{index}(r.subject, r.sec) PATTERN ActivityReport r "
        f"WHERE r.subject > {index % 3}",
        name=f"pam_own_{index}",
    )


def pam_specs(shared_size):
    shared = tuple(pam_shared_query(i) for i in range(shared_size))
    specs = []
    for index in range(WINDOW_COUNT):
        queries = shared
        if index % 2 == 0:
            queries = shared + (pam_own_query(index),)
        specs.append(
            WindowSpec(
                name=f"pw{index}",
                start=30 + index * STRIDE,
                end=30 + index * STRIDE + WINDOW_LENGTH,
                queries=queries,
            )
        )
    return specs


def lr_stream():
    return lr_event_stream(DURATION)


def pam_stream():
    return generate_pam_stream(
        PamConfig(
            num_subjects=3,
            duration_minutes=max(1, DURATION // 60),
            seed=59,
        )
    )


@pytest.fixture(scope="module")
def fig14c_results():
    rows = []
    for size in SHARED_SIZES:
        lr_shared, lr_nonshared = run_pair(
            lr_specs(size), lr_stream, seconds_per_cost_unit=None
        )
        pam_shared, pam_nonshared = run_pair(
            pam_specs(size), pam_stream, seconds_per_cost_unit=None
        )
        rows.append((size, lr_shared, lr_nonshared, pam_shared, pam_nonshared))
    return rows


def test_fig14c_shared_size(fig14c_results, benchmark):
    table = FigureTable(
        "Figure 14(c)", "sharing gain vs shared workload size", "queries"
    )
    for size, lr_s, lr_n, pam_s, pam_n in fig14c_results:
        table.add(
            size,
            lr_gain=lr_n.cost_units / lr_s.cost_units,
            pam_gain=pam_n.cost_units / pam_s.cost_units,
        )
    table.show()

    lr_gains = table.series("lr_gain")
    pam_gains = table.series("pam_gain")

    # Shape 1: the gain grows with the shared workload size on both data
    # sets (the window-specific query's fixed cost dilutes less and less).
    assert all(b > a for a, b in zip(lr_gains, lr_gains[1:]))
    assert all(b > a for a, b in zip(pam_gains, pam_gains[1:]))

    # Shape 2: a many-fold gain at 10 shared queries (paper: 9x on LR).
    print(
        f"\ngain at 10 shared queries — LR: {lr_gains[-1]:.1f}x (paper 9x), "
        f"PAM: {pam_gains[-1]:.1f}x"
    )
    assert lr_gains[-1] >= 5.0
    assert pam_gains[-1] >= 5.0

    benchmark(
        lambda: run_pair(
            lr_specs(SHARED_SIZES[0]), lr_stream, seconds_per_cost_unit=None
        )
    )
