"""Load shedding under burst overload: bounded latency vs backlog growth.

Two concurrently active contexts — high-priority ``ops`` (derives Alert
from telemetry) and low-priority ``audit`` (digests a high-rate noise
feed) — and a noise burst that pushes the audit workload past the
engine's service rate.  ``seconds_per_cost_unit`` makes service time a
deterministic function of plan cost, so the backlog model — and
therefore every number below — is reproducible without a wall clock.

Two runs of the identical stream:

* **unshedded** — an observe-only shedder (``fixed_pressure=0.0``) that
  admits everything and just records the backlog trajectory.  During the
  burst the backlog grows monotonically: an unbounded queue.
* **shed-on** — the PID controller targets ``LATENCY_TARGET`` seconds of
  backlog; past the suspension threshold it suspends the low-priority
  ``audit`` context, shedding its feed while ``ops`` runs untouched.

The run asserts the overload contract before printing any number: the
shed run's protected outputs (Alert derivations, whose lineage never
leaves protected types) equal the unshedded run's, the unshedded backlog
peak is far beyond target, and the shed run's peak stays an order of
magnitude below it.  ``make bench-shedding`` runs :func:`main`, whose
numbers are the ones recorded in ``docs/benchmarks.md``.
"""

from repro.core.model import CaesarModel
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.events.types import EventType
from repro.language import parse_query
from repro.runtime import CaesarEngine
from repro.runtime.shedding import SheddingConfig

TELEMETRY = EventType.define("ShedBenchTelemetry", value="int", sec="int")
NOISE = EventType.define("ShedBenchNoise", n="int", sec="int")
OPS_ON = EventType.define("ShedBenchOpsOn", level="int")
AUDIT_ON = EventType.define("ShedBenchAuditOn", level="int")

#: simulated seconds of service per plan cost unit
SERVICE_PER_COST = 0.05
#: backlog the controller defends (seconds of unserved work)
LATENCY_TARGET = 0.5
#: short retention keeps the single-event pattern's history (and hence
#: per-batch cost) proportional to the recent arrival rate
RETENTION = 10
GC_INTERVAL = 5

DURATION = 120
BURST_START, BURST_END = 30, 90
BASE_NOISE, BURST_NOISE = 4, 120


def build_model():
    model = CaesarModel(default_context="idle")
    model.add_context("ops")
    model.add_context("audit")
    model.add_query(parse_query(
        "INITIATE CONTEXT ops PATTERN ShedBenchOpsOn s "
        "WHERE s.level > 0 CONTEXT idle", name="ops-on"))
    # opened from ops, so both non-default contexts stay active together
    model.add_query(parse_query(
        "INITIATE CONTEXT audit PATTERN ShedBenchAuditOn s "
        "WHERE s.level > 0 CONTEXT ops", name="audit-on"))
    model.add_query(parse_query(
        "DERIVE Alert(t.value) PATTERN ShedBenchTelemetry t "
        "WHERE t.value > 700 CONTEXT ops", name="alert"))
    model.add_query(parse_query(
        "DERIVE Digest(n.n) PATTERN ShedBenchNoise n "
        "WHERE n.n >= 0 CONTEXT audit", name="digest"))
    return model


def burst_stream():
    """Steady telemetry plus an audit-feed burst past the service rate."""
    events = [Event(OPS_ON, 0, {"level": 1})]
    for sec in range(DURATION):
        if sec == 1:
            events.append(Event(AUDIT_ON, sec, {"level": 1}))
        events.append(
            Event(TELEMETRY, sec, {"value": (sec * 211) % 1000, "sec": sec})
        )
        noise = BURST_NOISE if BURST_START <= sec < BURST_END else BASE_NOISE
        for n in range(noise):
            events.append(Event(NOISE, sec, {"n": n, "sec": sec}))
    return events


def run_once(shedding):
    engine = CaesarEngine(
        build_model(),
        seconds_per_cost_unit=SERVICE_PER_COST,
        shedding=shedding,
        observability="off",
        retention=RETENTION,
        gc_interval=GC_INTERVAL,
    )
    report = engine.run(EventStream(burst_stream()))
    return engine, report


def observe_only_config():
    return SheddingConfig(
        latency_target=LATENCY_TARGET,
        fixed_pressure=0.0,
        record_decisions=True,
        seed=2016,
    )


def shed_config():
    return SheddingConfig(
        latency_target=LATENCY_TARGET,
        context_priorities={"ops": 0.9, "audit": 0.1},
        suspend_pressure=0.9,
        suspend_below_priority=0.5,
        record_decisions=True,
        seed=2016,
    )


def alert_count(report):
    return report.outputs_by_type.get("Alert", 0)


class TestOverloadContract:
    def test_unshedded_backlog_grows_through_the_burst(self):
        engine, report = run_once(observe_only_config())
        assert report.shed_events == 0
        trajectory = [
            b for t, b in engine.shedder.backlog_trajectory
            if BURST_START < t < BURST_END
        ]
        # monotone growth while the burst outpaces the drain
        assert all(
            later >= earlier
            for earlier, later in zip(trajectory, trajectory[1:])
        )
        assert engine.shedder.backlog_peak > 10 * LATENCY_TARGET

    def test_suspension_bounds_the_backlog(self):
        baseline = run_once(observe_only_config())
        engine, report = run_once(shed_config())
        assert report.shed_events > 0
        assert "audit" in engine.shedder.suspended_contexts
        assert "ops" not in engine.shedder.suspended_contexts
        assert report.shed_by_class.get("suspended", 0) > 0
        # orders of magnitude below the unshedded peak
        off_engine, _ = baseline
        assert (
            engine.shedder.backlog_peak < off_engine.shedder.backlog_peak / 10
        )
        # protected derivations survive intact
        _, off_report = baseline
        assert alert_count(report) == alert_count(off_report)


def main():
    """Standalone entry point: ``make bench-shedding``."""
    from benchmarks.common import FigureTable

    off_engine, off_report = run_once(observe_only_config())
    on_engine, on_report = run_once(shed_config())

    assert alert_count(on_report) == alert_count(off_report), (
        "shedding changed the protected Alert derivations"
    )
    assert off_engine.shedder.backlog_peak > 10 * LATENCY_TARGET
    assert on_engine.shedder.backlog_peak < off_engine.shedder.backlog_peak / 10

    table = FigureTable(
        "Overload",
        f"audit feed x{BURST_NOISE // BASE_NOISE} for "
        f"{BURST_END - BURST_START}s, latency target "
        f"{LATENCY_TARGET:g}s (simulated service clock)",
        "mode",
    )
    for mode, engine, report in (
        ("unshedded", off_engine, off_report),
        ("shed-on", on_engine, on_report),
    ):
        table.add(
            mode,
            backlog_peak_s=engine.shedder.backlog_peak,
            shed_events=report.shed_events,
            protected=report.protected_events,
            alerts=alert_count(report),
        )
    table.show()


if __name__ == "__main__":
    main()
