"""Shared setup for the Figure 14 workload-sharing experiments.

The experiments execute a *scheduled* workload: user-defined context
windows with known bounds carrying (partially identical) query workloads,
run either shared — the grouping algorithm splits overlapping windows and
each distinct query executes once (Section 5.3) — or non-shared, with one
plan instance per (window, query) pair.

Each window carries ``shared_queries`` queries with identical work
signatures across windows (sharable) plus one window-specific query (never
sharable), matching the paper's setups where overlapping context windows
hold partially identical workloads (Figure 7).
"""

from __future__ import annotations

from repro.core.windows import WindowSpec
from repro.events.stream import EventStream
from repro.language import parse_query
from repro.linearroad.generator import LinearRoadConfig, generate_stream
from repro.optimizer.sharing import (
    SharedWorkload,
    build_nonshared_workload,
    build_shared_workload,
)
from repro.runtime.engine import ScheduledWorkloadEngine


def lr_event_stream(duration_seconds: int, *, seed: int = 53) -> EventStream:
    """A steady position-report stream (no scheduled regimes needed — the
    scheduled engine activates plans by time, not by context derivation)."""
    config = LinearRoadConfig(
        num_roads=1,
        segments_per_road=2,
        duration_minutes=max(1, duration_seconds // 60),
        cars_clear=8,
        ramp_start_fraction=1.0,  # constant rate isolates the sharing effect
        seed=seed,
    )
    return generate_stream(config)


def shared_query(index: int):
    """Query ``index`` of the sharable workload (same in every window)."""
    threshold = 20 + 3 * index
    return parse_query(
        f"DERIVE Shared{index}(p.vid, p.sec) PATTERN PositionReport p "
        f"WHERE p.speed > {threshold}",
        name=f"shared_{index}",
    )


def window_specific_query(window_index: int):
    return parse_query(
        f"DERIVE Own{window_index}(p.vid, p.sec) PATTERN PositionReport p "
        f"WHERE p.vid > {window_index}",
        name=f"own_{window_index}",
    )


def make_window_specs(
    *,
    count: int,
    length: int,
    stride: int,
    shared_queries: int,
    start_offset: int = 0,
    with_specific: bool = False,
) -> list[WindowSpec]:
    """``count`` windows of ``length`` seconds, consecutive starts ``stride``
    apart (overlap = length - stride when positive).

    With ``with_specific`` each window additionally carries one query only
    it holds (never sharable) — the Figure 14(c) setup, where the *shared
    fraction* of the workload is the variable.
    """
    shared = tuple(shared_query(i) for i in range(shared_queries))
    specs = []
    for index in range(count):
        start = start_offset + index * stride
        queries = shared
        if with_specific:
            queries = shared + (window_specific_query(index),)
        specs.append(
            WindowSpec(
                name=f"w{index}",
                start=start,
                end=start + length,
                queries=queries,
            )
        )
    return specs


def run_workload(
    workload: SharedWorkload,
    stream: EventStream,
    *,
    seconds_per_cost_unit: float | None,
):
    engine = ScheduledWorkloadEngine(
        workload, seconds_per_cost_unit=seconds_per_cost_unit
    )
    return engine.run(stream, track_outputs=False)


def run_pair(specs, stream_factory, *, seconds_per_cost_unit=None):
    shared_report = run_workload(
        build_shared_workload(specs),
        stream_factory(),
        seconds_per_cost_unit=seconds_per_cost_unit,
    )
    nonshared_report = run_workload(
        build_nonshared_workload(specs),
        stream_factory(),
        seconds_per_cost_unit=seconds_per_cost_unit,
    )
    return shared_report, nonshared_report
