"""Figure 12(c): varying the context window length — win ratio of CA over CI.

The paper varies the length of the critical context windows and reports the
win ratio of context-aware over context-independent processing, annotating
each bar with the percentage of the input event stream covered by the
context windows *that allow suspension* of the complex workload: the win
exceeds 3 when those windows cover more than 80% of the stream and becomes
negligible (≈1) when they cover less than 50%.

We report the deterministic CPU-processing-time win ratio (Section 7.1
measures the win in CPU terms), which needs no latency calibration.
"""

import pytest
from dataclasses import replace

from benchmarks.common import FigureTable
from repro.linearroad.generator import LinearRoadConfig, generate_stream
from repro.linearroad.simulator import SegmentInterval
from repro.linearroad.queries import (
    build_traffic_model,
    replicate_workload,
    segment_partitioner,
)
from repro.runtime.baseline import ContextIndependentEngine
from repro.runtime.engine import CaesarEngine

#: Lengths of each of the two critical windows (seconds), aligned to the
#: per-minute statistics granularity that drives context detection.
WINDOW_LENGTHS = (60, 90, 120, 180, 240)
DURATION_MINUTES = 10
SEGMENTS = 3
COPIES = 10  # 10 suspendable queries (one accident-exclusive query/copy)


def make_stream(length_seconds):
    base = LinearRoadConfig(
        num_roads=1,
        segments_per_road=SEGMENTS,
        duration_minutes=DURATION_MINUTES,
        cars_clear=8,
        cars_congested=8,
        cars_accident=8,
        seed=41,
    )
    duration = base.duration_seconds
    half = length_seconds // 2
    centers = (duration // 4, 3 * duration // 4)
    schedule = tuple(
        SegmentInterval(0, 0, seg, center - half, center - half + length_seconds)
        for seg in range(SEGMENTS)
        for center in centers
    )
    return generate_stream(replace(base, accident_schedule=schedule))


def suspension_coverage(length_seconds):
    """Fraction of the stream during which the workload is suspended."""
    return 1.0 - (2 * length_seconds) / (DURATION_MINUTES * 60)


def run_pair(length_seconds):
    model = replicate_workload(
        build_traffic_model(min_cars=6), COPIES, contexts=("accident",)
    )
    caesar = CaesarEngine(
        model, partition_by=segment_partitioner, retention=120
    )
    ca_report = caesar.run(make_stream(length_seconds), track_outputs=False)
    model = replicate_workload(
        build_traffic_model(min_cars=6), COPIES, contexts=("accident",)
    )
    baseline = ContextIndependentEngine(
        model, partition_by=segment_partitioner, retention=120
    )
    ci_report = baseline.run(make_stream(length_seconds), track_outputs=False)
    return ca_report, ci_report


@pytest.fixture(scope="module")
def fig12c_results():
    return {
        length: run_pair(length) for length in WINDOW_LENGTHS
    }


def test_fig12c_window_length(fig12c_results, benchmark):
    table = FigureTable(
        "Figure 12(c)", "win ratio vs context window length", "window_s"
    )
    for length in WINDOW_LENGTHS:
        ca, ci = fig12c_results[length]
        table.add(
            length,
            suspension_pct=100 * suspension_coverage(length),
            cpu_win=ci.cost_units / ca.cost_units,
        )
    table.show()

    wins = table.series("cpu_win")
    coverages = [suspension_coverage(length) for length in WINDOW_LENGTHS]

    # Shape 1: the win shrinks as the critical windows grow (less stream
    # left to suspend in).
    assert all(a >= b * 0.98 for a, b in zip(wins, wins[1:]))

    # Shape 2: the paper's thresholds — win above ~3 at >80% suspension
    # coverage, negligible below 50%.
    for coverage, win in zip(coverages, wins):
        if coverage > 0.8:
            assert win > 2.5, f"win {win:.2f} at coverage {coverage:.0%}"
        if coverage < 0.5:
            assert win < 2.0, f"win {win:.2f} at coverage {coverage:.0%}"

    benchmark(lambda: run_pair(WINDOW_LENGTHS[0]))
