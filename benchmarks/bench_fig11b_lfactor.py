"""Figure 11(b): L-factor — optimized vs non-optimized query plan.

The paper varies the input rate by adding roads and measures maximal
latency against the benchmark's 5-second constraint: the push-down-optimized
plan sustains more roads (7) than the non-optimized plan (5).

Setup: the Figure 10(b) timeline gives every segment a clear phase, an
accident phase and a congestion phase, each with its own workload
(replicated 3×).  At any instant a segment is in only one or two contexts,
so the optimized plan — whose pushed-down context windows suspend every
inactive workload — serves each batch with a fraction of the work the
non-optimized plan spends busy-waiting through *all* workloads.  Maximal
latency is therefore ≈ the worst batch service time, which grows linearly
with the number of roads for both plans but ~3× steeper for the
non-optimized one — so it crosses the 5 s line at a smaller road count.

Both engines route every batch to every plan (``context_aware=False``); the
*only* difference is the context window position.  The cost scale is
calibrated once: the non-optimized engine at the reference road count gets
a steady batch service time of ≈4 s (just under the constraint), per the
methodology note in ``benchmarks/common.py``.
"""

import pytest

from benchmarks.common import FigureTable, calibrate_seconds_per_cost_unit
from repro.linearroad.generator import (
    LinearRoadConfig,
    generate_stream,
    paper_timeline_schedules,
)
from repro.linearroad.queries import (
    build_traffic_model,
    replicate_workload,
    segment_partitioner,
)
from repro.linearroad.schema import LATENCY_CONSTRAINT_SECONDS
from repro.runtime.engine import CaesarEngine

ROAD_COUNTS = (1, 2, 3, 4)
REFERENCE_ROADS = 2
DURATION_MINUTES = 10
SEGMENTS = 2
#: Steady batch service time for the non-optimized reference: just under
#: the 5 s constraint, so adding roads pushes it over.
REFERENCE_UTILIZATION = 4.0 / 30.0


def make_stream(roads):
    config = paper_timeline_schedules(
        LinearRoadConfig(
            num_roads=roads,
            segments_per_road=SEGMENTS,
            duration_minutes=DURATION_MINUTES,
            cars_clear=8,
            cars_congested=10,
            cars_accident=6,
            seed=23,
        )
    )
    return generate_stream(config)


def make_model():
    return replicate_workload(build_traffic_model(min_cars=6), 3)


def make_engine(optimized, spc):
    return CaesarEngine(
        make_model(),
        optimize=optimized,
        context_aware=False,  # isolate the push-down: everything is routed
        partition_by=segment_partitioner,
        seconds_per_cost_unit=spc,
        retention=120,
    )


@pytest.fixture(scope="module")
def spc():
    probe = make_engine(optimized=False, spc=None)
    report = probe.run(make_stream(REFERENCE_ROADS), track_outputs=False)
    return calibrate_seconds_per_cost_unit(
        report.cost_units,
        stream_seconds=DURATION_MINUTES * 60,
        utilization=REFERENCE_UTILIZATION,
    )


@pytest.fixture(scope="module")
def fig11b_results(spc):
    rows = []
    for roads in ROAD_COUNTS:
        optimized = make_engine(True, spc).run(
            make_stream(roads), track_outputs=False
        )
        non_optimized = make_engine(False, spc).run(
            make_stream(roads), track_outputs=False
        )
        rows.append((roads, optimized, non_optimized))
    return rows


def l_factor(series):
    result = 0
    for roads, latency in zip(ROAD_COUNTS, series):
        if latency <= LATENCY_CONSTRAINT_SECONDS:
            result = roads
        else:
            break
    return result


def test_fig11b_lfactor(fig11b_results, benchmark, spc):
    table = FigureTable(
        "Figure 11(b)", "max latency vs number of roads (L-factor)", "roads"
    )
    for roads, optimized, non_optimized in fig11b_results:
        table.add(
            roads,
            optimized_s=optimized.max_latency,
            non_optimized_s=non_optimized.max_latency,
        )
    table.show()

    optimized = table.series("optimized_s")
    non_optimized = table.series("non_optimized_s")

    # Shape 1: the non-optimized plan is always at least as slow.
    assert all(n >= o * 0.99 for o, n in zip(optimized, non_optimized))

    # Shape 2: the optimized plan sustains more roads within the 5s
    # constraint (the paper reports 7 vs 5).
    l_optimized = l_factor(optimized)
    l_non_optimized = l_factor(non_optimized)
    print(
        f"\nL-factor: optimized={l_optimized} roads, "
        f"non-optimized={l_non_optimized} roads "
        f"(constraint {LATENCY_CONSTRAINT_SECONDS}s)"
    )
    assert l_optimized > l_non_optimized

    # Shape 3: latency grows with the number of roads for both plans.
    assert non_optimized[-1] > non_optimized[0]
    assert optimized[-1] > optimized[0]

    benchmark(
        lambda: make_engine(True, spc).run(
            make_stream(1), track_outputs=False
        )
    )
