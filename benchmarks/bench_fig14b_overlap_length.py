"""Figure 14(b): varying the length of the context window overlap.

The paper fixes 30 windows of 15 minutes and sweeps the minimal overlap
length (0-16 minutes): the sharing gain grows roughly linearly with the
overlap — the longer two windows overlap, the longer their shared queries
execute once instead of twice (6× at 15 minutes in the paper).

Scaled setup: windows of 120 s whose consecutive overlap sweeps 0-105 s.
"""

import pytest

from benchmarks.bench_fig14_common import (
    lr_event_stream,
    make_window_specs,
    run_pair,
)
from benchmarks.common import FigureTable, calibrate_seconds_per_cost_unit
from repro.optimizer.sharing import build_nonshared_workload
from repro.runtime.engine import ScheduledWorkloadEngine

OVERLAPS = (0, 30, 60, 90, 105)
WINDOW_COUNT = 10
WINDOW_LENGTH = 120
SHARED_QUERIES = 4


def make_specs(overlap):
    return make_window_specs(
        count=WINDOW_COUNT,
        length=WINDOW_LENGTH,
        stride=WINDOW_LENGTH - overlap,
        shared_queries=SHARED_QUERIES,
        start_offset=30,
    )


def total_seconds():
    # the longest span occurs at zero overlap
    return 30 + WINDOW_LENGTH + (WINDOW_COUNT - 1) * WINDOW_LENGTH + 60


def make_stream():
    return lr_event_stream(total_seconds())


@pytest.fixture(scope="module")
def spc():
    workload = build_nonshared_workload(make_specs(OVERLAPS[-1]))
    engine = ScheduledWorkloadEngine(workload)
    report = engine.run(make_stream(), track_outputs=False)
    return calibrate_seconds_per_cost_unit(
        report.cost_units, stream_seconds=total_seconds(), utilization=0.5
    )


@pytest.fixture(scope="module")
def fig14b_results(spc):
    rows = []
    for overlap in OVERLAPS:
        shared, nonshared = run_pair(
            make_specs(overlap), make_stream, seconds_per_cost_unit=spc
        )
        rows.append((overlap, shared, nonshared))
    return rows


def test_fig14b_overlap_length(fig14b_results, benchmark, spc):
    table = FigureTable(
        "Figure 14(b)", "max latency vs overlap length", "overlap_s"
    )
    for overlap, shared, nonshared in fig14b_results:
        table.add(
            overlap,
            shared_s=shared.max_latency,
            nonshared_s=nonshared.max_latency,
            gain=nonshared.max_latency / max(shared.max_latency, 1e-9),
        )
    table.show()

    gains = table.series("gain")

    # Shape 1: no overlap → nothing to share → gain ≈ 1.
    assert gains[0] < 1.3

    # Shape 2: the gain grows with the overlap length.
    assert all(b >= a * 0.95 for a, b in zip(gains, gains[1:]))

    # Shape 3: a many-fold gain at the longest overlap (paper: 6x at 15 of
    # 15 minutes; our top overlap is 105 of 120 seconds → multiplicity 8).
    print(f"\ngain at {OVERLAPS[-1]}s overlap: {gains[-1]:.1f}x (paper: 6x)")
    assert gains[-1] >= 4.0

    benchmark(
        lambda: run_pair(
            make_specs(OVERLAPS[0]), make_stream, seconds_per_cost_unit=spc
        )
    )
