"""Figure 11(a): optimizer efficiency — exhaustive CI vs greedy CA search.

The paper varies the number of operators in a query plan (16-24 on their
hardware) and reports the CPU time of the query plan search on a log2 scale:
the context-independent exhaustive search grows exponentially while the
context-aware search stays fairly constant (2^12-fold faster at size 24).

Our exact search is the O(2^n·n) subset-DP (the cheapest exhaustive
algorithm), so we sweep a slightly smaller range to keep the suite fast —
the exponential-vs-flat shape and a multi-thousand-fold node-count gap are
what the figure demonstrates.
"""

import math

import pytest

from benchmarks.common import FigureTable
from repro.optimizer.search import (
    context_aware_search,
    exhaustive_search,
    greedy_search,
    make_search_space,
)

SIZES = (10, 12, 14, 16, 18)
GROUPS = 4  # context windows per workload → groups after window grouping


@pytest.fixture(scope="module")
def fig11a_results():
    rows = []
    for size in SIZES:
        operators = make_search_space(size, seed=7, num_groups=GROUPS)
        exhaustive = exhaustive_search(operators)
        context_aware = context_aware_search(operators)
        rows.append((size, exhaustive, context_aware))
    return rows


def test_fig11a_search_time(fig11a_results, benchmark):
    table = FigureTable(
        "Figure 11(a)", "optimizer CPU time (log2 seconds)", "operators"
    )
    for size, exhaustive, context_aware in fig11a_results:
        table.add(
            size,
            exhaustive_log2s=math.log2(max(exhaustive.elapsed_seconds, 1e-9)),
            ca_log2s=math.log2(max(context_aware.elapsed_seconds, 1e-9)),
            exhaustive_nodes=float(exhaustive.nodes_explored),
            ca_nodes=float(context_aware.nodes_explored),
            speedup=exhaustive.elapsed_seconds
            / max(context_aware.elapsed_seconds, 1e-9),
        )
    table.show()

    # Shape 1: exhaustive node count grows exponentially with plan size.
    nodes = table.series("exhaustive_nodes")
    for smaller, larger in zip(nodes, nodes[1:]):
        assert larger > smaller * 3  # each +2 operators ≥ 3x nodes

    # Shape 2: the context-aware search stays nearly flat.
    ca_nodes = table.series("ca_nodes")
    assert max(ca_nodes) < min(ca_nodes) * 5

    # Shape 3: a very large speedup at the top of the sweep (the paper
    # reports 2^12 at their largest size).
    speedups = table.series("speedup")
    assert speedups[-1] > 100

    benchmark(
        lambda: context_aware_search(
            make_search_space(SIZES[-1], seed=7, num_groups=GROUPS)
        )
    )


def test_fig11a_exhaustive_point(benchmark):
    """Benchmark one exhaustive-search point (the expensive side)."""
    operators = make_search_space(14, seed=7, num_groups=GROUPS)
    result = benchmark(lambda: exhaustive_search(operators))
    assert result.cost > 0


def test_fig11a_search_quality(fig11a_results, benchmark):
    """The cheap search must not be winning by returning garbage plans:
    within each context group the greedy order's cost stays close to the
    group optimum."""
    for size in (8, 10, 12):
        operators = make_search_space(size, seed=11, num_groups=1)
        optimal = exhaustive_search(operators).cost
        greedy = greedy_search(operators).cost
        assert greedy <= optimal * 2.0
    benchmark(lambda: greedy_search(make_search_space(12, seed=11)))
