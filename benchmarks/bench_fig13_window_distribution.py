"""Figure 13: context window distribution — uniform vs Poisson skews.

The paper compares three placements of the critical context windows while
growing the window workload (4-20 queries):

* *Poisson, positive skew* (windows clustered from the first second) — the
  clustered windows run back-to-back, so the queue accumulates across the
  whole merged span: the steepest latency growth (1.8× worse than uniform
  at 20 queries in the paper);
* *uniform* — windows spread out, the queue drains between them: linear but
  moderate growth;
* *Poisson, negative skew* (clustered toward the last second) — part of the
  placement falls off the end of the stream, so much of the workload is
  never activated: nearly flat latency (11× better than uniform at 20
  queries in the paper).

The cost scale is calibrated once on the uniform setup at 10 queries so the
windows run mildly oversaturated (that in-window saturation is what makes
the placement matter).
"""

import pytest

from benchmarks.common import FigureTable, calibrate_seconds_per_cost_unit
from repro.linearroad.generator import (
    LinearRoadConfig,
    generate_stream,
    skewed_congestion_windows,
    uniform_congestion_windows,
)
from repro.linearroad.queries import (
    build_traffic_model,
    replicate_workload,
    segment_partitioner,
)
from repro.runtime.engine import CaesarEngine

QUERY_COUNTS = (4, 8, 12, 16, 20)
REFERENCE_QUERIES = 12
WINDOW_COUNT = 5
WINDOW_LENGTH = 60
DURATION_MINUTES = 10
SEGMENTS = 2


def base_config():
    # a nearly flat ramp keeps the stream rate comparable across the three
    # placements, so the placement itself — not the rate gradient — drives
    # the comparison
    return LinearRoadConfig(
        num_roads=1,
        segments_per_road=SEGMENTS,
        duration_minutes=DURATION_MINUTES,
        cars_clear=8,
        cars_congested=8,
        ramp_start_fraction=0.85,
        seed=47,
    )


def make_stream(distribution):
    """Window placement per distribution.

    * ``uniform`` — equally spaced windows;
    * ``positive`` — the Poisson parameter sits at the first second, so the
      windows cluster into a contiguous block early in the run (clustered
      same-type windows merge into one long context window);
    * ``negative`` — the parameter sits at the last second, so the cluster
      anchors at the very end and most of it spills past the end of the
      stream: those windows never materialize.
    """
    from dataclasses import replace
    from repro.linearroad.simulator import SegmentInterval

    config = base_config()
    duration = config.duration_seconds
    # windows are aligned to the per-minute statistics grid so the context
    # deriving queries can observe them
    if distribution == "uniform":
        stride = duration // WINDOW_COUNT
        windows = [
            ((i * stride + (stride - WINDOW_LENGTH) // 2) // 60 * 60,)
            for i in range(WINDOW_COUNT)
        ]
        windows = [(s[0], s[0] + WINDOW_LENGTH) for s in windows]
    elif distribution == "positive":
        block_start = duration // 5
        windows = [
            (block_start + i * WINDOW_LENGTH,
             block_start + (i + 1) * WINDOW_LENGTH)
            for i in range(WINDOW_COUNT)
        ]
    else:  # negative
        # λ at the last second: every window starts within the final
        # seconds of the stream, so none is ever observed by the
        # minute-granular context derivation before the stream ends —
        # the whole workload stays suspended ("most queries are
        # irrelevant for these contexts", Section 7.3.1)
        windows = [
            (duration - 30 + i, duration)
            for i in range(min(WINDOW_COUNT, 25))
        ]
        windows = [(s, e) for s, e in windows if e > s]
    schedule = tuple(
        SegmentInterval(0, 0, seg, start, end)
        for seg in range(SEGMENTS)
        for start, end in windows
    )
    return generate_stream(replace(config, congestion_schedule=schedule))


def make_engine(queries, spc):
    # the congestion-exclusive chain (query 2 + query 1) is the suspendable
    # workload: 2 queries per copy
    model = replicate_workload(
        build_traffic_model(min_cars=3),
        max(1, queries // 2),
        contexts=("congestion",),
    )
    return CaesarEngine(
        model,
        partition_by=segment_partitioner,
        seconds_per_cost_unit=spc,
        retention=120,
    )


@pytest.fixture(scope="module")
def spc():
    probe = make_engine(REFERENCE_QUERIES, None)
    report = probe.run(make_stream("uniform"), track_outputs=False)
    window_seconds = WINDOW_COUNT * WINDOW_LENGTH
    return calibrate_seconds_per_cost_unit(
        report.cost_units, stream_seconds=window_seconds, utilization=1.3
    )


@pytest.fixture(scope="module")
def fig13_results(spc):
    rows = []
    for queries in QUERY_COUNTS:
        row = {}
        for distribution in ("positive", "uniform", "negative"):
            engine = make_engine(queries, spc)
            report = engine.run(
                make_stream(distribution), track_outputs=False
            )
            row[distribution] = report
        rows.append((queries, row))
    return rows


def test_fig13_window_distribution(fig13_results, benchmark, spc):
    table = FigureTable(
        "Figure 13", "max latency vs workload, by window distribution",
        "queries",
    )
    for queries, row in fig13_results:
        table.add(
            queries,
            poisson_pos_s=row["positive"].max_latency,
            uniform_s=row["uniform"].max_latency,
            poisson_neg_s=row["negative"].max_latency,
        )
    table.show()

    positive = table.series("poisson_pos_s")
    uniform = table.series("uniform_s")
    negative = table.series("poisson_neg_s")

    # Shape 1: the ordering at the top of the sweep — positive skew worst,
    # uniform in between, negative skew best (paper: uniform is 1.8x faster
    # than positive skew and 11x slower than negative skew at 20 queries).
    assert positive[-1] > uniform[-1]
    assert uniform[-1] > negative[-1] * 2

    # Shape 2: uniform and positive-skew latencies grow with the workload.
    assert uniform[-1] > uniform[0] * 1.5
    assert positive[-1] > positive[0] * 1.5

    # Shape 3: negative skew stays almost constant (most of the workload is
    # never activated).
    assert negative[-1] < max(negative[0], 1e-9) * 3 + 1.0

    print(
        f"\nat 20 queries: pos/uniform = {positive[-1] / uniform[-1]:.2f}x "
        f"(paper 1.8x), uniform/neg = {uniform[-1] / max(negative[-1], 1e-9):.1f}x "
        f"(paper 11x)"
    )

    benchmark(
        lambda: make_engine(4, spc).run(
            make_stream("uniform"), track_outputs=False
        )
    )
