"""Figure 12(a): scaling the event query workload — CA vs CI.

The paper varies the number of event queries per critical context window
(2-20) and reports maximal latency of context-aware versus
context-independent processing on both the Linear Road and the PAM data
sets.  Both curves grow with the workload, but the context-independent
engine — which busy-waits every query on the whole stream — grows several
times steeper; at the average workload of 10 queries the paper reports an
8-fold win.

Setup mirrors the paper's: two critical non-overlapping context windows
whose workload can be suspended in all other contexts.  Calibration: the CI
engine at the reference workload (10 queries) runs at ≈1.2× capacity.
"""

import pytest

from benchmarks.common import FigureTable, calibrate_seconds_per_cost_unit
from repro.linearroad.generator import (
    LinearRoadConfig,
    generate_stream,
)
from repro.linearroad.simulator import SegmentInterval
from repro.linearroad.queries import (
    build_traffic_model,
    replicate_workload,
    segment_partitioner,
)
from repro.pam.generator import PamConfig, generate_pam_stream
from repro.pam.queries import (
    build_pam_model,
    replicate_pam_workload,
    subject_partitioner,
)
from repro.runtime.baseline import ContextIndependentEngine
from repro.runtime.engine import CaesarEngine
from repro.runtime.metrics import win_ratio
from dataclasses import replace

QUERY_COUNTS = (2, 6, 10, 14, 20)
REFERENCE_QUERIES = 10
DURATION_MINUTES = 10
SEGMENTS = 3


def lr_stream():
    """Two critical (accident) windows of 90 s on every segment."""
    base = LinearRoadConfig(
        num_roads=1,
        segments_per_road=SEGMENTS,
        duration_minutes=DURATION_MINUTES,
        cars_clear=8,
        cars_congested=8,
        cars_accident=5,
        seed=31,
    )
    duration = base.duration_seconds
    windows = [(duration // 4 - 45, duration // 4 + 45),
               (3 * duration // 4 - 45, 3 * duration // 4 + 45)]
    schedule = tuple(
        SegmentInterval(0, 0, seg, start, end)
        for seg in range(SEGMENTS)
        for start, end in windows
    )
    return generate_stream(replace(base, accident_schedule=schedule))


def lr_model(queries):
    """``queries`` suspendable event queries in the critical context.

    Only the accident-exclusive query replicates, so copies == queries.
    """
    return replicate_workload(
        build_traffic_model(min_cars=6), max(1, queries),
        contexts=("accident",),
    )


def pam_stream():
    return generate_pam_stream(
        PamConfig(num_subjects=4, duration_minutes=10, seed=31)
    )


def pam_model(queries):
    copies = max(1, queries // 2)
    return replicate_pam_workload(build_pam_model(), copies)


def make_engines(model, partitioner, spc):
    caesar = CaesarEngine(
        model,
        partition_by=partitioner,
        seconds_per_cost_unit=spc,
        retention=120,
    )
    baseline = ContextIndependentEngine(
        model,
        partition_by=partitioner,
        seconds_per_cost_unit=spc,
        retention=120,
    )
    return caesar, baseline


@pytest.fixture(scope="module")
def lr_spc():
    _, baseline = make_engines(
        lr_model(REFERENCE_QUERIES), segment_partitioner, None
    )
    report = baseline.run(lr_stream(), track_outputs=False)
    return calibrate_seconds_per_cost_unit(
        report.cost_units,
        stream_seconds=DURATION_MINUTES * 60,
        utilization=1.5,
    )


@pytest.fixture(scope="module")
def pam_spc():
    # PAM reaches the paper's win at the top of its sweep (20 queries), so
    # the baseline is calibrated to ≈1.2x capacity there.
    _, baseline = make_engines(
        pam_model(QUERY_COUNTS[-1]), subject_partitioner, None
    )
    report = baseline.run(pam_stream(), track_outputs=False)
    return calibrate_seconds_per_cost_unit(
        report.cost_units,
        stream_seconds=DURATION_MINUTES * 60,
        utilization=1.03,
    )


@pytest.fixture(scope="module")
def fig12a_results(lr_spc, pam_spc):
    rows = []
    for queries in QUERY_COUNTS:
        ca_lr, ci_lr = make_engines(
            lr_model(queries), segment_partitioner, lr_spc
        )
        ca_pam, ci_pam = make_engines(
            pam_model(queries), subject_partitioner, pam_spc
        )
        rows.append(
            (
                queries,
                ca_lr.run(lr_stream(), track_outputs=False),
                ci_lr.run(lr_stream(), track_outputs=False),
                ca_pam.run(pam_stream(), track_outputs=False),
                ci_pam.run(pam_stream(), track_outputs=False),
            )
        )
    return rows


def test_fig12a_event_query_workload(fig12a_results, benchmark, lr_spc):
    table = FigureTable(
        "Figure 12(a)", "max latency vs event query number", "queries"
    )
    for queries, ca_lr, ci_lr, ca_pam, ci_pam in fig12a_results:
        table.add(
            queries,
            lr_ca_s=ca_lr.max_latency,
            lr_ci_s=ci_lr.max_latency,
            lr_win=win_ratio(ci_lr.max_latency, ca_lr.max_latency),
            pam_ca_s=ca_pam.max_latency,
            pam_ci_s=ci_pam.max_latency,
            pam_win=win_ratio(ci_pam.max_latency, ca_pam.max_latency),
        )
    table.show()

    lr_ca = table.series("lr_ca_s")
    lr_ci = table.series("lr_ci_s")
    pam_ca = table.series("pam_ca_s")
    pam_ci = table.series("pam_ci_s")

    # Shape 1: latency grows with the workload for the CI engine.
    assert lr_ci[-1] > lr_ci[0] * 2
    assert pam_ci[-1] > pam_ci[0] * 1.5

    # Shape 2: context-aware processing always wins.
    assert all(ca <= ci for ca, ci in zip(lr_ca, lr_ci))
    assert all(ca <= ci for ca, ci in zip(pam_ca, pam_ci))

    # Shape 3: a many-fold win at the paper's average workload of 10
    # queries on Linear Road (the paper reports 8x) and a clear win on PAM
    # at 20 queries.
    reference_index = QUERY_COUNTS.index(REFERENCE_QUERIES)
    lr_win_at_10 = lr_ci[reference_index] / lr_ca[reference_index]
    pam_win_at_20 = pam_ci[-1] / pam_ca[-1]
    print(f"\nLR win at 10 queries: {lr_win_at_10:.1f}x "
          f"(paper: 8x); PAM win at 20 queries: {pam_win_at_20:.1f}x")
    assert lr_win_at_10 >= 3.0
    assert pam_win_at_20 >= 1.5

    benchmark(
        lambda: make_engines(lr_model(2), segment_partitioner, lr_spc)[0].run(
            lr_stream(), track_outputs=False
        )
    )
