"""Benchmark-suite configuration.

The figure tables print to stdout; run with ``-s`` to see them inline, or
check ``bench_output.txt`` produced by the top-level harness run.
"""

import pytest


def pytest_configure(config):
    # Benchmarks compare relative numbers; keep pytest-benchmark quick.
    config.option.benchmark_min_rounds = getattr(
        config.option, "benchmark_min_rounds", 5
    )
