"""Figure 14(a): varying the number of overlapping context windows.

The paper sweeps the maximal number of mutually overlapping context windows
(5-45) and reports max latency of shared versus non-shared processing: the
more windows overlap, the bigger the sharing gain (10× at 45), because the
grouping algorithm executes each shared query once per grouped window while
the non-shared baseline runs one instance per covering user window.
"""

import pytest

from benchmarks.bench_fig14_common import (
    lr_event_stream,
    make_window_specs,
    run_pair,
)
from benchmarks.common import FigureTable, calibrate_seconds_per_cost_unit
from repro.optimizer.sharing import build_nonshared_workload
from repro.runtime.engine import ScheduledWorkloadEngine

OVERLAP_COUNTS = (5, 15, 25, 35, 45)
REFERENCE_COUNT = 45
WINDOW_LENGTH = 300
STRIDE = 5  # all windows mutually overlap: multiplicity == count
SHARED_QUERIES = 4


def make_specs(count):
    return make_window_specs(
        count=count,
        length=WINDOW_LENGTH,
        stride=STRIDE,
        shared_queries=SHARED_QUERIES,
        start_offset=30,
    )


def stream_seconds(count):
    return 30 + WINDOW_LENGTH + (count - 1) * STRIDE + 60


def make_stream(count):
    return lr_event_stream(stream_seconds(OVERLAP_COUNTS[-1]))


@pytest.fixture(scope="module")
def spc():
    workload = build_nonshared_workload(make_specs(REFERENCE_COUNT))
    engine = ScheduledWorkloadEngine(workload)
    report = engine.run(make_stream(REFERENCE_COUNT), track_outputs=False)
    return calibrate_seconds_per_cost_unit(
        report.cost_units,
        stream_seconds=stream_seconds(OVERLAP_COUNTS[-1]),
        # sub-saturated: latency tracks batch service time, so the gain
        # directly reflects the per-batch work ratio (≈ the overlap count
        # for fully-shared workloads; the paper's 10x at 45 corresponds to
        # partially shared ones)
        utilization=0.5,
    )


@pytest.fixture(scope="module")
def fig14a_results(spc):
    rows = []
    for count in OVERLAP_COUNTS:
        shared, nonshared = run_pair(
            make_specs(count),
            lambda: make_stream(count),
            seconds_per_cost_unit=spc,
        )
        rows.append((count, shared, nonshared))
    return rows


def test_fig14a_overlap_number(fig14a_results, benchmark, spc):
    table = FigureTable(
        "Figure 14(a)", "max latency vs overlapping window count", "windows"
    )
    for count, shared, nonshared in fig14a_results:
        table.add(
            count,
            shared_s=shared.max_latency,
            nonshared_s=nonshared.max_latency,
            gain=nonshared.max_latency / max(shared.max_latency, 1e-9),
        )
    table.show()

    shared = table.series("shared_s")
    nonshared = table.series("nonshared_s")
    gains = table.series("gain")

    # Shape 1: the non-shared latency grows with the overlap count.
    assert nonshared[-1] > nonshared[0] * 2

    # Shape 2: the shared latency stays nearly flat — one instance of each
    # shared query regardless of how many windows carry it.
    assert shared[-1] < shared[0] * 3 + 1.0

    # Shape 3: the gain grows with the overlap count and is large at the
    # top (the paper reports 10x at 45 windows).
    assert all(b >= a * 0.9 for a, b in zip(gains, gains[1:]))
    print(f"\ngain at 45 overlapping windows: {gains[-1]:.1f}x (paper: 10x)")
    assert gains[-1] >= 5.0

    benchmark(
        lambda: run_pair(
            make_specs(OVERLAP_COUNTS[0]),
            lambda: make_stream(OVERLAP_COUNTS[0]),
            seconds_per_cost_unit=spc,
        )
    )
