"""Micro-benchmarks for the per-event hot path.

Not a paper figure: these isolate the three constant-factor levers of the
hot-path overhaul so regressions (or wins) are measurable in isolation:

* **predicate evaluation** — a `Filter` driving a moderately deep WHERE
  predicate over a batch of plain events (compiled closures vs. the
  interpreted tree-walk);
* **partial-match advance** — a 4-step SEQ pattern holding 10/100/1000 live
  partial matches while consuming events that cannot extend any of them
  (type-indexed partial state vs. a linear scan);
* **router dispatch** — a context-aware router whose plans consume disjoint
  event types, fed batches that interest only one plan (interest-set
  suppression vs. executing every plan on every batch).

Before/after numbers for the overhaul PR are recorded in
``docs/benchmarks.md`` ("Hot-path micro-benchmarks").
"""

import pytest

from repro.algebra.expressions import attr, const
from repro.algebra.operators import ExecutionContext
from repro.algebra.pattern import EventMatch, PatternOperator, Sequence
from repro.algebra.plan import CombinedQueryPlan, QueryPlan
from repro.algebra.relational_ops import Filter, Projection
from repro.core.windows import ContextWindowStore
from repro.events.event import Event
from repro.events.types import EventType
from repro.runtime.router import ContextAwareStreamRouter

READING = EventType.define("HPReading", value="int", sec="int", zone="int")
A = EventType.define("HPA", n="int")
B = EventType.define("HPB", n="int")
C = EventType.define("HPC", n="int")
D = EventType.define("HPD", n="int")


def _store(contexts):
    store = ContextWindowStore(list(contexts), "default")
    for name in contexts:
        store.initiate(name, 0)
    return store


# --------------------------------------------------------------------------
# 1. predicate evaluation
# --------------------------------------------------------------------------


class TestPredicateEval:
    def test_predicate_eval(self, benchmark):
        """FL_θ over 1000 events with a 6-node comparison/arithmetic tree."""
        predicate = (
            attr("value").gt(const(100))
            & attr("value").lt(const(900))
            & (attr("sec") + const(1)).ge(attr("zone"))
        )
        filter_op = Filter(predicate)
        events = [
            Event(READING, t, {"value": (t * 37) % 1000, "sec": t, "zone": 0})
            for t in range(1000)
        ]
        ctx = ExecutionContext(windows=_store([]), now=0)

        out = benchmark(filter_op.process, events, ctx)
        assert 0 < len(out) < len(events)


# --------------------------------------------------------------------------
# 2. partial-match advance
# --------------------------------------------------------------------------


def _loaded_pattern(partials):
    """A SEQ(A, B, C) pattern holding ``partials`` live partial matches.

    All partials wait for a ``HPB`` event, so a ``HPD``-typed probe batch
    (a type the pattern's enclosing plan consumes via negation-free
    routing) extends nothing — the cost is pure partial-state bookkeeping.
    """
    spec = Sequence(
        (EventMatch("HPA", "a"), EventMatch("HPB", "b"), EventMatch("HPC", "c"))
    )
    operator = PatternOperator(spec, retention=10_000_000)
    ctx = ExecutionContext(windows=_store([]), now=0)
    seed = [Event(A, t + 1, {"n": t}) for t in range(partials)]
    operator.process(seed, ctx)
    assert operator.state_size() == partials
    return operator, ctx


@pytest.mark.parametrize("partials", [10, 100, 1000])
class TestPartialAdvance:
    def test_partial_advance(self, benchmark, partials):
        operator, ctx = _loaded_pattern(partials)
        probe = [Event(D, partials + 1 + i, {"n": i}) for i in range(100)]

        out = benchmark(operator.process, probe, ctx)
        assert out == []
        assert operator.state_size() == partials


# --------------------------------------------------------------------------
# 3. router dispatch with disjoint interest sets
# --------------------------------------------------------------------------


def _typed_plan(event_type, name):
    out_type = EventType.define(f"HPOut{name}", n="int")
    return CombinedQueryPlan(
        [
            QueryPlan(
                [
                    PatternOperator(EventMatch(event_type.name, "x")),
                    Projection(out_type, [("n", attr("n", "x"))]),
                ],
                name=name,
                context_name=name,
            )
        ],
        name=f"combined-{name}",
        context_name=name,
    )


class TestRouterDispatch:
    def test_disjoint_interest_routing(self, benchmark):
        """16 active plans, none interested in the batch's event type.

        This isolates pure dispatch cost: with interest-set routing the
        router answers 16 set-disjointness tests; without it, every plan
        scans the whole batch only to find nothing it consumes.
        """
        types = [
            EventType.define(f"HPT{i}", n="int") for i in range(16)
        ]
        other = EventType.define("HPElse", n="int")
        plans = {
            f"ctx{i}": _typed_plan(types[i], f"ctx{i}") for i in range(16)
        }
        store = _store(list(plans))
        router = ContextAwareStreamRouter(plans, context_aware=True)
        ctx = ExecutionContext(windows=store, now=1)
        batch = [Event(other, 1, {"n": i}) for i in range(200)]

        out = benchmark(router.route, batch, store, ctx)
        assert out == []
