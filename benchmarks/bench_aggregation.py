"""Online SEQ aggregation vs match materialization.

Not a paper figure, but Fig-14-style in spirit: the incremental
aggregation path (Sharon-style summary propagation) promises work
*linear* in the number of events, while the materialize-then-fold oracle
enumerates every SEQ match — combinatorial in the stream.  On a stream
where every event pair matches ``SEQ(AggTick a, AggTick b)``, the match
count grows as n(n-1)/2, so the oracle's advantage-free quadratic curve
separates quickly from the online path's flat per-event cost.

Two checks:

* **shape** — online wall time grows ~linearly while materialize grows
  superlinearly (its per-event cost rises with stream size);
* **magnitude** — at the largest size online is >=10x faster.

Both engines must agree on the aggregate values (the ``aggregate``
differential axis asserts this byte-identically; here we spot-check) —
the speedup is not bought with a different answer.

Numbers for the PR introducing this path are recorded in
``docs/benchmarks.md`` ("Online SEQ aggregation").
"""

import time

import pytest

from benchmarks.common import FigureTable
from repro.api import EngineConfig, create_engine
from repro.core.model import CaesarModel
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.events.types import EventType
from repro.language import parse_query

AGG_TICK = EventType.define("AggTick", v="int")

SIZES = (50, 100, 200, 400)
REPEATS = 3


def build_model() -> CaesarModel:
    model = CaesarModel(default_context="always")
    model.add_query(parse_query(
        "DERIVE TickStats(COUNT(*), SUM(a.v), MIN(b.v)) "
        "PATTERN SEQ(AggTick a, AggTick b) CONTEXT always",
        name="tick_stats",
    ))
    return model


def make_events(size: int) -> list[Event]:
    # deterministic values; consecutive timestamps; retention exceeds the
    # stream span so no pair ever expires -> n(n-1)/2 live matches
    return [
        Event(AGG_TICK, t, {"v": (t * 37) % 101}) for t in range(size)
    ]


def timed_run(size: int, aggregation: str):
    events = make_events(size)
    best = None
    report = None
    for _ in range(REPEATS):
        engine = create_engine(build_model(), EngineConfig(
            retention=2 * SIZES[-1],
            aggregation=aggregation,
        ))
        stream = EventStream(iter(events))
        started = time.perf_counter()
        report = engine.run(stream, track_outputs=True)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, report


def final_stats(report):
    """The last TickStats emission (running totals at end of stream)."""
    outputs = [e for e in report.outputs if e.type_name == "TickStats"]
    assert outputs, "aggregate query produced no output"
    return outputs[-1].payload


@pytest.fixture(scope="module")
def aggregation_results():
    rows = []
    for size in SIZES:
        online_s, online_report = timed_run(size, "online")
        oracle_s, oracle_report = timed_run(size, "materialize")
        assert final_stats(online_report) == final_stats(oracle_report)
        assert online_report.matches_aggregated == size * (size - 1) // 2
        assert oracle_report.matches_materialized == size * (size - 1) // 2
        rows.append((size, online_s, oracle_s))
    return rows


def test_online_aggregation_beats_materialization(
    aggregation_results, benchmark
):
    table = FigureTable(
        "Aggregation", "online propagation vs match materialization",
        "events",
    )
    for size, online_s, oracle_s in aggregation_results:
        table.add(
            size,
            online_s=online_s,
            materialize_s=oracle_s,
            speedup=oracle_s / max(online_s, 1e-9),
        )
    table.show()

    online = table.series("online_s")
    oracle = table.series("materialize_s")
    speedups = table.series("speedup")

    # Shape: doubling the stream grows the oracle's cost much faster than
    # the online path's (quadratic match count vs linear event count).
    assert oracle[-1] / oracle[0] > (online[-1] / online[0]) * 2

    # Magnitude: at the largest size the online path wins by >=10x.
    print(f"\nspeedup at {SIZES[-1]} events: {speedups[-1]:.1f}x")
    assert speedups[-1] >= 10.0

    benchmark(lambda: timed_run(SIZES[0], "online"))
