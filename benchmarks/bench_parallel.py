"""Sharded parallel execution backends: serial vs. thread vs. process.

Not a paper figure: CAESAR's per-partition state (context bit vector, plan
instances) makes partitions semantically independent, and the execution
backends exploit that by pinning each partition to one shard worker.  This
benchmark measures wall-clock throughput of the same multi-partition
workload under each backend, plus the determinism guarantee (identical
outputs) that makes the comparison honest.

Speedup expectations are hardware-dependent: CPython threads only overlap
the interpreter during the (rare) C-level waits, so the thread backend is
bounded by the GIL; the process backend forks true parallel workers but
pays event pickling per dispatch.  On a single-core runner both parallel
backends are expected to *lose* to serial — the numbers recorded in
``docs/benchmarks.md`` state the core count they were measured on.
"""

import os

import pytest

from benchmarks.common import FigureTable
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.events.types import EventType
from repro.core.model import CaesarModel
from repro.language import parse_query
from repro.runtime import (
    CaesarEngine,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    outputs_to_rows,
)

READING = EventType.define("ParReading", value="int", sec="int", zone="int")


def build_model(queries=4):
    model = CaesarModel(default_context="normal")
    model.add_context("alert")
    model.add_query(parse_query(
        "INITIATE CONTEXT alert PATTERN ParReading r WHERE r.value > 800 "
        "CONTEXT normal", name="up"))
    model.add_query(parse_query(
        "TERMINATE CONTEXT alert PATTERN ParReading r WHERE r.value < 100 "
        "CONTEXT alert", name="down"))
    for index in range(queries):
        model.add_query(parse_query(
            f"DERIVE Out{index}(r.value) PATTERN ParReading r "
            f"WHERE r.value > {index * 100} CONTEXT alert",
            name=f"q{index}"))
    return model


def build_stream(events=4000, partitions=8):
    return EventStream(
        Event(
            READING,
            index // partitions,
            {
                "value": (index * 37) % 1000,
                "sec": index // partitions,
                "zone": index % partitions,
            },
        )
        for index in range(events)
    )


def run_backend(backend, stream):
    engine = CaesarEngine(
        build_model(), partition_by=lambda e: e["zone"], backend=backend
    )
    return engine.run(stream, track_outputs=False)


class TestParallelBackends:
    def test_serial_baseline(self, benchmark):
        stream = build_stream()
        report = benchmark(lambda: run_backend(SerialBackend(), stream))
        assert len(report.windows_by_partition) == 8
        table = FigureTable(
            "Parallel", "execution backend throughput", "backend"
        )
        table.add("serial", events_per_sec=report.throughput)
        table.show()

    def test_thread_backend(self, benchmark):
        stream = build_stream()
        report = benchmark(
            lambda: run_backend(ThreadPoolBackend(max_workers=4), stream)
        )
        assert len(report.windows_by_partition) == 8
        table = FigureTable(
            "Parallel", "execution backend throughput", "backend"
        )
        table.add("thread[4]", events_per_sec=report.throughput)
        table.show()

    @pytest.mark.skipif(
        "fork" not in __import__("multiprocessing").get_all_start_methods(),
        reason="process backend requires fork",
    )
    def test_process_backend(self, benchmark):
        stream = build_stream()
        report = benchmark(
            lambda: run_backend(ProcessPoolBackend(max_workers=4), stream)
        )
        assert len(report.windows_by_partition) == 8
        table = FigureTable(
            "Parallel", "execution backend throughput", "backend"
        )
        table.add("process[4]", events_per_sec=report.throughput)
        table.show()

    def test_backends_agree_on_outputs(self, benchmark):
        """The determinism contract, asserted where the numbers are made."""
        stream = build_stream(events=1000)
        serial = run_backend(SerialBackend(), stream)

        def check():
            threaded = run_backend(ThreadPoolBackend(max_workers=4), stream)
            assert threaded.cost_units == serial.cost_units
            return threaded

        threaded = benchmark(check)
        assert (
            threaded.outputs_by_type == serial.outputs_by_type
        ), "parallel outputs diverged from serial"


def main():
    """Standalone entry point: ``make bench-parallel``.

    Each backend is measured twice on the same engine: the *cold* run pays
    any worker spawn cost, the *warm* run is what a long-lived engine sees
    (for the process backend the persistent pool and primed type
    directories make this the representative number).  The header records
    the environment — speedups are meaningless without the core count.
    """
    import multiprocessing
    import platform
    import time

    cores = os.cpu_count() or 1
    print(
        f"# bench_parallel environment: nproc={cores} "
        f"cpython={platform.python_version()} "
        f"platform={platform.system().lower()}"
    )
    stream = build_stream(events=8000, partitions=8)
    table = FigureTable(
        "Parallel",
        f"execution backend throughput ({cores} cores, 8 partitions)",
        "backend",
    )
    serial_report = None
    serial_elapsed = None
    backends = [("serial", SerialBackend)]
    backends.append(("thread[4]", lambda: ThreadPoolBackend(max_workers=4)))
    if "fork" in multiprocessing.get_all_start_methods():
        backends.append(
            ("process[4]", lambda: ProcessPoolBackend(max_workers=4))
        )
    for name, factory in backends:
        engine = CaesarEngine(
            build_model(), partition_by=lambda e: e["zone"], backend=factory()
        )
        started = time.perf_counter()
        report = engine.run(stream, track_outputs=False)
        cold_elapsed = time.perf_counter() - started
        started = time.perf_counter()
        warm_report = engine.run(stream, track_outputs=False)
        warm_elapsed = time.perf_counter() - started
        engine.close()
        print(
            f"# {name}: backend={report.backend} "
            f"shm_batches={warm_report.batches_shm} "
            f"pickled_fallback={warm_report.batches_pickled_fallback} "
            f"bytes_out={warm_report.transport_bytes_out} "
            f"bytes_in={warm_report.transport_bytes_in}"
        )
        if serial_report is None:
            serial_report = report
            serial_elapsed = min(cold_elapsed, warm_elapsed)
            speedup = 1.0
        else:
            for candidate in (report, warm_report):
                assert candidate.cost_units == serial_report.cost_units
                assert (
                    candidate.outputs_by_type == serial_report.outputs_by_type
                )
            speedup = serial_elapsed / warm_elapsed
        table.add(
            name,
            events_per_sec=report.events_processed / cold_elapsed,
            warm_events_per_sec=warm_report.events_processed / warm_elapsed,
            warm_speedup_vs_serial=speedup,
        )
    table.show()


if __name__ == "__main__":
    main()
