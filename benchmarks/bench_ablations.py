"""Ablation benchmarks for CAESAR's individual design choices.

The figure benchmarks reproduce the paper's evaluation; these ablations
isolate the design decisions DESIGN.md calls out:

* **window grouping vs naive merge** — Section 5.3 argues that merging all
  overlapping windows into one encompassing window "could do more harm than
  good"; we quantify it;
* **batched vs per-event routing** — Section 6.2 claims routing stream
  batches (not single events) keeps context-aware routing lightweight;
* **context bit vector vs set bookkeeping** — Section 6.2's constant-time
  context lookup structure against the obvious alternative.

(The push-down ablation is Figure 11(b) itself.)
"""

import pytest

from benchmarks.bench_fig14_common import (
    lr_event_stream,
    make_window_specs,
    run_pair,
    shared_query,
)
from benchmarks.common import FigureTable
from repro.core.bitvector import ContextBitVector
from repro.core.windows import WindowSpec
from repro.optimizer.sharing import build_shared_workload
from repro.runtime.engine import ScheduledWorkloadEngine


# ---------------------------------------------------------------------------
# Ablation 1: window grouping vs naive merge
# ---------------------------------------------------------------------------


class TestGroupingVsNaiveMerge:
    """Partially overlapping windows: grouping runs each query only inside
    the windows that actually carry it; the naive merge runs every query
    across the whole encompassing span."""

    PAIRS = 3
    LENGTH = 120
    PAIR_OVERLAP = 30
    PAIR_GAP = 120  # clear stream between consecutive pairs

    def specs(self):
        """Pairs of mutually overlapping windows separated by gaps.

        Within a pair the two windows overlap by 30 s (a genuine sharing
        opportunity); between pairs the stream is uncovered — exactly the
        region a naive all-encompassing merge would pointlessly process.
        """
        shared = tuple(shared_query(i) for i in range(2))
        specs = []
        pair_span = 2 * self.LENGTH - self.PAIR_OVERLAP
        for pair in range(self.PAIRS):
            base = 30 + pair * (pair_span + self.PAIR_GAP)
            specs.append(
                WindowSpec(
                    name=f"p{pair}a", start=base, end=base + self.LENGTH,
                    queries=shared,
                )
            )
            second = base + self.LENGTH - self.PAIR_OVERLAP
            specs.append(
                WindowSpec(
                    name=f"p{pair}b", start=second,
                    end=second + self.LENGTH, queries=shared,
                )
            )
        return specs

    def naive_merge_specs(self):
        """One encompassing window carrying the union of the workloads."""
        specs = self.specs()
        union = []
        seen = set()
        for spec in specs:
            for query in spec.queries:
                if query.signature() not in seen:
                    seen.add(query.signature())
                    union.append(query)
        return [
            WindowSpec(
                name="merged",
                start=min(s.start for s in specs),
                end=max(s.end for s in specs),
                queries=tuple(union),
            )
        ]

    def stream(self):
        pair_span = 2 * self.LENGTH - self.PAIR_OVERLAP
        total = 30 + self.PAIRS * (pair_span + self.PAIR_GAP) + 60
        return lr_event_stream(total)

    def test_grouping_beats_naive_merge(self, benchmark):
        grouped = ScheduledWorkloadEngine(
            build_shared_workload(self.specs())
        ).run(self.stream(), track_outputs=False)
        merged = ScheduledWorkloadEngine(
            build_shared_workload(self.naive_merge_specs())
        ).run(self.stream(), track_outputs=False)

        table = FigureTable(
            "Ablation 1", "grouping vs naive window merge", "strategy"
        )
        table.add("grouped", cost_units=grouped.cost_units)
        table.add("naive_merge", cost_units=merged.cost_units)
        table.show()

        # Grouping processes only the pairs' coverage; the naive merge also
        # busy-runs the whole workload across the inter-pair gaps.
        assert grouped.cost_units < merged.cost_units * 0.95

        benchmark(
            lambda: ScheduledWorkloadEngine(
                build_shared_workload(self.specs())
            ).run(self.stream(), track_outputs=False)
        )

    def test_merge_penalty_grows_with_gaps(self, benchmark):
        """Spreading the same windows further apart widens the gap the
        naive merge pointlessly covers."""
        penalties = []
        for stride in (90, 150, 240):
            specs = make_window_specs(
                count=4, length=120, stride=stride,
                shared_queries=2, start_offset=30,
            )
            union_spec = [
                WindowSpec(
                    name="merged",
                    start=min(s.start for s in specs),
                    end=max(s.end for s in specs),
                    queries=specs[0].queries,
                )
            ]
            stream_len = 30 + 120 + 3 * stride + 120
            grouped = ScheduledWorkloadEngine(
                build_shared_workload(specs)
            ).run(lr_event_stream(stream_len), track_outputs=False)
            merged = ScheduledWorkloadEngine(
                build_shared_workload(union_spec)
            ).run(lr_event_stream(stream_len), track_outputs=False)
            penalties.append(merged.cost_units / grouped.cost_units)
        assert penalties == sorted(penalties)
        assert penalties[-1] > penalties[0] * 1.2
        benchmark(lambda: build_shared_workload(self.specs()))


# ---------------------------------------------------------------------------
# Ablation 2: batched vs per-event routing
# ---------------------------------------------------------------------------


class TestBatchedRouting:
    """The same events delivered as per-timestamp batches versus one at a
    time: routing happens once per batch, so batching divides the routing
    and scheduling overhead by the batch size (Section 6.2)."""

    def make_engine(self):
        from repro.core.model import CaesarModel
        from repro.language import parse_query
        from repro.runtime.engine import CaesarEngine

        model = CaesarModel(default_context="normal")
        model.add_context("alert")
        model.add_query(parse_query(
            "INITIATE CONTEXT alert PATTERN Reading r WHERE r.value > 900 "
            "CONTEXT normal", name="up"))
        model.add_query(parse_query(
            "TERMINATE CONTEXT alert PATTERN Reading r WHERE r.value < 100 "
            "CONTEXT alert", name="down"))
        for index in range(8):
            model.add_query(parse_query(
                f"DERIVE Out{index}(r.value) PATTERN Reading r "
                f"WHERE r.value > {index * 50} CONTEXT alert",
                name=f"q{index}"))
        return CaesarEngine(model)

    def make_streams(self):
        from repro.events.event import Event
        from repro.events.stream import EventStream
        from repro.events.types import EventType

        reading = EventType.define("Reading", value="int", sec="int")
        batched_events = []
        single_events = []
        for t in range(0, 300, 30):
            for index in range(20):
                value = (t * 7 + index * 13) % 800  # stays below 900: all idle
                batched_events.append(
                    Event(reading, t, {"value": value, "sec": t})
                )
                single_events.append(
                    Event(
                        reading,
                        t + index * 0.01,
                        {"value": value, "sec": t},
                    )
                )
        return EventStream(batched_events), EventStream(single_events)

    def test_batching_reduces_routing_overhead(self, benchmark):
        batched_stream, single_stream = self.make_streams()
        batched = self.make_engine().run(batched_stream, track_outputs=False)
        per_event = self.make_engine().run(single_stream, track_outputs=False)

        table = FigureTable(
            "Ablation 2", "batched vs per-event routing", "mode"
        )
        table.add(
            "batched",
            batches=float(batched.batches),
            suppressions=float(batched.suppressed_batches),
        )
        table.add(
            "per_event",
            batches=float(per_event.batches),
            suppressions=float(per_event.suppressed_batches),
        )
        table.show()

        # identical event count, ~20x the scheduler/routing invocations
        assert batched.events_processed == per_event.events_processed
        assert per_event.batches == batched.batches * 20
        assert per_event.suppressed_batches >= batched.suppressed_batches * 10

        engine = self.make_engine()
        benchmark(lambda: self.make_engine().run(
            self.make_streams()[0], track_outputs=False
        ))


# ---------------------------------------------------------------------------
# Ablation 3: context bit vector vs set bookkeeping
# ---------------------------------------------------------------------------


class TestBitVectorAblation:
    NAMES = [f"context_{i}" for i in range(16)]

    def test_bitvector_lookup_cost(self, benchmark):
        vector = ContextBitVector(self.NAMES)
        for name in self.NAMES[::2]:
            vector.set(name, 0)

        def vector_workload():
            hits = 0
            for _ in range(100):
                for name in self.NAMES:
                    if vector.test(name):
                        hits += 1
            return hits

        reference: set = set(self.NAMES[::2])

        def set_workload():
            hits = 0
            for _ in range(100):
                for name in self.NAMES:
                    if name in reference:
                        hits += 1
            return hits

        assert vector_workload() == set_workload() == 800
        result = benchmark(vector_workload)
        # informational: the structures agree and both are O(1) per lookup;
        # the vector additionally gives the router the active set in bit
        # order and a single-int snapshot, which a plain set does not
        assert result == 800
