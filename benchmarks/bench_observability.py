"""Observability overhead: metrics off vs. on vs. detailed vs. tracing.

The subsystem's budget is "cheap enough to stay on by default": the default
metrics level only touches preregistered counters at *batch* granularity,
so its overhead over a fully disabled registry must stay within a few
percent.  The detailed level (per-plan wall-time histograms) and tracing
(ring-buffer spans per batch/transaction/plan) are opt-in and allowed to
cost more.

Every mode runs the same multi-partition workload and must produce the
same report — asserted before any number is printed, mirroring
``bench_parallel``.  ``make bench-observability`` runs :func:`main`, whose
overhead percentages are the ones recorded in ``docs/benchmarks.md``.
"""

from benchmarks.common import FigureTable
from repro.core.model import CaesarModel
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.events.types import EventType
from repro.language import parse_query
from repro.runtime import CaesarEngine

READING = EventType.define("ObsBench", value="int", sec="int", zone="int")

MODES = ("off", "on", "detailed", "trace")


def build_model(queries=4):
    model = CaesarModel(default_context="normal")
    model.add_context("alert")
    model.add_query(parse_query(
        "INITIATE CONTEXT alert PATTERN ObsBench r WHERE r.value > 800 "
        "CONTEXT normal", name="up"))
    model.add_query(parse_query(
        "TERMINATE CONTEXT alert PATTERN ObsBench r WHERE r.value < 100 "
        "CONTEXT alert", name="down"))
    for index in range(queries):
        model.add_query(parse_query(
            f"DERIVE Out{index}(r.value) PATTERN ObsBench r "
            f"WHERE r.value > {index * 100} CONTEXT alert",
            name=f"q{index}"))
    return model


def build_stream(events=4000, partitions=8):
    return EventStream(
        Event(
            READING,
            index // partitions,
            {
                "value": (index * 37) % 1000,
                "sec": index // partitions,
                "zone": index % partitions,
            },
        )
        for index in range(events)
    )


def run_mode(mode, stream):
    engine = CaesarEngine(
        build_model(),
        partition_by=lambda e: e["zone"],
        observability=mode,
    )
    return engine.run(stream, track_outputs=False)


class TestObservabilityOverhead:
    def test_metrics_off(self, benchmark):
        stream = build_stream()
        report = benchmark(lambda: run_mode("off", stream))
        assert report.events_processed == 4000

    def test_metrics_on(self, benchmark):
        stream = build_stream()
        report = benchmark(lambda: run_mode("on", stream))
        assert report.events_processed == 4000

    def test_detailed(self, benchmark):
        stream = build_stream()
        report = benchmark(lambda: run_mode("detailed", stream))
        assert report.events_processed == 4000

    def test_tracing(self, benchmark):
        stream = build_stream()
        report = benchmark(lambda: run_mode("trace", stream))
        assert report.events_processed == 4000

    def test_modes_agree_on_reports(self, benchmark):
        """Observability must never change what the engine computes."""
        stream = build_stream(events=1000)
        baseline = run_mode("off", stream)

        def check():
            observed = run_mode("trace", stream)
            assert observed.cost_units == baseline.cost_units
            return observed

        observed = benchmark(check)
        assert observed.outputs_by_type == baseline.outputs_by_type


def main():
    """Standalone entry point: ``make bench-observability``."""
    import time

    stream = build_stream(events=8000, partitions=8)
    table = FigureTable(
        "Observability",
        "engine throughput by observability mode (8 partitions)",
        "mode",
    )
    baseline_report = None
    baseline_elapsed = None
    for mode in MODES:
        run_mode(mode, stream)  # warm-up: plan compilation, allocator
        started = time.perf_counter()
        report = run_mode(mode, stream)
        elapsed = time.perf_counter() - started
        if baseline_report is None:
            baseline_report = report
            baseline_elapsed = elapsed
            overhead = 0.0
        else:
            assert report.cost_units == baseline_report.cost_units
            assert (
                report.outputs_by_type == baseline_report.outputs_by_type
            ), f"mode {mode!r} changed the outputs"
            overhead = (elapsed / baseline_elapsed - 1.0) * 100.0
        table.add(
            mode,
            events_per_sec=report.events_processed / elapsed,
            overhead_pct=overhead,
        )
    table.show()


if __name__ == "__main__":
    main()
