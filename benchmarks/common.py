"""Shared infrastructure for the figure-by-figure benchmark harness.

Every module in this directory regenerates one table or figure of the
paper's Section 7 and prints the same rows/series the paper reports.  Run::

    pytest benchmarks/ --benchmark-only -s

Latency methodology
-------------------
The paper measures wall-clock *maximal latency* on fixed hardware where the
default workload (3 roads, 10 event queries) runs the context-independent
baseline near its capacity — that is what makes latency a sensitive metric
there.  Our substrate is a Python simulator, so absolute wall time carries
no meaning; instead the engines charge deterministic *cost units* per
operator invocation and the latency model replays a single-server queue
(events arrive at their application timestamps, service time = cost units ×
a seconds-per-cost-unit scale).

For each figure family the scale is **calibrated once on the paper's
reference configuration** so the context-independent baseline runs at ≈1.2×
capacity (mirroring the paper's near-saturated hardware) and is then held
fixed across the sweep.  Every reported comparison (who wins, by what
factor, where the crossover falls) is between two engines under the *same*
scale, so the shape is meaningful even though absolute seconds are not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.events.stream import EventStream
from repro.runtime.engine import EngineReport

#: Utilization the CI baseline is calibrated to at the reference point.
REFERENCE_UTILIZATION = 1.2


def calibrate_seconds_per_cost_unit(
    reference_cost_units: float,
    *,
    stream_seconds: float,
    utilization: float = REFERENCE_UTILIZATION,
) -> float:
    """Scale such that the reference run needs ``utilization × stream
    duration`` of service time — i.e. the baseline is mildly oversaturated,
    as on the paper's testbed."""
    if reference_cost_units <= 0:
        raise ValueError("reference run spent no cost units")
    return utilization * stream_seconds / reference_cost_units


@dataclass
class FigureRow:
    """One printed row of a figure's data series."""

    x: object
    values: dict[str, float]


class FigureTable:
    """Collects and pretty-prints the series of one paper figure."""

    def __init__(self, figure: str, title: str, x_label: str):
        self.figure = figure
        self.title = title
        self.x_label = x_label
        self.rows: list[FigureRow] = []

    def add(self, x: object, **values: float) -> None:
        self.rows.append(FigureRow(x, values))

    def series(self, name: str) -> list[float]:
        return [row.values[name] for row in self.rows if name in row.values]

    def xs(self) -> list[object]:
        return [row.x for row in self.rows]

    def render(self) -> str:
        if not self.rows:
            return f"[{self.figure}] {self.title}: (no data)"
        columns = list(dict.fromkeys(k for row in self.rows for k in row.values))
        widths = {c: max(len(c), 12) for c in columns}
        x_width = max(len(self.x_label), *(len(str(r.x)) for r in self.rows))
        header = (
            f"{self.x_label:<{x_width}}  "
            + "  ".join(f"{c:>{widths[c]}}" for c in columns)
        )
        lines = [
            f"=== {self.figure}: {self.title} ===",
            header,
            "-" * len(header),
        ]
        for row in self.rows:
            cells = []
            for column in columns:
                value = row.values.get(column)
                if value is None:
                    cells.append(" " * widths[column])
                elif isinstance(value, float):
                    cells.append(f"{value:>{widths[column]}.4f}")
                else:
                    cells.append(f"{value!s:>{widths[column]}}")
            lines.append(f"{row.x!s:<{x_width}}  " + "  ".join(cells))
        return "\n".join(lines)

    def show(self) -> None:
        print()
        print(self.render())


def run_fresh(
    engine_factory: Callable[[], object],
    stream_factory: Callable[[], EventStream],
) -> EngineReport:
    """One run with a fresh engine and a fresh stream."""
    engine = engine_factory()
    return engine.run(stream_factory(), track_outputs=False)


def monotonically_nondecreasing(values: Sequence[float], slack: float = 1.05) -> bool:
    """True if the series never drops by more than ``slack`` noise."""
    return all(b * slack >= a for a, b in zip(values, values[1:]))
