"""Scalability characterization of the reproduction itself.

Not a paper figure: these benchmarks characterize the Python engine's raw
throughput so regressions in the reproduction are caught — events/second
for the context-aware engine across partition counts and workload sizes,
plus the pattern matcher and the grouping algorithm in isolation.
"""

import pytest

from benchmarks.common import FigureTable
from repro.algebra.operators import ExecutionContext
from repro.algebra.pattern import EventMatch, PatternOperator, Sequence
from repro.core.grouping import group_context_windows
from repro.core.windows import ContextWindowStore, WindowSpec
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.events.types import EventType
from repro.language import parse_query
from repro.core.model import CaesarModel
from repro.runtime.engine import CaesarEngine

READING = EventType.define("Reading", value="int", sec="int", zone="int")


def build_model(queries=4):
    model = CaesarModel(default_context="normal")
    model.add_context("alert")
    model.add_query(parse_query(
        "INITIATE CONTEXT alert PATTERN Reading r WHERE r.value > 800 "
        "CONTEXT normal", name="up"))
    model.add_query(parse_query(
        "TERMINATE CONTEXT alert PATTERN Reading r WHERE r.value < 100 "
        "CONTEXT alert", name="down"))
    for index in range(queries):
        model.add_query(parse_query(
            f"DERIVE Out{index}(r.value) PATTERN Reading r "
            f"WHERE r.value > {index * 100} CONTEXT alert",
            name=f"q{index}"))
    return model


def build_stream(events=2000, zones=1):
    return EventStream(
        Event(
            READING,
            index // zones,
            {
                "value": (index * 37) % 1000,
                "sec": index // zones,
                "zone": index % zones,
            },
        )
        for index in range(events)
    )


class TestEngineThroughput:
    def test_single_partition_throughput(self, benchmark):
        stream = build_stream()

        def run():
            return CaesarEngine(build_model()).run(
                stream, track_outputs=False
            )

        report = benchmark(run)
        table = FigureTable("Scaling", "engine throughput", "setup")
        table.add("single-partition", events_per_sec=report.throughput)
        table.show()
        assert report.events_processed == 2000

    def test_partitioned_throughput(self, benchmark):
        stream = build_stream(zones=8)

        def run():
            return CaesarEngine(
                build_model(), partition_by=lambda e: e["zone"]
            ).run(stream, track_outputs=False)

        report = benchmark(run)
        assert len(report.windows_by_partition) == 8


class TestComponentThroughput:
    def test_pattern_matcher_throughput(self, benchmark):
        spec = Sequence((EventMatch("Reading", "a"), EventMatch("Reading", "b")))
        events = [
            Event(READING, t, {"value": t % 50, "sec": t, "zone": 0})
            for t in range(500)
        ]
        store = ContextWindowStore([], "d")

        def run():
            op = PatternOperator(spec, retention=20)
            ctx = ExecutionContext(windows=store)
            total = 0
            for event in events:
                total += len(op.process([event], ctx))
            return total

        matches = benchmark(run)
        assert matches > 0

    def test_grouping_throughput(self, benchmark):
        specs = [
            WindowSpec(f"w{i}", start=i * 7, end=i * 7 + 50)
            for i in range(60)
        ]
        grouped = benchmark(lambda: group_context_windows(specs))
        assert len(grouped) >= 60
