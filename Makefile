# Convenience targets for the CAESAR reproduction.

PYTHON ?= python

.PHONY: install test test-chaos test-overload test-service test-aggregation difftest bench bench-aggregation bench-hotpath bench-parallel bench-observability bench-shedding bench-tables examples validate lint-smoke all

install:
	$(PYTHON) -m pip install -e .

test:
	$(PYTHON) -m pytest tests/

# deterministic chaos suite: injected faults, crash recovery, dead letters.
# Fault schedules are fixed stream timestamps, so ordering plugins that
# shuffle tests (pytest-randomly et al.) are disabled for reproducibility.
test-chaos:
	$(PYTHON) -m pytest tests/runtime/test_supervisor.py \
		tests/runtime/test_recovery.py \
		tests/runtime/test_deadletter.py \
		-q -p no:randomly

# differential correctness harness: pairs of configurations that must
# agree (optimizer rules, context-aware vs baseline, backends,
# checkpoint/restore, reordered arrival) — pytest suite plus a
# small-budget CLI sweep over every scenario and axis (docs/difftest.md)
difftest:
	$(PYTHON) -m pytest tests/difftest/ -q
	$(PYTHON) -m repro diff --scenario all --axis all --scale 0.5

# overload-management suite: admission control, controller determinism,
# breaker re-entry under time regressions, and the shed difftest axis.
# Fixed seeds drive every shedding decision, so ordering plugins are
# disabled as in test-chaos.
test-overload:
	$(PYTHON) -m pytest tests/runtime/test_shedding.py \
		tests/runtime/test_breaker_reentry.py \
		tests/difftest/test_shed_axis.py \
		-q -p no:randomly

# online SEQ aggregation: operator/property suites plus the aggregate
# difftest axis (online vs materialize oracle, across backends, and
# shared vs non-shared aggregate state under the grouping optimizer)
test-aggregation:
	$(PYTHON) -m pytest tests/algebra/test_seq_aggregate.py \
		tests/language/test_roundtrip.py \
		-q -p no:randomly
	$(PYTHON) -m repro diff --scenario all --axis aggregate --scale 0.5

# streaming service mode: continuous ingestion, online deployment, the
# session/service difftest axis, the network front ends, and the
# `repro serve` round-trip smokes (stdin and TCP/HTTP)
test-service:
	$(PYTHON) -m pytest tests/service/ \
		tests/net/ \
		tests/runtime/test_session.py \
		tests/runtime/test_session_backends.py \
		tests/runtime/test_preserve_state.py \
		tests/difftest/test_service_axis.py \
		-q -p no:randomly
	$(PYTHON) -m repro diff --scenario all --axis service --scale 0.5

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# online SEQ aggregation vs match materialization: asserts identical
# aggregate values, linear-vs-combinatorial scaling, and >=10x at the
# largest size (table recorded in docs/benchmarks.md)
bench-aggregation:
	$(PYTHON) -m pytest benchmarks/bench_aggregation.py --benchmark-only -s

# hot-path micro-benchmarks only (predicate eval, partial advance, routing)
bench-hotpath:
	$(PYTHON) -m pytest benchmarks/bench_hotpath.py --benchmark-only

# serial vs thread vs process execution backend throughput (asserts the
# backends produce identical outputs before printing any number)
bench-parallel:
	$(PYTHON) benchmarks/bench_parallel.py

# observability overhead: metrics off vs on vs detailed vs tracing
# (asserts all modes produce the same report, prints overhead %)
bench-observability:
	$(PYTHON) benchmarks/bench_observability.py

# overload shedding under burst: bounded backlog vs unbounded queue
# growth (asserts protected outputs are identical before printing)
bench-shedding:
	$(PYTHON) benchmarks/bench_shedding.py

# benchmarks with the per-figure tables printed inline
bench-tables:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	@for example in examples/*.py; do \
		echo "== $$example =="; \
		$(PYTHON) $$example > /dev/null || exit 1; \
	done; echo "all examples ok"

validate:
	$(PYTHON) -m repro validate-traffic

# quick import smoke over every module
lint-smoke:
	$(PYTHON) -m pytest tests/test_misc.py -q

all: test bench
