"""Setuptools entry point.

The pyproject.toml carries all metadata; this file exists so that editable
installs work on environments without the ``wheel`` package (legacy
``setup.py develop`` path).
"""

from setuptools import setup

setup()
