"""Smoke tests: every shipped example runs to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "example", EXAMPLES, ids=[e.stem for e in EXAMPLES]
)
def test_example_runs(example):
    completed = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"


def test_all_examples_present():
    names = {e.stem for e in EXAMPLES}
    assert {
        "quickstart",
        "traffic_management",
        "health_monitoring",
        "shared_workloads",
        "fraud_detection",
    } <= names
