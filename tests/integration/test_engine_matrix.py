"""All four engine configurations derive identical outputs.

The two optimization dimensions — context window push-down (``optimize``)
and context-aware routing (``context_aware``) — are independent switches;
Figure 11(b) uses (optimize, ¬context_aware) vs (¬optimize, ¬context_aware)
while Figure 12 uses the full CA engine vs the full CI baseline.  All four
corners must be output-equivalent, and costs must be ordered: every
optimization can only reduce work.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import CaesarModel
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.events.types import EventType
from repro.language import parse_query
from repro.runtime.engine import CaesarEngine

READING = EventType.define("Reading", value="int", sec="int")


def build_model():
    model = CaesarModel(default_context="normal")
    model.add_context("alert")
    model.add_query(parse_query(
        "INITIATE CONTEXT alert PATTERN Reading r WHERE r.value > 100 "
        "CONTEXT normal", name="up"))
    model.add_query(parse_query(
        "TERMINATE CONTEXT alert PATTERN Reading r WHERE r.value <= 100 "
        "CONTEXT alert", name="down"))
    model.add_query(parse_query(
        "DERIVE Alarm(r.value, r.sec) PATTERN Reading r CONTEXT alert",
        name="alarm"))
    model.add_query(parse_query(
        "DERIVE Pair(a.sec, b.sec) PATTERN SEQ(Reading a, Reading b) "
        "WHERE a.value = b.value CONTEXT alert", name="pairs"))
    return model


def stream(values):
    return EventStream(
        Event(READING, t * 10, {"value": v, "sec": t * 10})
        for t, v in enumerate(values)
    )


def run(optimize, context_aware, values):
    engine = CaesarEngine(
        build_model(),
        optimize=optimize,
        context_aware=context_aware,
        retention=500,
    )
    return engine.run(stream(values))


def outputs_key(report):
    return sorted(
        (e.type_name, e.start_time, e.timestamp,
         str(sorted(e.payload.items())))
        for e in report.outputs
    )


FLAG_CORNERS = list(itertools.product([True, False], repeat=2))


class TestEngineMatrix:
    @given(st.lists(st.integers(0, 250), min_size=1, max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_all_corners_equivalent(self, values):
        reports = {
            flags: run(*flags, values) for flags in FLAG_CORNERS
        }
        keys = {flags: outputs_key(r) for flags, r in reports.items()}
        reference = keys[(True, True)]
        for flags, key in keys.items():
            assert key == reference, f"outputs differ for flags {flags}"

    @given(st.lists(st.integers(0, 250), min_size=5, max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_cost_ordering(self, values):
        """The fully optimized corner never costs more than the fully
        unoptimized one (small bookkeeping tolerance, cf. the equivalence
        suite's note on state-reset timing)."""
        full = run(True, True, values)
        none = run(False, False, values)
        assert full.cost_units <= none.cost_units * 1.02 + 2.0

    def test_routing_alone_suspends(self):
        """context_aware routing suppresses batches even without push-down."""
        values = [10] * 20  # alert never activates
        report = run(False, True, values)
        assert report.suppressed_batches > 0

    def test_pushdown_alone_suspends_pipelines(self):
        """With routing off, the pushed-down window still guards the plans:
        pattern operators of the inactive context never run."""
        values = [10] * 20
        report = run(True, False, values)
        # everything was routed (no router suppression)...
        assert report.suppressed_batches == 0
        # ...but the alert workload spent only the window lookups
        alert_cost = report.cost_by_context["alert"]
        normal_cost = report.cost_by_context["normal"]
        assert alert_cost < normal_cost / 2
